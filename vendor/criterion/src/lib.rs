//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `Throughput`, `criterion_group!`,
//! `criterion_main!`) with a deliberately small time budget per benchmark
//! so that `cargo test` (which runs `harness = false` bench targets) stays
//! fast. Reported numbers are wall-clock medians over the few iterations
//! that fit in the budget — fine for spotting order-of-magnitude
//! regressions, not for statistics.

use std::time::{Duration, Instant};

/// Per-benchmark time budget. Keeps full-figure benches from dominating
/// `cargo test` while still timing a handful of iterations.
const BUDGET: Duration = Duration::from_millis(200);

/// Declared throughput of a benchmark, printed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated runs of `f` within the global budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if start.elapsed() >= BUDGET || self.samples.len() >= 101 {
                break;
            }
        }
    }
}

fn report(group: Option<&str>, name: &str, throughput: Option<Throughput>, samples: &[Duration]) {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted
        .get(sorted.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_owned(),
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if median > Duration::ZERO => {
            format!(
                "  {:.1} MiB/s",
                b as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {label:<40} {:>12.3} µs/iter ({} samples){rate}",
        median.as_secs_f64() * 1e6,
        samples.len()
    );
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        report(Some(&self.name), name, self.throughput, &b.samples);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        report(None, name, None, &b.samples);
        self
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
