//! Offline stand-in for `serde_json`, matching the subset of its API this
//! workspace uses: [`to_string`], [`to_string_pretty`], and [`from_str`].
//!
//! Works against the Value-tree data model of the sibling `serde`
//! stand-in. Floats are printed with Rust's shortest-round-trip `Display`
//! and parsed with `str::parse::<f64>`, so float round-trips are exact.

use serde::{Deserialize, Serialize, Value};

/// Serialization/parse error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self {
            message: e.to_string(),
        }
    }
}

fn err(message: impl Into<String>) -> Error {
    Error {
        message: message.into(),
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` out of a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(err("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- writing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // JSON distinguishes 1 from 1.0 only lexically; keep floats floats
        // so round-trips re-enter the float parser.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // Real serde_json rejects non-finite floats; null is the closest
        // representable value and nothing in this workspace emits them.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(err(format!("expected `{}` at byte {}", b as char, self.i)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.s[self.i..].starts_with(kw.as_bytes()) {
            self.i += kw.len();
            Ok(())
        } else {
            Err(err(format!("expected `{kw}` at byte {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(err(format!("unexpected character at byte {}", self.i))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(err(format!("expected `,` or `]` at byte {}", self.i))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut m = serde::Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(&key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(err(format!("expected `,` or `}}` at byte {}", self.i))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(err("unterminated escape"));
                    };
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.s.len() {
                                return Err(err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
                                .map_err(|_| err("bad \\u escape"))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| err("bad \\u escape"))?;
                            self.i += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(err("unknown escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let start = self.i - 1;
                    let rest = std::str::from_utf8(&self.s[start..])
                        .map_err(|_| err("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().ok_or_else(|| err("truncated string"))?;
                    out.push(ch);
                    self.i = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("ascii number");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\"\\".to_owned()).unwrap(), "\"hi\\\"\\\\\"");
        assert_eq!(from_str::<String>("\"hi\\\"\\\\\"").unwrap(), "hi\"\\");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.0, 1.0, -1.5, 2.75e9, 1.0 / 3.0, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u64];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }
}
