//! Offline stand-in for `serde`, providing the subset of its surface this
//! workspace uses: `Serialize`/`Deserialize` traits, a `derive` feature,
//! and enough impls to round-trip the workspace's result types.
//!
//! Unlike real serde's visitor architecture, this implementation funnels
//! everything through a self-describing [`Value`] tree: serialization
//! builds a `Value`, deserialization reads one back. `serde_json` (the
//! sibling stand-in) renders and parses that tree as JSON. The observable
//! behaviour — field names, enum representations (unit variants as
//! strings, data variants as single-key objects), `#[serde(skip)]` — is
//! compatible with what real serde would produce for the derives in this
//! repository.

/// A self-describing serialized value (the data model every type
/// serializes into and deserializes from).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed (negative) integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Object(Map),
}

/// An insertion-ordered string-keyed map of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a key/value pair (no dedup: derive emits each field once).
    pub fn insert(&mut self, key: &str, value: Value) {
        self.entries.push((key.to_owned(), value));
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Value {
    /// Borrows the object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can serialize itself into a [`Value`].
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Reads one struct field out of an object map (used by generated code).
///
/// Missing fields deserialize from `Null`, so `Option` fields tolerate
/// absence while all other types report the field by name.
pub fn de_field<T: Deserialize>(m: &Map, name: &str) -> Result<T, Error> {
    let v = m.get(name).unwrap_or(&Value::Null);
    T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(format!(
                        "expected integer, found {}", v.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(format!(
                        "expected integer, found {}", v.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v)?
            .try_into()
            .map_err(|_| Error::custom("integer out of range"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(Error::custom(format!(
                "expected number, found {}",
                v.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom(format!("expected bool, found {}", v.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom(format!(
                "expected string, found {}",
                v.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom(format!("expected array, found {}", v.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($($t::from_value(
                    items.get($i).ok_or_else(|| Error::custom("tuple too short"))?
                )?,)+))
            }
        }
    )*};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn missing_field_is_null() {
        let m = Map::new();
        let got: Option<u32> = de_field(&m, "absent").unwrap();
        assert_eq!(got, None);
        assert!(de_field::<u32>(&m, "absent").is_err());
    }
}
