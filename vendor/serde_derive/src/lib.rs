//! Offline stand-in for `serde_derive`.
//!
//! Parses the deriving item's token stream by hand (no `syn`/`quote`
//! available offline) and emits `serde::Serialize` / `serde::Deserialize`
//! impls targeting the Value-tree data model of the sibling `serde`
//! stand-in. Supported shapes — which cover every derive in this
//! workspace — are named-field structs, unit-variant enums, and
//! struct-variant enums, plus the `#[serde(skip)]` field attribute.
//! Anything else panics with a clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Option<Vec<Field>>,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_ser(name, fields),
        Item::Enum { name, variants } => gen_enum_ser(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_de(name, fields),
        Item::Enum { name, variants } => gen_enum_de(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

/// Consumes leading `#[...]` attributes, returning whether any of them is
/// `#[serde(skip)]`. Unknown `#[serde(...)]` contents are rejected loudly.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                let body = match inner.get(1) {
                    Some(TokenTree::Group(b)) => b.stream().to_string(),
                    _ => String::new(),
                };
                if body.trim() == "skip" {
                    skip = true;
                } else {
                    panic!("unsupported #[serde({body})] attribute (only `skip` is implemented)");
                }
            }
        }
        i += 2;
    }
    (i, skip)
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("generic types are not supported by the offline serde derive ({name})");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!("only brace-bodied (named-field) items are supported ({name})"),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            fields: parse_fields(body, &name),
            name,
        },
        "enum" => Item::Enum {
            variants: parse_variants(body, &name),
            name,
        },
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

/// Parses `name: Type, ...` named fields, honouring `#[serde(skip)]`.
fn parse_fields(body: TokenStream, item: &str) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, skip) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, j);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name in {item}, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("tuple structs are not supported by the offline serde derive ({item})"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Parses enum variants: unit (`Name`) or struct (`Name { fields }`).
fn parse_variants(body: TokenStream, item: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = skip_attrs(&tokens, i);
        i = j;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name in {item}, found {other:?}"),
        };
        i += 1;
        let mut fields = None;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = Some(parse_fields(g.stream(), item));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "tuple variants are not supported by the offline serde derive ({item}::{name})"
                );
            }
            _ => {}
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_struct_ser(name: &str, fields: &[Field]) -> String {
    let mut body = String::from("let mut m = ::serde::Map::new();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        body.push_str(&format!(
            "m.insert(\"{n}\", ::serde::Serialize::to_value(&self.{n}));\n",
            n = f.name
        ));
    }
    body.push_str("::serde::Value::Object(m)");
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{n}: ::core::default::Default::default(),\n",
                n = f.name
            ));
        } else {
            inits.push_str(&format!(
                "{n}: ::serde::de_field(m, \"{n}\")?,\n",
                n = f.name
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 let m = v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for `{name}`\"))?;\n\
                 ::core::result::Result::Ok(Self {{\n{inits}}})\n\
             }}\n\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match &v.fields {
            None => arms.push_str(&format!(
                "Self::{v} => ::serde::Value::String(\"{v}\".to_owned()),\n",
                v = v.name
            )),
            Some(fields) => {
                let pat: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                for f in fields.iter().filter(|f| !f.skip) {
                    inner.push_str(&format!(
                        "inner.insert(\"{n}\", ::serde::Serialize::to_value({n}));\n",
                        n = f.name
                    ));
                }
                arms.push_str(&format!(
                    "Self::{v} {{ {pat} }} => {{\n{inner}\
                         let mut m = ::serde::Map::new();\n\
                         m.insert(\"{v}\", ::serde::Value::Object(inner));\n\
                         ::serde::Value::Object(m)\n\
                     }}\n",
                    v = v.name,
                    pat = pat.join(", "),
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_checks = String::new();
    for v in variants {
        match &v.fields {
            None => unit_arms.push_str(&format!(
                "\"{v}\" => ::core::result::Result::Ok(Self::{v}),\n",
                v = v.name
            )),
            Some(fields) => {
                let mut inits = String::new();
                for f in fields {
                    if f.skip {
                        inits.push_str(&format!(
                            "{n}: ::core::default::Default::default(),\n",
                            n = f.name
                        ));
                    } else {
                        inits.push_str(&format!(
                            "{n}: ::serde::de_field(im, \"{n}\")?,\n",
                            n = f.name
                        ));
                    }
                }
                data_checks.push_str(&format!(
                    "if let ::core::option::Option::Some(inner) = m.get(\"{v}\") {{\n\
                         let im = inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for variant `{v}`\"))?;\n\
                         return ::core::result::Result::Ok(Self::{v} {{\n{inits}}});\n\
                     }}\n",
                    v = v.name,
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => ::core::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(m) => {{\n\
                         {data_checks}\
                         let _ = m;\n\
                         ::core::result::Result::Err(::serde::Error::custom(\"unknown data variant for `{name}`\"))\n\
                     }}\n\
                     _ => ::core::result::Result::Err(::serde::Error::custom(\"expected variant for `{name}`\")),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
