//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_filter` / `prop_filter_map`, `any::<T>()`, range and tuple
//! strategies, `Just`, `prop_oneof!`, `prop::collection::vec`, the
//! `prop_assert*` / `prop_assume!` macros, and `ProptestConfig`.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the generated inputs' assertion message), and the RNG is seeded
//! deterministically from the test name so runs are reproducible. Case
//! count defaults to 64 and can be overridden per test via
//! `ProptestConfig::with_cases` or globally via the `PROPTEST_CASES`
//! environment variable.

use std::ops::Range;

pub mod strategy;

pub use strategy::{any, Any, Just, Strategy, Union};

/// Test-case outcome used by the `prop_assert*` / `prop_assume!` macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// The generated inputs do not satisfy a `prop_assume!` precondition;
    /// the case is discarded and regenerated.
    Reject(String),
    /// A `prop_assert*` failed; the test panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure outcome.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection outcome.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Per-test configuration (only the `cases` knob is modelled).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Deterministic xorshift* RNG, seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary label (the test function's name).
    pub fn for_test(label: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in label.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: state | 1, // xorshift state must be non-zero
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `[0, bound)` (modulo bias is acceptable here).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// Strategies for generating collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s of `elem` with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `elem` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.elem.generate(rng)?);
            }
            Some(out)
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError, TestRng,
    };
}

// Implicit strategies: integer ranges.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                Some(self.start + rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// The `proptest!` macro: wraps `fn name(pat in strategy, ...) { body }`
/// items into `#[test]` functions that run `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut passed = 0u32;
                let mut attempts = 0u32;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).saturating_add(1000),
                        "too many rejected cases in {}",
                        stringify!($name)
                    );
                    // Generate every argument; a filtered-out value rejects
                    // the whole case and retries.
                    let args = ( $(
                        match $crate::Strategy::generate(&($strat), &mut rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => continue,
                        },
                    )+ );
                    let ( $($pat,)+ ) = args;
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property failed after {} cases: {}", passed, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = ($a, $b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = ($a, $b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = ($a, $b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = ($a, $b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Discards the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let opts: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union::new(opts)
    }};
}
