//! The `Strategy` trait and the combinators this workspace uses.

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// `generate` returns `None` when a filter rejects the drawn value; the
/// `proptest!` driver then discards and regenerates the whole case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value (or rejects the draw).
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (`why` labels the filter).
    fn prop_filter<F>(self, why: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        let _ = why;
        Filter { inner: self, pred }
    }

    /// Transforms values, rejecting those mapped to `None`.
    fn prop_filter_map<O, F>(self, why: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        let _ = why;
        FilterMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(&self.pred)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

/// An unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$i.generate(rng)?,)+))
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
);
