//! Ablation: Securator-style layer XOR-MAC vs SeDA's tiling-aware optBlk.
//!
//! Both reach near-zero *traffic*, but Securator's fixed 32 B hash blocks
//! ignore tile overlap: every halo row a strip re-fetches is re-hashed
//! into the layer MAC, costing hash-engine work (and requiring dedup
//! bookkeeping for correctness). SeDA's optBlk granularity matches tile
//! runs, so re-fetched halos re-verify whole blocks exactly once.
//! Securator's positionless fold is also RePA-vulnerable (see alg2_repa).
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_securator`

use seda::models::zoo;
use seda::protect::{ProtectionScheme, SecuratorScheme, PROTECTED_BYTES};
use seda::scalesim::{simulate_model, NpuConfig};

fn main() {
    let npu = NpuConfig::edge();
    println!("Ablation: Securator layer check vs SeDA (edge NPU)");
    println!(
        "{:<10} {:>14} {:>16} {:>18} {:>10}",
        "workload", "demand B", "hashed B", "redundant hash B", "overhead"
    );
    for model in zoo::all_models() {
        let sim = simulate_model(&npu, &model);
        let mut securator = SecuratorScheme::new(PROTECTED_BYTES);
        let mut sink = |_r| {};
        for layer in &sim.layers {
            for burst in &layer.bursts {
                securator.transform(burst, &mut sink);
            }
        }
        securator.finish(&mut sink);
        let demand = securator.breakdown().demand();
        println!(
            "{:<10} {:>14} {:>16} {:>18} {:>9.2}%",
            model.name(),
            demand,
            securator.hashed_bytes(),
            securator.redundant_hash_bytes(),
            securator.redundant_hash_bytes() as f64 / demand as f64 * 100.0,
        );
    }
    println!();
    println!("The redundant column is pure hash-engine waste on tiled layers —");
    println!("work SeDA's optBlk avoids by aligning verification blocks to tile");
    println!("runs (and which a positionless XOR fold cannot even detect).");
}
