//! Ablation: SeDA with layer MACs stored on-chip vs off-chip.
//!
//! The paper stores layer MACs off-chip "to ensure fairness" (§IV-A); this
//! ablation quantifies how little that fairness costs and what the ideal
//! on-chip configuration would save.
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_layer_mac`

use seda::models::zoo;
use seda::pipeline::run_model;
use seda::protect::{LayerMacStore, SedaScheme, Unprotected, PROTECTED_BYTES};
use seda::scalesim::NpuConfig;

fn main() {
    println!("Ablation: SeDA layer-MAC placement (on-chip vs off-chip)");
    println!(
        "{:<10} {:<8} {:>14} {:>14} {:>14} {:>12}",
        "workload", "npu", "base bytes", "off-chip +B", "on-chip +B", "off perf"
    );
    for npu in [NpuConfig::server(), NpuConfig::edge()] {
        for model in [zoo::resnet18(), zoo::googlenet(), zoo::mobilenet()] {
            let base = run_model(&npu, &model, &mut Unprotected::new());
            let off = run_model(
                &npu,
                &model,
                &mut SedaScheme::new(LayerMacStore::OffChip, PROTECTED_BYTES),
            );
            let on = run_model(
                &npu,
                &model,
                &mut SedaScheme::new(LayerMacStore::OnChip, PROTECTED_BYTES),
            );
            println!(
                "{:<10} {:<8} {:>14} {:>14} {:>14} {:>11.4}x",
                model.name(),
                npu.name,
                base.traffic.total(),
                off.traffic.total() - base.traffic.total(),
                on.traffic.total() - base.traffic.total(),
                off.total_cycles as f64 / base.total_cycles as f64,
            );
        }
    }
    println!();
    println!("On-chip layer MACs eliminate metadata traffic entirely; even the");
    println!("fairness configuration costs only two 64 B lines per layer.");
}
