//! Regenerates Fig. 6(a)/(b): normalized runtime of the five protection
//! schemes over the 13 workloads, on the server and edge NPUs.
//!
//! Both panels come from one parallel sweep on the unified engine.
//!
//! Usage: `cargo run --release -p seda-bench --bin fig6_performance`

use seda::experiment::evaluate_suites;
use seda::models::zoo;
use seda::report::figure6;
use seda::scalesim::NpuConfig;

fn main() {
    let npus = [NpuConfig::server(), NpuConfig::edge()];
    let evals = evaluate_suites(&npus, &zoo::all_models());
    for ((panel, npu), eval) in [("(a)", &npus[0]), ("(b)", &npus[1])]
        .into_iter()
        .zip(&evals)
    {
        println!("Fig. 6{panel}");
        print!("{}", figure6(eval));
        println!();
        print!(
            "{}",
            seda::report::bar_chart(
                &format!("mean normalized runtime — {} NPU", npu.name),
                &eval.mean_perf(),
                48
            )
        );
        println!();
        for (scheme, p) in eval.mean_perf() {
            if scheme != "baseline" {
                println!(
                    "  {} NPU {scheme}: slowdown {:+.2}%",
                    npu.name,
                    (p - 1.0) * 100.0
                );
            }
        }
        println!();
    }
}
