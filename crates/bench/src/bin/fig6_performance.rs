//! Regenerates Fig. 6(a)/(b): normalized runtime of the five protection
//! schemes over the 13 workloads, on the server and edge NPUs.
//!
//! Thin wrapper over the registered `fig6` scenario
//! (`scenarios/fig6.json`); both panels come from one parallel sweep.
//!
//! Usage: `cargo run --release -p seda-bench --bin fig6_performance`

use seda::scenario;

fn main() {
    let run = scenario::load("fig6")
        .and_then(|s| s.run())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    print!("{}", run.render());
}
