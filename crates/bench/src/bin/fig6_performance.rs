//! Regenerates Fig. 6(a)/(b): normalized runtime of the five protection
//! schemes over the 13 workloads, on the server and edge NPUs.
//!
//! Usage: `cargo run --release -p seda-bench --bin fig6_performance`

use seda::experiment::evaluate_paper_suite;
use seda::report::figure6;
use seda::scalesim::NpuConfig;

fn main() {
    for (panel, npu) in [("(a)", NpuConfig::server()), ("(b)", NpuConfig::edge())] {
        let eval = evaluate_paper_suite(&npu);
        println!("Fig. 6{panel}");
        print!("{}", figure6(&eval));
        println!();
        print!(
            "{}",
            seda::report::bar_chart(
                &format!("mean normalized runtime — {} NPU", npu.name),
                &eval.mean_perf(),
                48
            )
        );
        println!();
        for (scheme, p) in eval.mean_perf() {
            if scheme != "baseline" {
                println!(
                    "  {} NPU {scheme}: slowdown {:+.2}%",
                    npu.name,
                    (p - 1.0) * 100.0
                );
            }
        }
        println!();
    }
}
