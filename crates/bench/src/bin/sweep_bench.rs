//! Times the unified sweep engine against the legacy serial path on the
//! paper's headline two-NPU matrix (13 workloads × 6 schemes × 2 NPUs).
//!
//! The legacy path is what `evaluate` used to do: a nested loop calling
//! `run_model` per point, which re-simulates the accelerator trace for
//! every scheme. The engine path (`evaluate_suites`) shares one trace per
//! (NPU, model) pair and executes points on scoped threads. Both must
//! produce identical cycle totals — this binary asserts it.
//!
//! Besides the human-readable summary, the run is recorded in
//! `BENCH_sweep.json` (or the path given as the first argument) so CI can
//! archive the perf trajectory PR over PR.
//!
//! Usage: `cargo run --release -p seda-bench --bin sweep_bench [out.json]`

use seda::experiment::{evaluate_suites_with_stats, scheme_names};
use seda::models::zoo;
use seda::pipeline::run_model;
use seda::protect::scheme_by_name;
use seda::scalesim::NpuConfig;
use seda_bench::round6;
use serde::Serialize;
use std::time::Instant;

/// Machine-readable record of one sweep-bench run.
#[derive(Serialize)]
struct BenchRecord {
    /// Sweep points executed (NPUs × workloads × schemes).
    points: usize,
    /// Traces simulated by the engine (one per distinct NPU × model).
    trace_misses: u64,
    /// Trace-cache hits (points served without re-simulation).
    trace_hits: u64,
    /// Fraction of trace lookups served from the cache.
    trace_hit_rate: f64,
    /// Legacy serial path wall-clock, milliseconds.
    serial_ms: f64,
    /// Sweep-engine wall-clock, milliseconds.
    engine_ms: f64,
    /// serial_ms / engine_ms.
    speedup: f64,
    /// Engine wall-clock per sweep point, milliseconds. Point cost is
    /// dominated by DRAM replay (the trace cache removed re-simulation),
    /// so this is the trajectory metric for DRAM-kernel work: it captures
    /// replay wins even on single-CPU hosts where `speedup` sits near
    /// 1.0x because parallelism cannot engage.
    dram_replay_ms_per_point: f64,
    /// CPUs visible to this process. On a single-core host the engine
    /// cannot parallelize, so speedups near 1.0x are expected and the
    /// trace-cache reuse is the whole win — this field makes such runs
    /// self-explaining in the archived trajectory.
    host_cpus: usize,
    /// Whether the engine actually ran points on more than one worker.
    parallel_engaged: bool,
    /// Whether the two paths produced identical cycle totals.
    identical: bool,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_owned());
    let npus = [NpuConfig::server(), NpuConfig::edge()];
    let models = zoo::all_models();

    let t0 = Instant::now();
    let mut serial_total = 0u64;
    for npu in &npus {
        for model in &models {
            for name in scheme_names() {
                let mut scheme = scheme_by_name(name).expect("lineup name");
                serial_total =
                    serial_total.wrapping_add(run_model(npu, model, scheme.as_mut()).total_cycles);
            }
        }
    }
    let serial = t0.elapsed();

    let t1 = Instant::now();
    let (evals, stats) = evaluate_suites_with_stats(&npus, &models);
    let engine = t1.elapsed();

    let engine_total: u64 = evals
        .iter()
        .flat_map(|e| &e.workloads)
        .flat_map(|w| &w.outcomes)
        .fold(0u64, |acc, o| acc.wrapping_add(o.run.total_cycles));
    assert_eq!(
        serial_total, engine_total,
        "engine results must be bit-identical to the serial path"
    );

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let points = npus.len() * models.len() * scheme_names().len();
    let record = BenchRecord {
        points,
        trace_misses: stats.trace_misses,
        trace_hits: stats.trace_hits,
        trace_hit_rate: round6(
            stats.trace_hits as f64 / (stats.trace_hits + stats.trace_misses).max(1) as f64,
        ),
        serial_ms: round6(serial.as_secs_f64() * 1e3),
        engine_ms: round6(engine.as_secs_f64() * 1e3),
        speedup: round6(serial.as_secs_f64() / engine.as_secs_f64()),
        dram_replay_ms_per_point: round6(engine.as_secs_f64() * 1e3 / points as f64),
        host_cpus,
        parallel_engaged: host_cpus > 1,
        identical: serial_total == engine_total,
    };

    println!(
        "headline sweep: {} points (13 workloads x 6 schemes x 2 NPUs)",
        record.points
    );
    println!(
        "trace cache: {} simulations, {} reuses",
        record.trace_misses, record.trace_hits
    );
    println!(
        "legacy serial path (simulate per point): {:8.2} ms",
        record.serial_ms
    );
    println!(
        "sweep engine (cached + parallel):        {:8.2} ms",
        record.engine_ms
    );
    println!(
        "speedup: {:.2}x (identical cycle totals verified)",
        record.speedup
    );
    println!(
        "engine replay cost: {:.2} ms/point (DRAM-replay dominated)",
        record.dram_replay_ms_per_point
    );
    println!(
        "host: {} CPU(s){}",
        record.host_cpus,
        if record.parallel_engaged {
            ""
        } else {
            " — single-core host, speedup comes from trace reuse only"
        }
    );

    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write(&out_path, json).expect("writable path");
    eprintln!("wrote {out_path}");
}
