//! Times the unified sweep engine against the legacy serial path on the
//! paper's headline two-NPU matrix (13 workloads × 6 schemes × 2 NPUs).
//!
//! The legacy path is what `evaluate` used to do: a nested loop calling
//! `run_model` per point, which re-simulates the accelerator trace for
//! every scheme. The engine path (`evaluate_suites`) shares one trace per
//! (NPU, model) pair and executes points on scoped threads. Both must
//! produce identical cycle totals — this binary asserts it.
//!
//! Usage: `cargo run --release -p seda-bench --bin sweep_bench`

use seda::experiment::{evaluate_suites, scheme_names};
use seda::models::zoo;
use seda::pipeline::run_model;
use seda::protect::scheme_by_name;
use seda::scalesim::NpuConfig;
use std::time::Instant;

fn main() {
    let npus = [NpuConfig::server(), NpuConfig::edge()];
    let models = zoo::all_models();

    let t0 = Instant::now();
    let mut serial_total = 0u64;
    for npu in &npus {
        for model in &models {
            for name in scheme_names() {
                let mut scheme = scheme_by_name(name).expect("lineup name");
                serial_total =
                    serial_total.wrapping_add(run_model(npu, model, scheme.as_mut()).total_cycles);
            }
        }
    }
    let serial = t0.elapsed();

    let t1 = Instant::now();
    let evals = evaluate_suites(&npus, &models);
    let engine = t1.elapsed();

    let engine_total: u64 = evals
        .iter()
        .flat_map(|e| &e.workloads)
        .flat_map(|w| &w.outcomes)
        .fold(0u64, |acc, o| acc.wrapping_add(o.run.total_cycles));
    assert_eq!(
        serial_total, engine_total,
        "engine results must be bit-identical to the serial path"
    );

    let points = npus.len() * models.len() * scheme_names().len();
    println!("headline sweep: {points} points (13 workloads x 6 schemes x 2 NPUs)");
    println!(
        "legacy serial path (simulate per point): {:8.2} ms",
        serial.as_secs_f64() * 1e3
    );
    println!(
        "sweep engine (cached + parallel):        {:8.2} ms",
        engine.as_secs_f64() * 1e3
    );
    println!(
        "speedup: {:.2}x (identical cycle totals verified)",
        serial.as_secs_f64() / engine.as_secs_f64()
    );
}
