//! Regenerates Table III: the qualitative comparison of the five memory
//! protection schemes.
//!
//! Usage: `cargo run --release -p seda-bench --bin table3_schemes`

use seda::experiment::scheme_names;
use seda::protect::scheme_by_name;

fn main() {
    // The paper's Table III covers the five headline schemes of the
    // Fig. 5/6 lineup; append the Securator row as implemented for the
    // ablations.
    let infos: Vec<_> = scheme_names()
        .into_iter()
        .filter(|n| *n != "baseline")
        .chain(["Securator"])
        .map(|n| scheme_by_name(n).expect("registry name").info())
        .collect();
    print!("{}", seda::report::table3(&infos));
}
