//! Regenerates Table III: the qualitative comparison of the five memory
//! protection schemes.
//!
//! Usage: `cargo run --release -p seda-bench --bin table3_schemes`

use seda::protect::{paper_lineup, scheme_by_name};

fn main() {
    let mut infos: Vec<_> = paper_lineup()
        .iter()
        .map(|s| s.info())
        .filter(|i| i.name != "baseline")
        .collect();
    // The paper's Table III covers the five headline schemes; append the
    // Securator row as implemented for the ablations.
    infos.push(scheme_by_name("Securator").expect("known").info());
    print!("{}", seda::report::table3(&infos));
}
