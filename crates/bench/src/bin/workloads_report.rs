//! Workload census: the 13 benchmark models' shapes, parameter counts,
//! compute, and per-NPU traffic — the context behind every figure's
//! x-axis.
//!
//! Usage: `cargo run --release -p seda-bench --bin workloads_report`

use seda::models::zoo;
use seda::scalesim::{simulate_model, NpuConfig};

fn main() {
    println!("Workload census (paper §IV-A benchmarks)");
    println!(
        "{:<10} {:>7} {:>12} {:>13} {:>15} {:>15}",
        "workload", "layers", "weights", "MACs", "server traffic", "edge traffic"
    );
    let (server, edge) = (NpuConfig::server(), NpuConfig::edge());
    for model in zoo::all_models() {
        let s = simulate_model(&server, &model);
        let e = simulate_model(&edge, &model);
        println!(
            "{:<10} {:>7} {:>11}K {:>12}M {:>14}K {:>14}K",
            model.name(),
            model.layers().len(),
            model.weight_bytes() / 1000,
            model.total_macs() / 1_000_000,
            s.total_demand_bytes() / 1000,
            e.total_demand_bytes() / 1000,
        );
    }
    println!();
    println!("Traffic exceeds tensor footprints on the edge NPU wherever 480 KB");
    println!("of SRAM forces strip/chunk tiling with halo re-reads.");
}
