//! Ablation: on-chip SRAM capacity sweep.
//!
//! Grows the edge NPU's SRAM from 128 KB to 16 MB and reports baseline
//! demand traffic (tiling pressure) and the SGX-512B overhead (which
//! shrinks as larger tiles produce longer, better-aligned runs) — showing
//! how the protection-granularity penalty is a *tiling* phenomenon, not a
//! constant.
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_sram`

use seda::models::zoo;
use seda::pipeline::run_model;
use seda::protect::{BlockMacKind, BlockMacScheme, Unprotected, PROTECTED_BYTES};
use seda::scalesim::NpuConfig;

fn main() {
    let model = zoo::resnet18();
    println!("Ablation: SRAM capacity sweep (rest, edge-NPU array at 32x32)");
    println!(
        "{:>9} {:>14} {:>16} {:>16}",
        "SRAM", "base bytes", "SGX-512B ovh", "MGX-512B ovh"
    );
    for kb in [128u64, 256, 480, 1024, 4096, 16384] {
        let mut npu = NpuConfig::edge();
        npu.sram_bytes = kb << 10;
        let base = run_model(&npu, &model, &mut Unprotected::new());
        let sgx = run_model(
            &npu,
            &model,
            &mut BlockMacScheme::new(BlockMacKind::Sgx, 512, PROTECTED_BYTES),
        );
        let mgx = run_model(
            &npu,
            &model,
            &mut BlockMacScheme::new(BlockMacKind::Mgx, 512, PROTECTED_BYTES),
        );
        let ovh = |t: u64| (t as f64 / base.traffic.total() as f64 - 1.0) * 100.0;
        println!(
            "{:>6} KB {:>14} {:>15.2}% {:>15.2}%",
            kb,
            base.traffic.total(),
            ovh(sgx.traffic.total()),
            ovh(mgx.traffic.total())
        );
    }
    println!();
    println!("More SRAM lowers demand traffic (fewer strips, less halo) and");
    println!("softens the alignment part of the coarse-granularity penalty (the");
    println!("MGX-512B column); SGX-512B's floor is its granularity-independent");
    println!("per-64B version-number traffic, which SRAM cannot remove.");
}
