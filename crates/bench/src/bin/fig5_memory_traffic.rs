//! Regenerates Fig. 5: normalized memory traffic of the five protection
//! schemes over the 13 workloads, on both NPUs.
//!
//! Both NPUs run as one parallel sweep on the unified engine: every
//! (NPU, model) trace is simulated once and shared across the six
//! schemes.
//!
//! Usage: `cargo run --release -p seda-bench --bin fig5_memory_traffic`
//! Pass a path as the first argument to also dump the raw evaluation JSON.

use seda::experiment::evaluate_suites;
use seda::models::zoo;
use seda::report::figure5;
use seda::scalesim::NpuConfig;

fn main() {
    let json_path = std::env::args().nth(1);
    let npus = [NpuConfig::server(), NpuConfig::edge()];
    let evals = evaluate_suites(&npus, &zoo::all_models());
    for (npu, eval) in npus.iter().zip(&evals) {
        print!("{}", figure5(eval));
        println!();
        print!(
            "{}",
            seda::report::bar_chart(
                &format!("mean normalized traffic — {} NPU", npu.name),
                &eval.mean_traffic(),
                48
            )
        );
        println!();
        for (scheme, t) in eval.mean_traffic() {
            if scheme != "baseline" {
                println!(
                    "  {} NPU {scheme}: traffic overhead {:+.2}%",
                    npu.name,
                    (t - 1.0) * 100.0
                );
            }
        }
        println!();
    }
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&evals).expect("serializable");
        std::fs::write(&path, json).expect("writable path");
        eprintln!("wrote {path}");
    }
}
