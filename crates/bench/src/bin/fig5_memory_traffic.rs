//! Regenerates Fig. 5: normalized memory traffic of the five protection
//! schemes over the 13 workloads, on both NPUs.
//!
//! Usage: `cargo run --release -p seda-bench --bin fig5_memory_traffic`
//! Pass a path as the first argument to also dump the raw evaluation JSON.

use seda::experiment::evaluate_paper_suite;
use seda::report::figure5;
use seda::scalesim::NpuConfig;

fn main() {
    let json_path = std::env::args().nth(1);
    let mut dumps = Vec::new();
    for npu in [NpuConfig::server(), NpuConfig::edge()] {
        let eval = evaluate_paper_suite(&npu);
        print!("{}", figure5(&eval));
        println!();
        print!(
            "{}",
            seda::report::bar_chart(
                &format!("mean normalized traffic — {} NPU", npu.name),
                &eval.mean_traffic(),
                48
            )
        );
        println!();
        for (scheme, t) in eval.mean_traffic() {
            if scheme != "baseline" {
                println!(
                    "  {} NPU {scheme}: traffic overhead {:+.2}%",
                    npu.name,
                    (t - 1.0) * 100.0
                );
            }
        }
        println!();
        dumps.push(eval);
    }
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&dumps).expect("serializable");
        std::fs::write(&path, json).expect("writable path");
        eprintln!("wrote {path}");
    }
}
