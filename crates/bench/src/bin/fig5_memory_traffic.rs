//! Regenerates Fig. 5: normalized memory traffic of the five protection
//! schemes over the 13 workloads, on both NPUs.
//!
//! Thin wrapper over the registered `fig5` scenario — the axes live in
//! `scenarios/fig5.json` and execute through the declarative scenario
//! engine (one parallel sweep; every (NPU, model) trace is simulated once
//! and shared across the six schemes).
//!
//! Usage: `cargo run --release -p seda-bench --bin fig5_memory_traffic`
//! Pass a path as the first argument to also dump the raw evaluation JSON.

use seda::scenario;

fn main() {
    let json_path = std::env::args().nth(1);
    let run = scenario::load("fig5")
        .and_then(|s| s.run())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    print!("{}", run.render());
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&run.evaluations).expect("serializable");
        std::fs::write(&path, json).expect("writable path");
        eprintln!("wrote {path}");
    }
}
