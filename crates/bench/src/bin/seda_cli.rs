//! Umbrella CLI: one entry point that lists and dispatches every
//! experiment, table, figure, ablation, and validation binary, plus the
//! declarative scenario zoo.
//!
//! Usage:
//! ```text
//! cargo run --release -p seda-bench --bin seda_cli -- list
//! cargo run --release -p seda-bench --bin seda_cli -- table 3
//! cargo run --release -p seda-bench --bin seda_cli -- scenario run fig6
//! cargo run --release -p seda-bench --bin seda_cli -- run rest edge SeDA
//! ```

use seda::functional::{run_protected, run_reference};
use seda::models::zoo;
use seda::pipeline::{run_spec, RunSpec};
use seda::protect::{paper_lineup, scheme_by_name};
use seda::report::{table1, table2, table3};
use seda::scalesim::{AddressMap, NpuConfig};
use seda::scenario;
use seda::sweep::Sweep;
use seda::telemetry;

const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "fig4_area_power",
        "Fig. 4: T-AES vs B-AES area/power scaling",
    ),
    (
        "fig5_memory_traffic",
        "Fig. 5: normalized traffic, 13 workloads x 2 NPUs",
    ),
    (
        "fig6_performance",
        "Fig. 6: normalized runtime, 13 workloads x 2 NPUs",
    ),
    ("alg1_seca", "Algorithm 1: SECA attack and B-AES defense"),
    (
        "alg2_repa",
        "Algorithm 2: RePA attack and position-bound defense",
    ),
    (
        "ablation_granularity",
        "protection-block granularity U-curve",
    ),
    ("ablation_optblk", "per-layer optBlk search"),
    ("ablation_caches", "SGX metadata-cache size sensitivity"),
    ("ablation_layer_mac", "SeDA layer MACs on-chip vs off-chip"),
    (
        "ablation_securator",
        "redundant hash work of layer-XOR checks",
    ),
    ("ablation_energy", "DRAM energy per scheme"),
    ("ablation_sram", "SRAM capacity sweep"),
    ("ablation_dataflow", "OS vs WS dataflow"),
    ("ablation_hash_engine", "verifier throughput sizing cliff"),
    (
        "ablation_steady_state",
        "cold-start vs steady-state overheads",
    ),
    (
        "layer_report",
        "per-layer schedule/traffic/cycle drill-down",
    ),
    ("workloads_report", "13-workload census"),
    (
        "gen_trace / replay_trace",
        "burst-trace export and standalone replay",
    ),
    ("custom_topology", "run a user CSV topology"),
    (
        "sweep_bench",
        "unified sweep engine vs legacy serial-path timing",
    ),
    (
        "serve_bench",
        "multi-tenant serving event-kernel throughput",
    ),
    (
        "stream_bench",
        "sealed-model streaming GB/s and overlap efficiency",
    ),
    (
        "validate_sim",
        "fast models vs cycle/command-level cross-check",
    ),
    ("experiments_md", "regenerate EXPERIMENTS.md"),
];

fn usage() -> ! {
    eprintln!("usage: seda_cli [--telemetry <out.json>] <command>");
    eprintln!("  list                 enumerate experiment binaries and scenarios");
    eprintln!("  table <1|2|3>        print a paper table");
    eprintln!("  scenario list        enumerate the scenario zoo");
    eprintln!("  scenario describe <name>      show one scenario's axes");
    eprintln!("  scenario run <name> [--json <out.json>]");
    eprintln!("               [--journal <path>] [--resume <path>]");
    eprintln!("                       execute a scenario (optionally dump the");
    eprintln!("                       seda-scenario/v1 snapshot as JSON).");
    eprintln!("                       --journal streams a seda-checkpoint/v1");
    eprintln!("                       journal of completed points; --resume");
    eprintln!("                       replays one from a prior (killed) run and");
    eprintln!("                       executes only the remaining points.");
    eprintln!("  serve <name> [--json <out.json>]");
    eprintln!("                       run a scenario's multi-tenant serving");
    eprintln!("                       simulation (optionally dump the");
    eprintln!("                       seda-serve/v1 snapshot as JSON); exits 5");
    eprintln!("                       when a tenant latency ceiling is violated");
    eprintln!("  stream <model> [--json <out.json>] [--lens <b0,b1,..>] [--flip <byte>]");
    eprintln!("                       seal the model into a provisioning stream");
    eprintln!("                       and unseal it through the double-buffered");
    eprintln!("                       pipeline (sustained GB/s report; --flip");
    eprintln!("                       corrupts one stream byte first — the");
    eprintln!("                       tampered stream exits 4 with the");
    eprintln!("                       seda-stream/v1 snapshot still written)");
    eprintln!("  run <wl> <npu> <scheme> [n]   n secure inferences (default 1)");
    eprintln!("  quickstart           functional + timing demo on LeNet");
    eprintln!("  workloads            list workload names");
    eprintln!("  schemes              list scheme names");
    eprintln!();
    eprintln!("  --telemetry <path>   export a seda-telemetry/v1 metric");
    eprintln!("                       snapshot of the run as JSON");
    eprintln!();
    eprintln!("exit codes (scenario run / serve / stream):");
    eprintln!("  0  success           all points ran and every expectation held");
    eprintln!("  1  internal error    unexpected failure outside the codes below");
    eprintln!("  2  usage error       bad command line");
    eprintln!("  3  spec error        scenario/stream parse or validation error");
    eprintln!("  4  point failures    sweep points failed or a stream block was");
    eprintln!("                       tampered (typed rejection on stderr)");
    eprintln!("  5  expectations      results violated the scenario's expect block");
    std::process::exit(2);
}

/// Terminates with the error on stderr (exit code 1).
fn die(e: seda::SedaError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1);
}

/// Removes `flag <value>` from `rest`, returning the value.
fn take_value_flag(rest: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = rest.iter().position(|a| a == flag)?;
    if i + 1 >= rest.len() {
        eprintln!("{flag} needs a path argument");
        std::process::exit(2);
    }
    let value = rest.remove(i + 1);
    rest.remove(i);
    Some(value)
}

/// `scenario <list|describe|run>`: the declarative scenario zoo.
/// Returns the process exit code (`scenario run` distinguishes spec
/// errors, point failures, and expectation failures — see `usage`).
fn scenario_cmd(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("list") => {
            let scenarios = scenario::list().unwrap_or_else(|e| die(e));
            println!("registered scenarios (run with `seda_cli scenario run <name>`):\n");
            for s in &scenarios {
                println!("  {:<22} {}", s.name, s.title);
            }
            0
        }
        Some("describe") => {
            let Some(name) = args.get(1) else { usage() };
            let s = scenario::load(name).unwrap_or_else(|e| die(e));
            println!("{}: {}", s.name, s.title);
            println!("  npus:      {}", s.npus.join(", "));
            println!("  workloads:");
            for w in &s.workloads {
                // Validated on load, so every spec resolves.
                let model = w.resolve().unwrap_or_else(|e| die(e.into()));
                println!(
                    "    {:<16} {:>3} layers {:>14} MACs",
                    model.name(),
                    model.layers().len(),
                    model.total_macs()
                );
            }
            let labels: Vec<String> = s.schemes.iter().map(|sc| sc.label()).collect();
            println!("  schemes:   {}", labels.join(", "));
            if let Some(d) = &s.dram {
                println!(
                    "  dram override: {}",
                    serde_json::to_string(d).unwrap_or_default()
                );
            }
            if let Some(v) = &s.verifier {
                println!(
                    "  verifier:  {} B/cycle, {} cycles latency",
                    v.bytes_per_cycle, v.latency_cycles
                );
            }
            if let Some(n) = s.repeats {
                println!("  repeats:   {n}");
            }
            if let Some(p) = &s.on_failure {
                println!(
                    "  on_failure: {}",
                    serde_json::to_string(p).unwrap_or_default()
                );
            }
            if let Some(b) = s.point_budget_ms {
                println!("  point budget: {b} ms per point");
            }
            if let Some(e) = &s.expect {
                println!("  expectations: {} bound(s)", e.0.len());
            }
            let outputs: Vec<&str> = s.outputs.iter().map(|o| o.as_str()).collect();
            println!("  outputs:   {}", outputs.join(", "));
            0
        }
        Some("run") => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let json_path = take_value_flag(&mut rest, "--json");
            let journal = take_value_flag(&mut rest, "--journal");
            let resume = take_value_flag(&mut rest, "--resume");
            let Some(name) = rest.first() else { usage() };
            let s = match scenario::load(name) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 3;
                }
            };
            let opts = scenario::RunOptions {
                journal: journal.map(std::path::PathBuf::from),
                resume: resume.map(std::path::PathBuf::from),
            };
            let run = match s.run_with(&opts) {
                Ok(run) => run,
                // Fail-fast point failures carry the full structured
                // report; render every failed point with its cause chain.
                Err(seda::SedaError::ScenarioPointFailed {
                    scenario,
                    total_points,
                    report,
                }) => {
                    eprintln!(
                        "error: scenario {scenario}: {} of {total_points} points failed",
                        report.len()
                    );
                    eprint!("{}", report.render());
                    return 4;
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return 3;
                }
            };
            print!("{}", run.render());
            if let Some(path) = json_path {
                std::fs::write(&path, run.snapshot_json()).expect("writable snapshot path");
                eprintln!("scenario snapshot written to {path}");
            }
            let unmet = run.check_expectations();
            if !unmet.is_empty() {
                eprintln!("{} expectation(s) not met:", unmet.len());
                for failure in &unmet {
                    eprintln!("  {failure}");
                }
                return 5;
            }
            if !run.failures.is_empty() {
                // skip/retry policies surface partial results; the render
                // above already listed the failed points.
                return 4;
            }
            0
        }
        _ => usage(),
    }
}

/// `serve <name> [--json <out.json>]`: the multi-tenant serving
/// simulator over a scenario's `"serving"` block. Shares the scenario
/// exit codes: 3 for spec/load errors, 5 for violated latency ceilings.
fn serve_cmd(args: &[String]) -> i32 {
    let mut rest: Vec<String> = args.to_vec();
    let json_path = take_value_flag(&mut rest, "--json");
    let Some(name) = rest.first() else { usage() };
    let s = match scenario::load(name) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 3;
        }
    };
    if s.serving.is_none() {
        eprintln!("error: scenario {name} has no \"serving\" block (see `scenario describe`)");
        return 3;
    }
    let run = match seda_serve::serve_scenario(&s) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            return 3;
        }
    };
    print!("{}", run.report.render());
    if let Some(path) = json_path {
        std::fs::write(&path, run.report.snapshot_json()).expect("writable snapshot path");
        eprintln!("serving snapshot written to {path}");
    }
    let unmet = run.failures(&s);
    if !unmet.is_empty() {
        eprintln!("{} serving expectation(s) not met:", unmet.len());
        for failure in &unmet {
            eprintln!("  {failure}");
        }
        return 5;
    }
    0
}

/// Serializes a stream provisioning outcome as the `seda-stream/v1`
/// snapshot — written even for rejected streams, before the nonzero
/// exit, so CI can archive the post-mortem.
fn stream_snapshot(
    model: &str,
    spec: &seda_stream::StreamSpec,
    result: Result<&seda_stream::UnsealRun, &seda::SedaError>,
) -> String {
    let mut out = String::from("{\n  \"schema\": \"seda-stream/v1\",\n");
    out.push_str(&format!("  \"model\": \"{model}\",\n"));
    out.push_str(&format!("  \"config\": \"{}\",\n", spec.config.name));
    out.push_str(&format!("  \"layers\": {},\n", spec.lens.len()));
    out.push_str(&format!("  \"payload_bytes\": {},\n", spec.total_bytes()));
    out.push_str(&format!("  \"blocks\": {},\n", spec.total_blocks()));
    match result {
        Ok(run) => {
            out.push_str("  \"ok\": true,\n");
            out.push_str(&format!(
                "  \"gbps_sustained\": {:.6},\n",
                run.gbps_sustained
            ));
            out.push_str(&format!(
                "  \"overlap_efficiency\": {:.6},\n",
                run.overlap_efficiency
            ));
            out.push_str(&format!("  \"replay_cycles\": {}\n", run.replay_cycles));
        }
        Err(e) => {
            out.push_str("  \"ok\": false,\n");
            out.push_str(&format!(
                "  \"error\": \"{}\"\n",
                e.to_string().replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
    }
    out.push_str("}\n");
    out
}

/// `stream <model> [--json <out.json>] [--lens <b0,b1,..>] [--flip <byte>]`:
/// seals a zoo model into a provisioning stream and unseals it through
/// the double-buffered pipeline, reporting sustained GB/s. A malformed
/// stream spec (unknown model, unparsable or non-64-multiple `--lens`)
/// exits 3; a tampered block (`--flip` corrupts one stream byte) exits 4
/// with the typed rejection on stderr and the snapshot written first.
fn stream_cmd(args: &[String]) -> i32 {
    let mut rest: Vec<String> = args.to_vec();
    let json_path = take_value_flag(&mut rest, "--json");
    let lens_arg = take_value_flag(&mut rest, "--lens");
    let flip_arg = take_value_flag(&mut rest, "--flip");
    let Some(name) = rest.first() else { usage() };
    let Some(model) = zoo::by_name(name) else {
        eprintln!("error: unknown workload {name:?} (try `seda_cli workloads`)");
        return 3;
    };
    let lens = match &lens_arg {
        Some(list) => {
            let mut lens = Vec::new();
            for part in list.split(',') {
                match part.trim().parse::<usize>() {
                    Ok(len) => lens.push(len),
                    Err(_) => {
                        eprintln!(
                            "error: malformed --lens entry {part:?} \
                             (want comma-separated byte counts)"
                        );
                        return 3;
                    }
                }
            }
            lens
        }
        None => seda_stream::model_lens(&model),
    };
    let spec = seda_stream::StreamSpec {
        stream_id: 0x5EDA_C411,
        key_epoch: 1,
        config: seda_adversary::ProtectConfig::matrix()[2],
        lens,
        enc_key: [0xA1; 16],
        mac_key: [0xB2; 16],
        transport_key: [0xC3; 16],
    };
    if let Err(e) = spec.validate() {
        eprintln!("error: {e}");
        return 3;
    }
    let plains: Vec<Vec<u8>> = spec
        .lens
        .iter()
        .enumerate()
        .map(|(layer, &len)| {
            (0..len)
                .map(|i| (i as u8).wrapping_mul(31) ^ layer as u8)
                .collect()
        })
        .collect();
    let mut stream = match seda_stream::seal(&spec, &plains) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 3;
        }
    };
    if let Some(flip) = &flip_arg {
        let Ok(offset) = flip.parse::<usize>() else {
            eprintln!("--flip wants a byte offset into the sealed stream");
            std::process::exit(2);
        };
        stream.flip_bit(offset % stream.len(), 1);
    }
    let dram = seda::dram::DramConfig::ddr4_with_bandwidth(1, 16.0e9);
    match seda_stream::measure(&spec, stream.bytes(), &dram) {
        Ok(run) => {
            println!(
                "{}: {} payload bytes in {} authenticated blocks under {}",
                model.name(),
                run.payload_bytes,
                run.blocks,
                spec.config.name
            );
            println!(
                "  pipelined unseal: {:.3} GB/s sustained, {:.2}x overlap \
                 efficiency vs serial, {} DRAM replay cycles",
                run.gbps_sustained, run.overlap_efficiency, run.replay_cycles
            );
            if let Some(path) = json_path {
                let snap = stream_snapshot(model.name(), &spec, Ok(&run));
                std::fs::write(&path, snap).expect("writable snapshot path");
                eprintln!("stream snapshot written to {path}");
            }
            0
        }
        Err(e) => {
            if let Some(path) = json_path {
                let snap = stream_snapshot(model.name(), &spec, Err(&e));
                std::fs::write(&path, snap).expect("writable snapshot path");
                eprintln!("stream snapshot written to {path}");
            }
            eprintln!("error: stream rejected: {e}");
            4
        }
    }
}

/// Removes a `--telemetry <path>` flag from `args`, returning the path.
fn extract_telemetry_flag(args: &mut Vec<String>) -> Option<String> {
    let i = args.iter().position(|a| a == "--telemetry")?;
    if i + 1 >= args.len() {
        eprintln!("--telemetry needs an output path");
        std::process::exit(2);
    }
    let path = args.remove(i + 1);
    args.remove(i);
    Some(path)
}

/// `quickstart`: one end-to-end tour that exercises every instrumented
/// subsystem — the functional crypto path (AES, MACs, tamper detection)
/// and the timing path (metadata caches, DRAM, trace cache, sweep).
fn quickstart() {
    let model = zoo::lenet();
    let input: Vec<u8> = (0..32 * 32).map(|i| (i % 23) as u8).collect();

    println!(
        "[1/3] functional: {} encrypted in untrusted memory",
        model.name()
    );
    let reference = run_reference(&model, &input);
    let protected = run_protected(&model, &input, |_| {}).expect("honest run verifies");
    assert_eq!(protected, reference, "protection must be transparent");
    println!("      protected output bit-identical to the reference");

    println!("[2/3] functional: flipping one ciphertext bit off-chip");
    let addr = AddressMap::new(&model).weights(1) as usize;
    match run_protected(&model, &input, |mem| {
        mem.raw_mut()[addr + 100] ^= 0x20;
    }) {
        Ok(_) => {
            eprintln!("      tampering went UNDETECTED (bug!)");
            std::process::exit(1);
        }
        Err(violation) => println!("      inference aborted: {violation}"),
    }

    println!("[3/3] timing: LeNet x [baseline, SGX-64B, SeDA] on the edge NPU");
    let results = Sweep::new()
        .npu(NpuConfig::edge())
        .model(zoo::lenet())
        .schemes(["baseline", "SGX-64B", "SeDA"])
        .run();
    let base = results.at(0, 0, 0);
    for s in 1..3 {
        let r = results.at(0, 0, s);
        println!(
            "      {:<8} {:>12} traffic bytes, {:>9} cycles ({:+.1}% vs baseline)",
            r.scheme,
            r.traffic.total(),
            r.total_cycles,
            (r.total_cycles as f64 / base.total_cycles as f64 - 1.0) * 100.0
        );
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_path = extract_telemetry_flag(&mut args);
    let sink = telemetry_path
        .as_ref()
        .map(|_| telemetry::install_shared().expect("first and only install"));
    let mut exit_code = 0;
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("experiment binaries (run with `cargo run --release -p seda-bench --bin <name>`):\n");
            for (name, what) in EXPERIMENTS {
                println!("  {name:<24} {what}");
            }
            println!();
            println!("paper tables: `seda_cli table <1|2|3>`");
            println!("scenario zoo: `seda_cli scenario list` (fig5/fig6 and the");
            println!("ablations are scenario-driven; the fig/ablation binaries are");
            println!("thin wrappers over `scenarios/<name>.json`)");
        }
        Some("table") => match args.get(1).map(String::as_str) {
            Some("1") => print!("{}", table1()),
            Some("2") => print!("{}", table2(&[NpuConfig::server(), NpuConfig::edge()])),
            Some("3") => {
                // The paper's Table III covers the five headline schemes
                // of the Fig. 5/6 lineup; append the Securator row as
                // implemented for the ablations.
                let infos: Vec<_> = seda::experiment::scheme_names()
                    .into_iter()
                    .filter(|n| *n != "baseline")
                    .chain(["Securator"])
                    .map(|n| scheme_by_name(n).expect("registry name").info())
                    .collect();
                print!("{}", table3(&infos));
            }
            _ => usage(),
        },
        Some("scenario") => exit_code = scenario_cmd(&args[1..]),
        Some("serve") => exit_code = serve_cmd(&args[1..]),
        Some("stream") => exit_code = stream_cmd(&args[1..]),
        Some("run") => {
            let workload = args.get(1).map(String::as_str).unwrap_or("rest");
            let npu = match args.get(2).map(String::as_str) {
                Some("server") => NpuConfig::server(),
                _ => NpuConfig::edge(),
            };
            let scheme_name = args.get(3).map(String::as_str).unwrap_or("SeDA");
            let Some(model) = zoo::by_name(workload) else {
                eprintln!("unknown workload {workload:?} (try `seda_cli workloads`)");
                std::process::exit(1);
            };
            let Some(mut scheme) = scheme_by_name(scheme_name) else {
                eprintln!("unknown scheme {scheme_name:?} (try `seda_cli schemes`)");
                std::process::exit(1);
            };
            let repeats: u32 = args.get(4).and_then(|n| n.parse().ok()).unwrap_or(1);
            let spec = RunSpec::new(&npu, &model).repeats(repeats.max(1));
            for r in run_spec(&spec, scheme.as_mut()) {
                println!(
                    "{} on {} under {}: {} bytes of traffic, {} cycles ({:.3} ms)",
                    r.model,
                    r.npu,
                    r.scheme,
                    r.traffic.total(),
                    r.total_cycles,
                    r.seconds() * 1e3
                );
            }
        }
        Some("quickstart") => quickstart(),
        Some("workloads") => {
            for m in zoo::all_models() {
                println!("{:<6} {} layers", m.name(), m.layers().len());
            }
        }
        Some("schemes") => {
            for s in paper_lineup() {
                println!("{}", s.name());
            }
            println!("Securator");
        }
        _ => usage(),
    }
    // The telemetry snapshot is written even for failing scenario runs —
    // it is part of the failure artifact CI archives.
    if let (Some(path), Some(sink)) = (telemetry_path, sink) {
        std::fs::write(&path, sink.snapshot().to_json()).expect("writable telemetry path");
        eprintln!("telemetry snapshot written to {path}");
    }
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}
