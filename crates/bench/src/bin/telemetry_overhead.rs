//! Guard: telemetry must be free when nobody is listening.
//!
//! Per-layer and per-point call sites dispatch into the global sink
//! directly; the per-access hot loops (DRAM controller, metadata caches)
//! keep plain integer accounting and flush deltas at run boundaries, so
//! the telemetry cost of a sweep is a few thousand events regardless of
//! how many billions of simulated accesses it makes. This binary checks
//! that property end to end: it times the paper's 156-point headline
//! sweep with telemetry disabled (one relaxed atomic load per event) and
//! with an enabled [`seda::telemetry::NoopSink`] (one virtual call that
//! discards the event), interleaved min-of-N, and fails if the NoopSink
//! arm costs more than a hard bound.
//!
//! The true delta is well under 1% (≈ −2 to +2% measured on a quiet
//! box). The bound is much wider because the 1-CPU reference box shares
//! its core: *identical* back-to-back sweeps have been observed 20%
//! apart under co-tenant load. The regression class this guard exists
//! for — telemetry dispatch re-entering a per-access loop — costs
//! +20–30% and clears the bound with margin.
//!
//! Usage: `cargo run --release -p seda-bench --bin telemetry_overhead [out.json]`

use seda::experiment::evaluate_suites_with_stats;
use seda::models::zoo;
use seda::scalesim::NpuConfig;
use seda::telemetry;
use seda_bench::round6;
use serde::Serialize;
use std::time::Instant;

/// Interleaved trials per arm. Minimums over more pairs give both arms
/// more chances to land in a quiet scheduler slot.
const TRIALS: usize = 5;

/// Hard failure bound on the measured delta. The expected value is < 1%;
/// the slack absorbs single-core CI timing noise, while the failure mode
/// this guards against (per-access telemetry dispatch) costs +20–30%.
const MAX_DELTA: f64 = 0.10;

/// Machine-readable record of one overhead measurement.
#[derive(Serialize)]
struct OverheadRecord {
    /// Interleaved trials per arm.
    trials: usize,
    /// Best wall-clock of the disabled arm (one relaxed load per event), ms.
    disabled_ms: f64,
    /// Best wall-clock of the enabled-NoopSink arm, ms.
    noop_ms: f64,
    /// `noop_ms / disabled_ms - 1`.
    delta: f64,
    /// Every disabled-arm trial, for noise archaeology in CI archives.
    disabled_trials_ms: Vec<f64>,
    /// Every NoopSink-arm trial.
    noop_trials_ms: Vec<f64>,
}

fn run_headline_sweep() -> f64 {
    let npus = [NpuConfig::server(), NpuConfig::edge()];
    let models = zoo::all_models();
    let t = Instant::now();
    let (evals, _) = evaluate_suites_with_stats(&npus, &models);
    let elapsed = t.elapsed().as_secs_f64() * 1e3;
    assert!(!evals.is_empty(), "sweep produced results");
    elapsed
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_telemetry.json".to_owned());

    // Install the discarding sink once; the two arms differ only in the
    // enabled flag, so every instrumented call site either short-circuits
    // on the flag (disabled arm) or dispatches into NoopSink (noop arm).
    static NOOP: telemetry::NoopSink = telemetry::NoopSink;
    telemetry::install(&NOOP).expect("first and only install");

    // Warmup: one un-timed sweep so allocator and page-cache state is
    // identical for both arms.
    telemetry::set_enabled(false);
    run_headline_sweep();

    let mut disabled_trials_ms = Vec::with_capacity(TRIALS);
    let mut noop_trials_ms = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        telemetry::set_enabled(false);
        let off = run_headline_sweep();
        telemetry::set_enabled(true);
        let on = run_headline_sweep();
        println!("trial {trial}: disabled {off:8.2} ms, noop-sink {on:8.2} ms");
        disabled_trials_ms.push(off);
        noop_trials_ms.push(on);
    }
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let (disabled_ms, noop_ms) = (min(&disabled_trials_ms), min(&noop_trials_ms));

    let record = OverheadRecord {
        trials: TRIALS,
        disabled_ms: round6(disabled_ms),
        noop_ms: round6(noop_ms),
        delta: round6(noop_ms / disabled_ms - 1.0),
        disabled_trials_ms: disabled_trials_ms.iter().copied().map(round6).collect(),
        noop_trials_ms: noop_trials_ms.iter().copied().map(round6).collect(),
    };
    println!(
        "best of {TRIALS}: disabled {:.2} ms, noop-sink {:.2} ms, delta {:+.2}%",
        record.disabled_ms,
        record.noop_ms,
        record.delta * 100.0
    );

    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write(&out_path, json).expect("writable path");
    eprintln!("wrote {out_path}");

    assert!(
        record.delta < MAX_DELTA,
        "no-op telemetry costs {:+.2}% on the headline sweep (bound {:.0}%)",
        record.delta * 100.0,
        MAX_DELTA * 100.0
    );
    println!(
        "OK: no-op telemetry within the {:.0}% bound",
        MAX_DELTA * 100.0
    );
}
