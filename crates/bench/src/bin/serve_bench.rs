//! Throughput benchmark for the `seda-serve` event kernel.
//!
//! Runs a synthetic 100k-request four-tenant serving spec (EDF with
//! preemption, four replicas, batching, burst + diurnal modulation — the
//! most branch-heavy configuration) through the event-driven kernel
//! twice: once to pin determinism (both runs must produce bit-identical
//! outcomes) and once under the clock. Records events/sec and wall-clock
//! in `BENCH_serve.json` so CI can archive the kernel's perf trajectory
//! PR over PR.
//!
//! With `--max-ms <ms>` the run additionally acts as a regression gate:
//! the timed simulation exceeding the budget fails the process.
//!
//! Usage: `cargo run --release -p seda-bench --bin serve_bench --
//! [out.json] [--requests <n>] [--max-ms <ms>]`

use seda_bench::round6;
use seda_serve::{simulate, ArrivalSim, BurstSim, DiurnalSim, Scheduler, SimSpec, TenantSim};
use serde::Serialize;
use std::time::Instant;

/// Machine-readable record of one serve-bench run.
#[derive(Serialize)]
struct BenchRecord {
    /// Requests issued by the open-loop arrival process.
    requests: u64,
    /// Tenants in the lineup.
    tenants: usize,
    /// NPU replicas drained from the shared queue.
    replicas: u32,
    /// Arrival + layer-done events the kernel processed.
    events: u64,
    /// Timed-run wall-clock, milliseconds.
    wall_ms: f64,
    /// Events processed per wall-clock second.
    events_per_sec: f64,
    /// Requests completed per wall-clock second.
    requests_per_sec: f64,
    /// Simulated cycles covered by the run.
    end_cycle: u64,
    /// Whether the two runs produced bit-identical outcomes.
    deterministic: bool,
}

/// The branch-heavy synthetic spec: mixed batch depths, SLAs on half the
/// lineup, preemptive EDF, and both arrival modulations active.
fn bench_spec(requests: u64) -> SimSpec {
    let tenant = |name: &str, profiles: Vec<Vec<u64>>, sla: Option<u64>, weight| TenantSim {
        name: name.to_owned(),
        profiles,
        sla_cycles: sla,
        weight,
    };
    SimSpec {
        seed: 0x5EDA,
        scheduler: Scheduler::Edf { preempt: true },
        replicas: 4,
        max_batch: 4,
        tenants: vec![
            tenant(
                "interactive",
                vec![
                    vec![40, 25, 15],
                    vec![12, 8, 5],
                    vec![12, 8, 5],
                    vec![12, 8, 5],
                ],
                Some(600),
                3,
            ),
            tenant(
                "batchy",
                vec![vec![120, 90], vec![30, 25], vec![30, 25], vec![30, 25]],
                None,
                2,
            ),
            tenant(
                "tiny",
                vec![vec![9], vec![4], vec![4], vec![4]],
                Some(200),
                4,
            ),
            tenant(
                "heavy",
                vec![vec![300, 200, 150, 100], vec![80, 60, 40, 30]],
                None,
                1,
            ),
        ],
        arrival: ArrivalSim::OpenLoop {
            mean_cycles: 55.0,
            requests,
            burst: Some(BurstSim {
                period_cycles: 40_000.0,
                duty_pct: 25.0,
                factor: 3.0,
            }),
            diurnal: Some(DiurnalSim {
                period_cycles: 400_000.0,
                amplitude: 0.5,
            }),
        },
        swaps: vec![],
    }
}

fn main() {
    let mut out_path = "BENCH_serve.json".to_owned();
    let mut max_ms: Option<f64> = None;
    let mut requests = 100_000u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-ms" => {
                let v = args.next().expect("--max-ms needs a value");
                max_ms = Some(v.parse().expect("--max-ms must be a number"));
            }
            "--requests" => {
                let v = args.next().expect("--requests needs a value");
                requests = v.parse().expect("--requests must be an integer");
            }
            other => out_path = other.to_owned(),
        }
    }

    let spec = bench_spec(requests);
    let reference = simulate(&spec);
    let t0 = Instant::now();
    let timed = simulate(&spec);
    let wall = t0.elapsed();
    let deterministic = reference == timed;
    assert!(
        deterministic,
        "two runs of the same spec must be bit-identical"
    );

    let wall_s = wall.as_secs_f64();
    let record = BenchRecord {
        requests,
        tenants: spec.tenants.len(),
        replicas: spec.replicas,
        events: timed.events,
        wall_ms: round6(wall_s * 1e3),
        events_per_sec: round6(timed.events as f64 / wall_s),
        requests_per_sec: round6(timed.completions.len() as f64 / wall_s),
        end_cycle: timed.end_cycle,
        deterministic,
    };
    println!(
        "serve kernel: {} requests, {} tenants, {} replicas (EDF preempt, batch 4)",
        record.requests, record.tenants, record.replicas
    );
    println!(
        "{} events in {:.2} ms — {:.0} events/sec, {:.0} requests/sec",
        record.events, record.wall_ms, record.events_per_sec, record.requests_per_sec
    );
    println!(
        "covered {} simulated cycles; outcomes bit-identical across runs",
        record.end_cycle
    );
    let json = serde_json::to_string_pretty(&record).expect("record serializes");
    std::fs::write(&out_path, json).expect("writable bench record path");
    println!("recorded to {out_path}");
    if let Some(limit) = max_ms {
        if record.wall_ms > limit {
            eprintln!(
                "REGRESSION: serve kernel took {:.2} ms, over the {limit:.2} ms budget",
                record.wall_ms
            );
            std::process::exit(1);
        }
        println!("within the {limit:.2} ms budget");
    }
}
