//! Per-layer accelerator report: tile plan, traffic, compute/memory
//! balance, and array utilization for any workload on either NPU — the
//! SCALE-Sim-style drill-down behind the aggregate figures.
//!
//! Usage: `cargo run --release -p seda-bench --bin layer_report [workload] [server|edge]`

use seda::models::zoo;
use seda::pipeline::run_model;
use seda::protect::Unprotected;
use seda::scalesim::{simulate_model, utilization, NpuConfig, Schedule};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args.get(1).map(String::as_str).unwrap_or("rest");
    let npu = match args.get(2).map(String::as_str) {
        Some("server") => NpuConfig::server(),
        _ => NpuConfig::edge(),
    };
    let Some(model) = zoo::by_name(workload) else {
        eprintln!("unknown workload {workload:?}");
        eprintln!("available: let alex mob rest goo dlrm algo ds2 fast ncf sent trf yolo");
        std::process::exit(1);
    };

    let sim = simulate_model(&npu, &model);
    let run = run_model(&npu, &model, &mut Unprotected::new());

    println!(
        "layer report: {} on {} NPU ({}x{}, {} KB SRAM)\n",
        model.name(),
        npu.name,
        npu.rows,
        npu.cols,
        npu.sram_bytes >> 10
    );
    println!(
        "{:<14} {:>9} {:>7} {:>7} {:>12} {:>11} {:>11} {:>6} {:>6}",
        "layer",
        "schedule",
        "strips",
        "chunks",
        "traffic B",
        "compute cy",
        "memory cy",
        "bound",
        "util"
    );
    for (layer, (l, t)) in model
        .layers()
        .iter()
        .zip(sim.layers.iter().zip(run.layers.iter()))
    {
        let sched = match l.plan.schedule {
            Schedule::IfmapResident => "ifmap",
            Schedule::FilterResident => "filter",
            Schedule::OutputResident => "output",
        };
        println!(
            "{:<14} {:>9} {:>7} {:>7} {:>12} {:>11} {:>11} {:>6} {:>5.1}%",
            l.name,
            sched,
            l.plan.strips,
            l.plan.chunks,
            l.traffic.total(),
            t.compute_cycles,
            t.memory_cycles,
            if t.compute_cycles >= t.memory_cycles {
                "comp"
            } else {
                "mem"
            },
            utilization(&npu, layer.gemm_shape()) * 100.0,
        );
    }
    println!(
        "\ntotals: {} bytes of demand traffic, {} cycles ({:.3} ms @ {:.2} GHz)",
        run.traffic.total(),
        run.total_cycles,
        run.total_cycles as f64 / npu.clock_hz * 1e3,
        npu.clock_hz / 1e9
    );
}
