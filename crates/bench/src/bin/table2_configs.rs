//! Regenerates Table II: the server (Google TPU v1) and edge (Samsung
//! Exynos 990) NPU simulation configurations.
//!
//! Usage: `cargo run --release -p seda-bench --bin table2_configs`

use seda::scalesim::NpuConfig;

fn main() {
    print!(
        "{}",
        seda::report::table2(&[NpuConfig::server(), NpuConfig::edge()])
    );
}
