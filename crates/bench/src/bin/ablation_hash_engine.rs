//! Ablation: integrity-verifier throughput sensitivity.
//!
//! Sweeps the hash engine's sustained throughput and reports ResNet-18
//! runtime on the edge NPU under SeDA, showing the sizing cliff: once the
//! verifier matches memory bandwidth it leaves the critical path entirely,
//! and further lanes are wasted area.
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_hash_engine`

use seda::models::zoo;
use seda::pipeline::{run_model, run_model_with_verifier};
use seda::protect::{HashEngine, LayerMacStore, SedaScheme, Unprotected, PROTECTED_BYTES};
use seda::scalesim::NpuConfig;

fn main() {
    let npu = NpuConfig::edge();
    let model = zoo::resnet18();
    let base = run_model(&npu, &model, &mut Unprotected::new());
    println!("Ablation: hash-engine throughput (rest, edge NPU, SeDA)");
    println!(
        "(memory system needs {:.1} B/cycle at this clock)\n",
        npu.dram_bandwidth / npu.clock_hz
    );
    println!("{:>12} {:>14} {:>10}", "throughput", "cycles", "slowdown");
    for bpc in [0.5f64, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let engine = HashEngine::new(bpc, 80);
        let r = run_model_with_verifier(
            &npu,
            &model,
            &mut SedaScheme::new(LayerMacStore::OffChip, PROTECTED_BYTES),
            Some(&engine),
        );
        println!(
            "{:>8.1} B/cy {:>14} {:>9.4}x",
            bpc,
            r.total_cycles,
            r.total_cycles as f64 / base.total_cycles as f64
        );
    }
    println!();
    println!("Below the memory system's B/cycle demand the verifier throttles");
    println!("every layer; above it, only the fixed per-layer drain remains.");
}
