//! Demonstrates Algorithm 2: the Re-Permutation Attack against XOR-folded
//! layer MACs, and SeDA's position-binding defense.
//!
//! Usage: `cargo run --release -p seda-bench --bin alg2_repa`

use seda::attacks::repa::{mount_repa, MacBinding, ProtectedLayer};

fn main() {
    println!("Algorithm 2: RePA attack — shuffle a layer's ciphertext blocks and");
    println!("test whether the XOR-folded layer MAC still verifies.\n");
    let plaintext: Vec<u8> = (0..64 * 64).map(|i| (i % 251) as u8).collect();
    println!(
        "{:<36} {:>10} {:>12} {:>9}",
        "block MAC construction", "verifies?", "decrypt ok%", "broken?"
    );
    for (name, binding) in [
        (
            "Hash(ciphertext) only (Securator-ish)",
            MacBinding::CiphertextOnly,
        ),
        (
            "Hash(blk||PA||VN||layer||fmap||blk)",
            MacBinding::PositionBound,
        ),
    ] {
        let mut layer = ProtectedLayer::seal(&plaintext, 64, 0x4000, 7, binding);
        let out = mount_repa(&mut layer, &plaintext);
        println!(
            "{:<36} {:>10} {:>11.1}% {:>9}",
            name,
            if out.verification_passed {
                "PASS"
            } else {
                "FAIL"
            },
            out.decryption_accuracy * 100.0,
            if out.success { "BROKEN" } else { "safe" }
        );
    }
    println!("\nXOR folds are order-insensitive, so a shuffled layer passes the");
    println!("ciphertext-only check while CTR decryption (address-bound pads)");
    println!("silently yields garbage activations. Binding layer/fmap/block");
    println!("position into each optBlk MAC (Alg. 2 lines 7-8) detects the swap.");
}
