//! Ablation: output-stationary vs weight-stationary dataflow.
//!
//! The Table II presets use an output-stationary mapping; this ablation
//! re-runs a workload slice under weight-stationary to show the protection
//! overheads are dataflow-robust (traffic structure, not the PE mapping,
//! drives them).
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_dataflow`

use seda::models::zoo;
use seda::pipeline::run_model;
use seda::protect::{BlockMacKind, BlockMacScheme, Unprotected, PROTECTED_BYTES};
use seda::scalesim::{Dataflow, NpuConfig};

fn main() {
    println!("Ablation: dataflow sensitivity (edge NPU, SGX-64B overheads)");
    println!(
        "{:<10} {:<18} {:>12} {:>14} {:>10}",
        "workload", "dataflow", "base cycles", "SGX-64B cycles", "slowdown"
    );
    for model in [zoo::resnet18(), zoo::dlrm(), zoo::yolo_tiny()] {
        for (label, df) in [
            ("output-stationary", Dataflow::OutputStationary),
            ("weight-stationary", Dataflow::WeightStationary),
        ] {
            let mut npu = NpuConfig::edge();
            npu.dataflow = df;
            let base = run_model(&npu, &model, &mut Unprotected::new());
            let sgx = run_model(
                &npu,
                &model,
                &mut BlockMacScheme::new(BlockMacKind::Sgx, 64, PROTECTED_BYTES),
            );
            println!(
                "{:<10} {:<18} {:>12} {:>14} {:>9.4}x",
                model.name(),
                label,
                base.total_cycles,
                sgx.total_cycles,
                sgx.total_cycles as f64 / base.total_cycles as f64
            );
        }
    }
    println!();
    println!("Compute cycles shift with the mapping, but the protection slowdown");
    println!("is driven by the memory system: it stays in the same band under");
    println!("either dataflow (shrinking only where compute becomes the bound).");
}
