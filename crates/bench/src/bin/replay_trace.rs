//! Replays a burst trace file through a protection scheme and the DRAM
//! simulator — the Ramulator-style standalone replay interface.
//!
//! Usage: `cargo run --release -p seda-bench --bin replay_trace -- <trace> [scheme] [server|edge]`
//! where scheme is one of baseline, SGX-64B, SGX-512B, MGX-64B, MGX-512B, SeDA.

use seda::dram::{DramConfig, DramSim};
use seda::protect::{scheme_by_name, ProtectionScheme};
use seda::scalesim::parse_trace;

fn make_scheme(name: &str) -> Box<dyn ProtectionScheme> {
    scheme_by_name(name).unwrap_or_else(|| {
        eprintln!("unknown scheme {name:?}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        eprintln!("usage: replay_trace <trace-file> [scheme] [server|edge]");
        std::process::exit(1);
    };
    let text = std::fs::read_to_string(path).expect("readable trace file");
    let bursts = match parse_trace(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let mut scheme = make_scheme(args.get(2).map(String::as_str).unwrap_or("baseline"));
    let dram_cfg = match args.get(3).map(String::as_str) {
        Some("server") => DramConfig::server(),
        _ => DramConfig::edge(),
    };
    let mut dram = DramSim::new(dram_cfg);
    for b in &bursts {
        scheme.transform(b, &mut |r| {
            dram.access(r);
        });
    }
    scheme.finish(&mut |r| {
        dram.access(r);
    });
    let t = scheme.breakdown();
    println!("bursts:          {}", bursts.len());
    println!("scheme:          {}", scheme.name());
    println!("demand bytes:    {}", t.demand());
    println!("overfetch bytes: {}", t.overfetch_read);
    println!("metadata bytes:  {}", t.metadata());
    println!("total bytes:     {}", t.total());
    println!("dram accesses:   {}", dram.stats().accesses());
    println!("row hit rate:    {:.2}%", dram.stats().hit_rate() * 100.0);
    println!("memory cycles:   {}", dram.elapsed_cycles());
    println!(
        "achieved bw:     {:.2} GB/s of {:.2} GB/s peak",
        dram.achieved_bandwidth() / 1e9,
        dram.config().peak_bandwidth() / 1e9
    );
}
