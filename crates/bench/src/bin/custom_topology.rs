//! Runs a user-supplied SCALE-Sim-style CSV topology through the full
//! scheme comparison — bring-your-own-network support.
//!
//! Usage: `cargo run --release -p seda-bench --bin custom_topology -- <net.csv> [server|edge]`
//! With no arguments, a built-in sample topology demonstrates the format.

use seda::experiment::evaluate;
use seda::models::{parse_topology, Model};
use seda::report::{figure5, figure6};
use seda::scalesim::NpuConfig;

const SAMPLE: &str = "\
# sample topology: a small conv net
Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,
Conv1, 114, 114, 3, 3, 3, 32, 2,
Conv2, 58, 58, 3, 3, 32, 64, 1,
Conv3, 30, 30, 3, 3, 64, 128, 2,
FC, 1, 25088, 1, 1, 1, 1000, 1,
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model: Model = match args.get(1) {
        Some(path) => {
            let text = std::fs::read_to_string(path).expect("readable topology file");
            match parse_topology("custom", &text) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            println!("(no topology given; using the built-in sample)\n{SAMPLE}");
            parse_topology("sample", SAMPLE).expect("sample is valid")
        }
    };
    let npu = match args.get(2).map(String::as_str) {
        Some("server") => NpuConfig::server(),
        _ => NpuConfig::edge(),
    };
    println!(
        "{}: {} layers, {:.2} M weights, {:.1} GMACs on the {} NPU\n",
        model.name(),
        model.layers().len(),
        model.weight_bytes() as f64 / 1e6,
        model.total_macs() as f64 / 1e9,
        npu.name
    );
    let eval = evaluate(&npu, std::slice::from_ref(&model));
    print!("{}", figure5(&eval));
    println!();
    print!("{}", figure6(&eval));
}
