//! Ablation: protection granularity sweep for the MGX-style scheme.
//!
//! Sweeps the MAC protection-block size from 64 B to 4 KB on three
//! workloads, exposing the tension Table I describes: coarse blocks cut
//! metadata but pay alignment overfetch and read-modify-write fills where
//! tiling produces short runs.
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_granularity`

use seda::models::zoo;
use seda::pipeline::run_model;
use seda::protect::{BlockMacKind, BlockMacScheme, Unprotected, PROTECTED_BYTES};
use seda::scalesim::NpuConfig;

fn main() {
    let npu = NpuConfig::edge();
    println!("Ablation: MGX protection granularity sweep (edge NPU)");
    println!(
        "{:<10} {:>7} {:>13} {:>13} {:>16} {:>11}",
        "workload", "g", "MAC bytes", "overfetch B", "traffic overhead", "slowdown"
    );
    for model in [zoo::alexnet(), zoo::mobilenet(), zoo::transformer_fwd()] {
        let base = run_model(&npu, &model, &mut Unprotected::new());
        for g in [64u64, 128, 256, 512, 1024, 2048, 4096] {
            let mut scheme = BlockMacScheme::new(BlockMacKind::Mgx, g, PROTECTED_BYTES);
            let run = run_model(&npu, &model, &mut scheme);
            println!(
                "{:<10} {:>6}B {:>13} {:>13} {:>15.2}% {:>10.4}x",
                model.name(),
                g,
                run.traffic.mac_read + run.traffic.mac_write,
                run.traffic.overfetch_read,
                (run.traffic.total() as f64 / base.traffic.total() as f64 - 1.0) * 100.0,
                run.total_cycles as f64 / base.total_cycles as f64,
            );
        }
        println!();
    }
    println!("MAC metadata shrinks with granularity while overfetch grows: the");
    println!("optimum is workload-dependent, motivating SeDA's per-layer optBlk.");
}
