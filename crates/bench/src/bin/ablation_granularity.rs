//! Ablation: protection granularity sweep for the MGX-style scheme.
//!
//! Sweeps the MAC protection-block size from 64 B to 4 KB on three
//! workloads, exposing the tension Table I describes: coarse blocks cut
//! metadata but pay alignment overfetch and read-modify-write fills where
//! tiling produces short runs. The whole grid runs as one parallel sweep;
//! each workload's trace is simulated once and shared by all eight
//! scheme points.
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_granularity`

use seda::models::zoo;
use seda::protect::{BlockMacKind, BlockMacScheme, PROTECTED_BYTES};
use seda::scalesim::NpuConfig;
use seda::sweep::Sweep;

const GRANULARITIES: [u64; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

fn main() {
    let models = [zoo::alexnet(), zoo::mobilenet(), zoo::transformer_fwd()];
    let mut sweep = Sweep::new()
        .npu(NpuConfig::edge())
        .models(models.iter().cloned())
        .scheme("baseline");
    for g in GRANULARITIES {
        sweep = sweep.scheme_with(&format!("MGX-{g}B"), move || {
            Box::new(BlockMacScheme::new(BlockMacKind::Mgx, g, PROTECTED_BYTES))
        });
    }
    let results = sweep.run();

    println!("Ablation: MGX protection granularity sweep (edge NPU)");
    println!(
        "{:<10} {:>7} {:>13} {:>13} {:>16} {:>11}",
        "workload", "g", "MAC bytes", "overfetch B", "traffic overhead", "slowdown"
    );
    for (mi, model) in models.iter().enumerate() {
        let base = results.at(0, mi, 0);
        for (gi, g) in GRANULARITIES.iter().enumerate() {
            let run = results.at(0, mi, gi + 1);
            println!(
                "{:<10} {:>6}B {:>13} {:>13} {:>15.2}% {:>10.4}x",
                model.name(),
                g,
                run.traffic.mac_read + run.traffic.mac_write,
                run.traffic.overfetch_read,
                (run.traffic.total() as f64 / base.traffic.total() as f64 - 1.0) * 100.0,
                run.total_cycles as f64 / base.total_cycles as f64,
            );
        }
        println!();
    }
    println!("MAC metadata shrinks with granularity while overfetch grows: the");
    println!("optimum is workload-dependent, motivating SeDA's per-layer optBlk.");
}
