//! Ablation: protection granularity sweep for the MGX-style scheme.
//!
//! Thin wrapper over the registered `ablation_granularity` scenario: MAC
//! protection-block sizes from 64 B to 4 KB on three workloads, exposing
//! the tension Table I describes — coarse blocks cut metadata but pay
//! alignment overfetch and read-modify-write fills where tiling produces
//! short runs. The grid lives in `scenarios/ablation_granularity.json`.
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_granularity`

use seda::scenario;

fn main() {
    let run = scenario::load("ablation_granularity")
        .and_then(|s| s.run())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    print!("{}", run.render());
    println!("MAC metadata shrinks with granularity while overfetch grows: the");
    println!("optimum is workload-dependent, motivating SeDA's per-layer optBlk.");
}
