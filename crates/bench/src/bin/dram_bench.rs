//! Times the batched DRAM replay kernel against the exact per-access
//! kernel on the headline sweep's own request streams.
//!
//! Every (NPU, workload, scheme) point of the Fig. 5/6 matrix is lowered
//! once (via [`LoweredTrace`]) into the flat *packed* request stream the
//! pipeline replays (8 B per request — see `Request::pack`), then the
//! stream is driven through both kernels from identical cold starts:
//!
//! * **per-access** — `DramSim::access` per request, the exact kernel the
//!   batched path falls back to;
//! * **batched** — `DramSim::run_batch_packed`, the streak-coalescing
//!   fast path on the packed stream, exactly as `pipeline::run_trace`
//!   replays layer slices.
//!
//! The two must agree bit for bit — stats, elapsed clock, per-bank
//! occupancy — on *every* stream; the binary exits non-zero otherwise, so
//! CI's smoke step doubles as a conformance gate on real workload traffic.
//! Alongside the timing, the run records the streams' sequential
//! streak-length histogram (the structural property the fast path
//! exploits) in `BENCH_dram.json` (or the path given as the first
//! non-flag argument). Floats are rounded to six decimals
//! ([`seda_bench::round6`]) so archived artifacts diff cleanly.
//!
//! With `--max-ms-per-point <ms>` the run additionally acts as a
//! performance regression gate: it exits non-zero when the batched
//! kernel's per-point replay time exceeds the threshold, so CI pins the
//! fast path's speed alongside its correctness.
//!
//! Usage: `cargo run --release -p seda-bench --bin dram_bench
//! [out.json] [--max-ms-per-point <ms>]`
//!
//! [`LoweredTrace`]: seda::pipeline::LoweredTrace

use seda::dram::{DramSim, Request};
use seda::experiment::scheme_names;
use seda::models::zoo;
use seda::pipeline::{dram_config_for, LoweredTrace};
use seda::protect::scheme_by_name;
use seda::scalesim::{NpuConfig, TraceCache};
use seda_bench::round6;
use serde::Serialize;
use std::time::Instant;

/// One power-of-two bucket of the sequential streak-length histogram.
#[derive(Serialize)]
struct StreakBucket {
    /// Inclusive lower bound of the bucket (streak length in requests).
    min_len: u64,
    /// Streaks whose length lands in `[min_len, 2 * min_len)`.
    streaks: u64,
    /// Requests covered by those streaks.
    requests: u64,
}

/// Machine-readable record of one dram-bench run.
#[derive(Serialize)]
struct DramBenchRecord {
    /// Sweep points whose streams were replayed (NPUs × workloads ×
    /// schemes — the full headline matrix).
    points: usize,
    /// Total requests replayed through each kernel.
    requests: u64,
    /// Exact per-access kernel wall-clock, milliseconds.
    per_access_ms: f64,
    /// Batched kernel wall-clock, milliseconds.
    batched_ms: f64,
    /// Per-access kernel cost, nanoseconds per request.
    per_access_ns_per_access: f64,
    /// Batched kernel cost, nanoseconds per request.
    batched_ns_per_access: f64,
    /// per_access_ms / batched_ms — the replay-time reduction.
    speedup: f64,
    /// DRAM replay wall-clock per sweep point before (per-access kernel).
    dram_replay_ms_per_point_before: f64,
    /// DRAM replay wall-clock per sweep point after (batched kernel).
    dram_replay_ms_per_point_after: f64,
    /// Sequential streak lengths across all streams, power-of-two buckets.
    streak_histogram: Vec<StreakBucket>,
    /// Whether both kernels agreed bit for bit on every stream.
    identical: bool,
}

/// Tallies maximal sequential streaks (consecutive 64 B blocks, same
/// direction — the pattern the batched kernel coalesces) into
/// power-of-two length buckets.
#[derive(Default)]
struct StreakHistogram {
    /// `streaks[i]` counts streaks with length in `[2^i, 2^(i+1))`.
    streaks: Vec<u64>,
    /// `requests[i]` sums the requests those streaks cover.
    requests: Vec<u64>,
}

impl StreakHistogram {
    fn add_streak(&mut self, len: u64) {
        let bucket = len.ilog2() as usize;
        if self.streaks.len() <= bucket {
            self.streaks.resize(bucket + 1, 0);
            self.requests.resize(bucket + 1, 0);
        }
        self.streaks[bucket] += 1;
        self.requests[bucket] += len;
    }

    /// Scans a packed stream: a streak extends while the packed word
    /// advances by exactly 2 (next block, same direction).
    fn scan(&mut self, stream: &[u64]) {
        let mut len = 0u64;
        let mut prev = u64::MAX;
        for &p in stream {
            if len > 0 && p == prev + 2 {
                len += 1;
            } else {
                if len > 0 {
                    self.add_streak(len);
                }
                len = 1;
            }
            prev = p;
        }
        if len > 0 {
            self.add_streak(len);
        }
    }

    fn buckets(&self) -> Vec<StreakBucket> {
        self.streaks
            .iter()
            .zip(&self.requests)
            .enumerate()
            .filter(|(_, (s, _))| **s > 0)
            .map(|(i, (s, r))| StreakBucket {
                min_len: 1 << i,
                streaks: *s,
                requests: *r,
            })
            .collect()
    }
}

fn main() {
    let mut out_path = "BENCH_dram.json".to_owned();
    let mut max_ms_per_point: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--max-ms-per-point" {
            let v = args.next().expect("--max-ms-per-point needs a value");
            max_ms_per_point = Some(v.parse().expect("--max-ms-per-point must be a number"));
        } else {
            out_path = arg;
        }
    }
    let npus = [NpuConfig::server(), NpuConfig::edge()];
    let models = zoo::all_models();
    let cache = TraceCache::new();

    let mut points = 0usize;
    let mut requests = 0u64;
    let mut per_access = 0.0f64;
    let mut batched = 0.0f64;
    let mut histogram = StreakHistogram::default();
    let mut identical = true;

    for npu in &npus {
        let cfg = dram_config_for(npu);
        for model in &models {
            let sim = cache.get_or_simulate(npu, model);
            for name in scheme_names() {
                // Lower the point's stream exactly as the pipeline would:
                // a fresh scheme instance rewriting the shared trace.
                let mut scheme = scheme_by_name(name).expect("lineup name");
                let lowered = LoweredTrace::lower(&sim, scheme.as_mut());
                let stream = lowered.requests();
                points += 1;
                requests += stream.len() as u64;
                histogram.scan(stream);

                let mut exact = DramSim::new(cfg.clone());
                let t0 = Instant::now();
                for &p in stream {
                    exact.access(Request::unpack(p));
                }
                per_access += t0.elapsed().as_secs_f64();

                let mut fast = DramSim::new(cfg.clone());
                let t1 = Instant::now();
                fast.run_batch_packed(stream);
                batched += t1.elapsed().as_secs_f64();

                let agrees = exact.stats() == fast.stats()
                    && exact.elapsed_cycles() == fast.elapsed_cycles()
                    && exact.bank_occupancy_cycles() == fast.bank_occupancy_cycles();
                if !agrees {
                    identical = false;
                    eprintln!(
                        "KERNEL DIVERGENCE at {}/{}/{name}: \
                         exact {:?} elapsed {} vs batched {:?} elapsed {}",
                        npu.name,
                        model.name(),
                        exact.stats(),
                        exact.elapsed_cycles(),
                        fast.stats(),
                        fast.elapsed_cycles()
                    );
                }
            }
        }
    }

    let record = DramBenchRecord {
        points,
        requests,
        per_access_ms: round6(per_access * 1e3),
        batched_ms: round6(batched * 1e3),
        per_access_ns_per_access: round6(per_access * 1e9 / requests.max(1) as f64),
        batched_ns_per_access: round6(batched * 1e9 / requests.max(1) as f64),
        speedup: round6(per_access / batched.max(f64::MIN_POSITIVE)),
        dram_replay_ms_per_point_before: round6(per_access * 1e3 / points.max(1) as f64),
        dram_replay_ms_per_point_after: round6(batched * 1e3 / points.max(1) as f64),
        streak_histogram: histogram.buckets(),
        identical,
    };

    println!(
        "dram replay: {} points, {} requests ({} workloads x {} schemes x {} NPUs)",
        record.points,
        record.requests,
        models.len(),
        scheme_names().len(),
        npus.len()
    );
    println!(
        "per-access kernel: {:8.2} ms ({:6.1} ns/access)",
        record.per_access_ms, record.per_access_ns_per_access
    );
    println!(
        "batched kernel:    {:8.2} ms ({:6.1} ns/access)",
        record.batched_ms, record.batched_ns_per_access
    );
    println!(
        "replay time per point: {:.3} ms -> {:.3} ms ({:.2}x)",
        record.dram_replay_ms_per_point_before,
        record.dram_replay_ms_per_point_after,
        record.speedup
    );
    for b in &record.streak_histogram {
        println!(
            "  streak len {:>5}+: {:>8} streaks, {:>9} requests",
            b.min_len, b.streaks, b.requests
        );
    }

    let json = serde_json::to_string_pretty(&record).expect("serializable");
    std::fs::write(&out_path, json).expect("writable path");
    eprintln!("wrote {out_path}");

    if !record.identical {
        eprintln!("FAILED: batched kernel diverged from the per-access kernel");
        std::process::exit(1);
    }
    println!("identity: batched kernel bit-identical on all {points} streams");

    if let Some(limit) = max_ms_per_point {
        if record.dram_replay_ms_per_point_after > limit {
            eprintln!(
                "FAILED: batched replay {:.3} ms/point exceeds the {limit} ms gate",
                record.dram_replay_ms_per_point_after
            );
            std::process::exit(1);
        }
        println!(
            "regression gate: {:.3} ms/point within the {limit} ms budget",
            record.dram_replay_ms_per_point_after
        );
    }
}
