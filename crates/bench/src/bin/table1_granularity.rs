//! Regenerates Table I: the qualitative comparison of SeDA's multi-level
//! integrity-verification granularities.
//!
//! Usage: `cargo run --release -p seda-bench --bin table1_granularity`

fn main() {
    print!("{}", seda::report::table1());
}
