//! Cross-validation report: the fast analytical/loop models against their
//! high-fidelity counterparts.
//!
//! * Compute: closed-form fold cycles vs the cycle-accurate systolic
//!   array simulation, on every layer of ResNet-18 and MobileNet.
//! * DRAM: the per-access timing model vs the command-level FR-FCFS
//!   scheduler, on streaming, thrashing, and protection-shaped mixes.
//!
//! Usage: `cargo run --release -p seda-bench --bin validate_sim`

use seda::dram::{simulate_commands, DramConfig, DramSim, Request};
use seda::models::zoo;
use seda::scalesim::{exact_gemm, gemm_cycles, NpuConfig};

fn main() {
    println!("== compute model: closed form vs cycle-accurate array ==\n");
    let cfg = NpuConfig::edge();
    let mut worst: f64 = 1.0;
    let mut checked = 0u32;
    for model in [zoo::resnet18(), zoo::mobilenet(), zoo::dlrm()] {
        for layer in model.layers() {
            let shape = layer.gemm_shape();
            let analytical = gemm_cycles(&cfg, shape);
            let exact = exact_gemm(&cfg, shape);
            assert_eq!(exact.macs, shape.macs(), "{}", layer.name);
            let ratio = analytical as f64 / exact.cycles as f64;
            worst = worst.max(ratio.max(1.0 / ratio));
            checked += 1;
        }
    }
    println!("checked {checked} layers: closed form == cycle-accurate (worst ratio {worst:.6})");

    println!("\n== DRAM model: per-access timing vs command-level FR-FCFS ==\n");
    println!(
        "{:<26} {:>12} {:>12} {:>8}",
        "pattern", "fast cycles", "cmd cycles", "ratio"
    );
    let patterns: Vec<(&str, Vec<Request>)> = vec![
        (
            "sequential stream",
            (0..40_000u64).map(|i| Request::read(i * 64)).collect(),
        ),
        (
            "strided row walk",
            (0..8_000u64)
                .map(|i| Request::read(i * 64 * 128 * 4))
                .collect(),
        ),
        ("protection-shaped mix", {
            let mut v = Vec::new();
            for i in 0..20_000u64 {
                v.push(Request::read(i * 64));
                if i % 8 == 0 {
                    v.push(Request::read((1 << 30) + i / 8 * 64));
                }
                if i % 64 == 0 {
                    v.push(Request::write((1 << 31) + i * 64));
                }
            }
            v
        }),
    ];
    for (name, reqs) in patterns {
        let dram_cfg = DramConfig::server();
        let cmd = simulate_commands(&dram_cfg, reqs.clone());
        let mut fast = DramSim::new(dram_cfg);
        fast.run(reqs);
        println!(
            "{:<26} {:>12} {:>12} {:>8.3}",
            name,
            fast.elapsed_cycles(),
            cmd.cycles,
            cmd.cycles as f64 / fast.elapsed_cycles() as f64
        );
    }
    println!();
    println!("The command scheduler sees the whole queue (perfect lookahead), so");
    println!("it lower-bounds the in-order fast model on scattered mixes; on the");
    println!("streaming patterns that dominate DNN traffic the two agree closely.");
}
