//! Regenerates Fig. 4: area and power of T-AES (engine replication) vs
//! B-AES (SeDA's bandwidth-aware single-engine design) as the required
//! encryption bandwidth grows, in multiples of one AES engine's bandwidth.
//!
//! Usage: `cargo run --release -p seda-bench --bin fig4_area_power`

use seda::hw::fig4_sweep;

fn main() {
    println!("Fig. 4: 28nm area/power vs encryption bandwidth requirement");
    println!(
        "{:>9} {:>14} {:>14} {:>12} {:>12} {:>11} {:>11}",
        "multiple", "T-AES mm^2", "B-AES mm^2", "T-AES mW", "B-AES mW", "area ratio", "power ratio"
    );
    for row in fig4_sweep(16) {
        println!(
            "{:>9} {:>14.5} {:>14.5} {:>12.3} {:>12.3} {:>10.2}x {:>10.2}x",
            row.multiple,
            row.taes.area_mm2,
            row.baes.area_mm2,
            row.taes.power_mw,
            row.baes.power_mw,
            row.taes.area_mm2 / row.baes.area_mm2,
            row.taes.power_mw / row.baes.power_mw,
        );
    }
    println!();
    println!("B-AES area and power stay nearly flat while T-AES scales linearly;");
    println!("at Securator's 4x point (64B blocks) B-AES saves >60% of the crypto area.");
}
