//! Throughput benchmark for the `seda-stream` provisioning pipeline.
//!
//! Seals a zoo model (default: the 37-layer transformer, tiled by
//! `--layers`) into an authenticated provisioning stream, then
//! unseals it twice through [`seda_stream::measure`] — the
//! double-buffered crypto/DRAM-replay pipeline plus its serial
//! baseline. The two unseals must land on bit-identical images (root
//! and ciphertext; wall-clock is allowed to differ), and the second
//! run's sustained GB/s and overlap efficiency are recorded in
//! `BENCH_stream.json` so CI can archive the provisioning-path perf
//! trajectory PR over PR.
//!
//! With `--min-gbps <g>` the run additionally acts as a regression
//! gate: sustained throughput below the floor fails the process.
//!
//! Usage: `cargo run --release -p seda-bench --bin stream_bench --
//! [out.json] [--model <name>] [--layers <n>] [--min-gbps <g>]`

use seda::models::zoo;
use seda_adversary::ProtectConfig;
use seda_bench::round6;
use seda_stream::{measure, model_lens, seal, StreamSpec};
use serde::Serialize;

/// Machine-readable record of one stream-bench run.
#[derive(Serialize)]
struct BenchRecord {
    /// Model whose sealed geometry was streamed.
    model: String,
    /// Protection configuration of the sealed image.
    config: String,
    /// Layer regions in the stream.
    layers: usize,
    /// Ciphertext payload bytes provisioned.
    payload_bytes: u64,
    /// Authenticated 64-byte blocks verified.
    blocks: u64,
    /// Pipelined-unseal wall-clock, milliseconds.
    pipelined_ms: f64,
    /// Serial crypto-then-replay baseline wall-clock, milliseconds.
    serial_ms: f64,
    /// Sustained pipelined payload throughput, GB/s.
    gbps_sustained: f64,
    /// Serial over pipelined wall time; above 1.0 the overlap paid off.
    overlap_efficiency: f64,
    /// DRAM memory-clock cycles the layer write-out replay consumed.
    replay_cycles: u64,
    /// Whether the two unseals produced bit-identical images.
    deterministic: bool,
}

fn main() {
    let mut out_path = "BENCH_stream.json".to_owned();
    let mut min_gbps: Option<f64> = None;
    let mut model_name = "trf".to_owned();
    let mut repeat_layers = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-gbps" => {
                let v = args.next().expect("--min-gbps needs a value");
                min_gbps = Some(v.parse().expect("--min-gbps must be a number"));
            }
            "--model" => {
                model_name = args.next().expect("--model needs a name");
            }
            "--layers" => {
                let v = args.next().expect("--layers needs a value");
                repeat_layers = v.parse().expect("--layers must be an integer");
            }
            other => out_path = other.to_owned(),
        }
    }

    let model = zoo::by_name(&model_name)
        .unwrap_or_else(|| panic!("unknown model {model_name:?} (try `seda_cli workloads`)"));
    // Tile the model's sealed geometry `repeat_layers` times so the
    // stream is long enough to amortize pipeline fill/drain.
    let base = model_lens(&model);
    let lens: Vec<usize> = std::iter::repeat_with(|| base.clone())
        .take(repeat_layers.max(1))
        .flatten()
        .collect();
    let spec = StreamSpec {
        stream_id: 0x5EDA_BE7C,
        key_epoch: 1,
        config: ProtectConfig::matrix()[2],
        lens,
        enc_key: [0x11; 16],
        mac_key: [0x22; 16],
        transport_key: [0x33; 16],
    };
    let plains: Vec<Vec<u8>> = spec
        .lens
        .iter()
        .enumerate()
        .map(|(layer, &len)| {
            (0..len)
                .map(|i| (i as u8).wrapping_mul(29) ^ (layer as u8))
                .collect()
        })
        .collect();
    let stream = seal(&spec, &plains).expect("sealing a valid spec succeeds");
    let dram = seda::dram::DramConfig::ddr4_with_bandwidth(1, 16.0e9);

    // Warm-up run doubles as the determinism pin: the image is a pure
    // function of the stream, so both unseals must agree bit for bit
    // (wall-clock, of course, will not).
    let warm = measure(&spec, stream.bytes(), &dram).expect("clean stream unseals");
    let timed = measure(&spec, stream.bytes(), &dram).expect("clean stream unseals");
    let deterministic = warm.image.model_root() == timed.image.model_root()
        && warm.image.offchip_bytes() == timed.image.offchip_bytes();
    assert!(
        deterministic,
        "two unseals of the same stream must install bit-identical images"
    );

    let record = BenchRecord {
        model: model.name().to_owned(),
        config: spec.config.name.to_owned(),
        layers: spec.lens.len(),
        payload_bytes: timed.payload_bytes,
        blocks: timed.blocks,
        pipelined_ms: round6(timed.pipelined_s * 1e3),
        serial_ms: round6(timed.serial_s * 1e3),
        gbps_sustained: round6(timed.gbps_sustained),
        overlap_efficiency: round6(timed.overlap_efficiency),
        replay_cycles: timed.replay_cycles,
        deterministic,
    };
    println!(
        "stream pipeline: {} x{} layers, {} payload bytes in {} blocks under {}",
        record.model, record.layers, record.payload_bytes, record.blocks, record.config
    );
    println!(
        "pipelined {:.3} ms vs serial {:.3} ms — {:.3} GB/s sustained, {:.2}x overlap efficiency",
        record.pipelined_ms, record.serial_ms, record.gbps_sustained, record.overlap_efficiency
    );
    println!(
        "{} DRAM replay cycles; images bit-identical across unseals",
        record.replay_cycles
    );
    let json = serde_json::to_string_pretty(&record).expect("record serializes");
    std::fs::write(&out_path, json).expect("writable bench record path");
    println!("recorded to {out_path}");
    if let Some(floor) = min_gbps {
        if record.gbps_sustained < floor {
            eprintln!(
                "REGRESSION: stream pipeline sustained {:.4} GB/s, under the {floor:.4} GB/s floor",
                record.gbps_sustained
            );
            std::process::exit(1);
        }
        println!("above the {floor:.4} GB/s floor");
    }
}
