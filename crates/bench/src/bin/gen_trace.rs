//! Generates a DRAM burst trace file for a workload — the SCALE-Sim-style
//! trace-export interface, consumable by `replay_trace`.
//!
//! Usage: `cargo run --release -p seda-bench --bin gen_trace -- <workload> [server|edge] [out.trace]`

use seda::models::zoo;
use seda::scalesim::{simulate_model, write_trace, NpuConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args.get(1).map(String::as_str).unwrap_or("rest");
    let npu = match args.get(2).map(String::as_str) {
        Some("server") => NpuConfig::server(),
        _ => NpuConfig::edge(),
    };
    let Some(model) = zoo::by_name(workload) else {
        eprintln!("unknown workload {workload:?}");
        std::process::exit(1);
    };
    let sim = simulate_model(&npu, &model);
    let bursts: Vec<_> = sim.layers.iter().flat_map(|l| l.bursts.clone()).collect();
    let text = write_trace(&bursts);
    match args.get(3) {
        Some(path) => {
            std::fs::write(path, &text).expect("writable output path");
            eprintln!("{} bursts -> {path}", bursts.len());
        }
        None => print!("{text}"),
    }
}
