//! Extension experiment: DRAM energy per protection scheme.
//!
//! The paper evaluates traffic and time; metadata also costs DRAM energy —
//! extra bursts and, for scattered metadata, extra row activates. Thin
//! wrapper over the registered `ablation_energy` scenario, which reports
//! per-scheme DRAM energy on both NPUs (DDR4 energies for the server,
//! LPDDR4 for the edge).
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_energy`

use seda::scenario;

fn main() {
    let run = scenario::load("ablation_energy")
        .and_then(|s| s.run())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    print!("{}", run.render());
    println!("Energy overhead tracks traffic overhead plus an activate term for");
    println!("schemes whose metadata breaks row locality; SeDA's energy cost is");
    println!("as negligible as its traffic cost.");
}
