//! Extension experiment: DRAM energy per protection scheme.
//!
//! The paper evaluates traffic and time; metadata also costs DRAM energy —
//! extra bursts and, for scattered metadata, extra row activates. This
//! binary reports per-scheme DRAM energy on both NPUs (DDR4 energies for
//! the server, LPDDR4 for the edge).
//!
//! Runs as one parallel sweep on the unified engine; each scheme starts
//! cold on each workload, so per-workload energy is accounted
//! independently (the old hand-rolled loop leaked warm metadata caches
//! from one workload into the next).
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_energy`

use seda::dram::{estimate_energy, EnergyParams};
use seda::experiment::scheme_names;
use seda::models::zoo;
use seda::scalesim::NpuConfig;
use seda::sweep::Sweep;

fn main() {
    let npus = [NpuConfig::server(), NpuConfig::edge()];
    let models = [zoo::resnet18(), zoo::alexnet()];
    let results = Sweep::new()
        .npus(npus.iter().cloned())
        .models(models.iter().cloned())
        .schemes(scheme_names())
        .run();

    println!("Extension: DRAM energy per protection scheme (ResNet-18 + AlexNet)");
    for (ni, (npu, params, mem)) in [
        (&npus[0], EnergyParams::ddr4(), "DDR4"),
        (&npus[1], EnergyParams::lpddr4(), "LPDDR4"),
    ]
    .into_iter()
    .enumerate()
    {
        println!("\n-- {} NPU ({mem}) --", npu.name);
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10} {:>11} {:>9}",
            "scheme", "act mJ", "read mJ", "write mJ", "bkgd mJ", "total mJ", "vs base"
        );
        let mut base_total = None;
        for (si, name) in scheme_names().into_iter().enumerate() {
            let mut energy_acc = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for mi in 0..models.len() {
                let r = results.at(ni, mi, si);
                let secs: f64 = r
                    .layers
                    .iter()
                    .map(|l| l.memory_cycles as f64 / npu.clock_hz)
                    .sum();
                let e = estimate_energy(&params, &r.dram, secs);
                energy_acc.0 += e.activate_mj;
                energy_acc.1 += e.read_mj;
                energy_acc.2 += e.write_mj;
                energy_acc.3 += e.background_mj;
            }
            let total = energy_acc.0 + energy_acc.1 + energy_acc.2 + energy_acc.3;
            let base = *base_total.get_or_insert(total);
            println!(
                "{:<10} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>11.3} {:>8.2}%",
                name,
                energy_acc.0,
                energy_acc.1,
                energy_acc.2,
                energy_acc.3,
                total,
                (total / base - 1.0) * 100.0
            );
        }
    }
    println!();
    println!("Energy overhead tracks traffic overhead plus an activate term for");
    println!("schemes whose metadata breaks row locality; SeDA's energy cost is");
    println!("as negligible as its traffic cost.");
}
