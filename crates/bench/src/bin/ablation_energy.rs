//! Extension experiment: DRAM energy per protection scheme.
//!
//! The paper evaluates traffic and time; metadata also costs DRAM energy —
//! extra bursts and, for scattered metadata, extra row activates. This
//! binary reports per-scheme DRAM energy on both NPUs (DDR4 energies for
//! the server, LPDDR4 for the edge).
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_energy`

use seda::dram::{estimate_energy, EnergyParams};
use seda::models::zoo;
use seda::pipeline::run_model;
use seda::protect::paper_lineup;
use seda::scalesim::NpuConfig;

fn main() {
    println!("Extension: DRAM energy per protection scheme (ResNet-18 + AlexNet)");
    for (npu, params, mem) in [
        (NpuConfig::server(), EnergyParams::ddr4(), "DDR4"),
        (NpuConfig::edge(), EnergyParams::lpddr4(), "LPDDR4"),
    ] {
        println!("\n-- {} NPU ({mem}) --", npu.name);
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10} {:>11} {:>9}",
            "scheme", "act mJ", "read mJ", "write mJ", "bkgd mJ", "total mJ", "vs base"
        );
        let mut base_total = None;
        for mut scheme in paper_lineup() {
            let mut energy_acc = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for model in [zoo::resnet18(), zoo::alexnet()] {
                let r = run_model(&npu, &model, scheme.as_mut());
                let secs: f64 = r
                    .layers
                    .iter()
                    .map(|l| l.memory_cycles as f64 / npu.clock_hz)
                    .sum();
                let e = estimate_energy(&params, &r.dram, secs);
                energy_acc.0 += e.activate_mj;
                energy_acc.1 += e.read_mj;
                energy_acc.2 += e.write_mj;
                energy_acc.3 += e.background_mj;
            }
            let total = energy_acc.0 + energy_acc.1 + energy_acc.2 + energy_acc.3;
            let base = *base_total.get_or_insert(total);
            println!(
                "{:<10} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>11.3} {:>8.2}%",
                scheme.name(),
                energy_acc.0,
                energy_acc.1,
                energy_acc.2,
                energy_acc.3,
                total,
                (total / base - 1.0) * 100.0
            );
        }
    }
    println!();
    println!("Energy overhead tracks traffic overhead plus an activate term for");
    println!("schemes whose metadata breaks row locality; SeDA's energy cost is");
    println!("as negligible as its traffic cost.");
}
