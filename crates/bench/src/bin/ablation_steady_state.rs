//! Extension experiment: cold-start vs steady-state protection overheads.
//!
//! The paper's figures measure a single inference from cold metadata
//! caches. Serving systems run back-to-back inferences: caches warm up on
//! weight metadata but also accumulate dirty lines whose writebacks the
//! cold run deferred. This binary runs eight consecutive inferences per
//! scheme and reports per-inference slowdowns.
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_steady_state`

use seda::models::zoo;
use seda::pipeline::run_model_repeated;
use seda::protect::scheme_by_name;
use seda::scalesim::NpuConfig;

fn main() {
    let npu = NpuConfig::edge();
    let model = zoo::resnet18();
    const N: u32 = 8;
    println!("Extension: steady-state behaviour over {N} inferences (rest, edge)\n");
    let mut base = scheme_by_name("baseline").expect("known");
    let base_totals = run_model_repeated(&npu, &model, base.as_mut(), N);
    let mut header = format!("{:<10}", "scheme");
    for i in 0..N {
        header.push_str(&format!("   inf{i}"));
    }
    println!("{header}");
    for name in ["SGX-64B", "MGX-64B", "MGX-512B", "SeDA"] {
        let mut scheme = scheme_by_name(name).expect("known");
        let totals = run_model_repeated(&npu, &model, scheme.as_mut(), N);
        let mut row = format!("{name:<10}");
        for (t, b) in totals.iter().zip(base_totals.iter()) {
            row.push_str(&format!(" {:>6.3}", *t as f64 / *b as f64));
        }
        println!("{row}");
    }
    println!();
    println!("Cold inference 0 understates SGX/MGX cost slightly (deferred dirty");
    println!("evictions); the overhead stabilizes within a couple of inferences.");
    println!("SeDA is flat: it has no off-chip metadata state to warm or drain.");
}
