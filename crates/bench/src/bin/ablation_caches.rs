//! Ablation: SGX metadata-cache size sensitivity.
//!
//! Sweeps the VN and MAC cache capacities around the paper's 16 KB/8 KB
//! operating point and reports SGX-64B traffic overhead on ResNet-18,
//! showing the paper's configuration sits on the flat part of the curve
//! (DNN streaming defeats metadata caching; capacity barely helps).
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_caches`

use seda::models::zoo;
use seda::pipeline::run_model;
use seda::protect::{BlockMacKind, BlockMacScheme, Unprotected, PROTECTED_BYTES};
use seda::scalesim::NpuConfig;

fn main() {
    let npu = NpuConfig::edge();
    let model = zoo::resnet18();
    let base = run_model(&npu, &model, &mut Unprotected::new());
    println!("Ablation: SGX-64B metadata cache sensitivity (rest, edge NPU)");
    println!(
        "{:>10} {:>10} {:>16} {:>12}",
        "VN cache", "MAC cache", "traffic overhead", "slowdown"
    );
    for (vn_kb, mac_kb) in [
        (4u64, 2u64),
        (8, 4),
        (16, 8), // paper operating point
        (32, 16),
        (64, 32),
        (256, 128),
    ] {
        let mut scheme = BlockMacScheme::with_caches(
            BlockMacKind::Sgx,
            64,
            PROTECTED_BYTES,
            mac_kb << 10,
            vn_kb << 10,
        );
        let run = run_model(&npu, &model, &mut scheme);
        println!(
            "{:>7} KB {:>7} KB {:>15.2}% {:>11.4}x",
            vn_kb,
            mac_kb,
            (run.traffic.total() as f64 / base.traffic.total() as f64 - 1.0) * 100.0,
            run.total_cycles as f64 / base.total_cycles as f64,
        );
    }
    println!();
    println!("Streaming tensors have little metadata reuse, so growing the VN/MAC");
    println!("caches yields diminishing returns — the motivation for eliminating");
    println!("the metadata rather than caching it (SeDA).");
}
