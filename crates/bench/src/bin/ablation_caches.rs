//! Ablation: SGX metadata-cache size sensitivity.
//!
//! Thin wrapper over the registered `ablation_caches` scenario: VN and
//! MAC cache capacities swept around the paper's 16 KB/8 KB operating
//! point on ResNet-18, showing the configuration sits on the flat part of
//! the curve (DNN streaming defeats metadata caching; capacity barely
//! helps). The grid lives in `scenarios/ablation_caches.json`.
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_caches`

use seda::scenario;

fn main() {
    let run = scenario::load("ablation_caches")
        .and_then(|s| s.run())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    print!("{}", run.render());
    println!("Streaming tensors have little metadata reuse, so growing the VN/MAC");
    println!("caches yields diminishing returns — the motivation for eliminating");
    println!("the metadata rather than caching it (SeDA).");
}
