//! Ablation: the SecureLoop-style optBlk granularity search (§III-C).
//!
//! Prints, for ResNet-18 and MobileNet on the edge NPU, the per-layer
//! winning authentication-block size and the cost curve across candidates,
//! showing why one fixed granularity (64 B or 512 B) cannot win everywhere.
//!
//! Usage: `cargo run --release -p seda-bench --bin ablation_optblk`

use seda::models::zoo;
use seda::optblk::{search_model, CANDIDATES};
use seda::scalesim::NpuConfig;
use std::collections::BTreeMap;

fn main() {
    let cfg = NpuConfig::edge();
    for model in [zoo::resnet18(), zoo::mobilenet()] {
        println!("== optBlk search: {} on edge NPU ==", model.name());
        let mut header = format!("{:<12} {:>8}", "layer", "optBlk");
        for g in CANDIDATES {
            header.push_str(&format!("{:>12}", format!("cost@{g}")));
        }
        println!("{header}");
        let choices = search_model(&cfg, &model);
        let mut histogram: BTreeMap<u64, usize> = BTreeMap::new();
        for c in &choices {
            *histogram.entry(c.granularity).or_insert(0) += 1;
            let mut row = format!("{:<12} {:>7}B", c.layer, c.granularity);
            for cand in &c.candidates {
                row.push_str(&format!("{:>12}", cand.total()));
            }
            println!("{row}");
        }
        println!("-- distribution of winning granularities --");
        for (g, n) in &histogram {
            println!("  {g:>5} B: {n} layers");
        }
        println!();
    }
    println!("No single granularity wins every layer: streaming layers prefer");
    println!("coarse blocks (tag bookkeeping), tiled layers with halos and short");
    println!("runs prefer fine blocks — the motivation for per-layer optBlk.");
}
