//! Demonstrates Algorithm 1: the Single-Element Collision Attack against
//! shared-OTP encryption, and the B-AES defense.
//!
//! Usage: `cargo run --release -p seda-bench --bin alg1_seca`

use seda::attacks::seca::{mount_seca, sparse_block};
use seda::crypto::ctr::CounterSeed;
use seda::crypto::otp::{BandwidthAwareOtp, SharedOtp, TraditionalOtp};

fn main() {
    let key = [0x2b; 16];
    let seed = CounterSeed::new(0xA000_0000, 17);
    println!("Algorithm 1: SECA attack on a 512 B block of sparse DNN weights");
    println!("(60% of 16 B segments are zero — the attacker's guess)\n");
    println!(
        "{:<28} {:>12} {:>10}",
        "pad strategy", "recovered", "broken?"
    );
    for sparsity in [0.3, 0.6, 0.9] {
        let pt = sparse_block(32, sparsity, 7);
        let shared = mount_seca(&SharedOtp::new(key), seed, &pt, [0u8; 16]);
        let baes = mount_seca(&BandwidthAwareOtp::new(key), seed, &pt, [0u8; 16]);
        let taes = mount_seca(&TraditionalOtp::new(key), seed, &pt, [0u8; 16]);
        println!("-- sparsity {:.0}% --", sparsity * 100.0);
        for (name, out) in [
            ("shared OTP (strawman)", &shared),
            ("B-AES (SeDA, Alg. 1 defense)", &baes),
            ("T-AES (engine bank)", &taes),
        ] {
            println!(
                "{:<28} {:>11.1}% {:>10}",
                name,
                out.accuracy * 100.0,
                if out.success { "BROKEN" } else { "safe" }
            );
        }
    }
    println!("\nShared-OTP blocks are fully recovered; B-AES per-segment pads");
    println!("(base OTP XOR key-schedule round keys) reduce the attack to the");
    println!("attacker's own guess, matching T-AES security at ~1/N the engines.");
}
