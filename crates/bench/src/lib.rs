//! SeDA benchmark harness (see bins and benches).

/// Rounds a benchmark float to six decimal places.
///
/// The bench binaries archive their records as JSON artifacts; raw
/// `f64` arithmetic leaks representation noise into the serialization
/// (`459.59137400000003` instead of `459.591374`), so consecutive runs
/// with identical measurements still diff. Six decimals keeps
/// sub-microsecond resolution on millisecond-scale figures while making
/// the artifacts diff cleanly.
pub fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

#[cfg(test)]
mod tests {
    use super::round6;

    #[test]
    fn round6_strips_representation_noise() {
        assert_eq!(round6(459.591_374_000_000_03), 459.591_374);
        assert_eq!(round6(2.0), 2.0);
        assert_eq!(round6(-1.234_567_89), -1.234_568);
        assert_eq!(round6(0.0), 0.0);
    }

    #[test]
    fn round6_keeps_six_decimals() {
        let x = round6(1.000_000_4);
        assert_eq!(x, 1.0);
        assert_eq!(round6(1.000_000_6), 1.000_001);
    }
}
