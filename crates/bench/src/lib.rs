//! SeDA benchmark harness (see bins and benches).
