//! End-to-end exit-code contract of `seda_cli` on the failure paths:
//! violated expectation blocks must exit 5 while still writing a valid
//! telemetry snapshot, budget-skipped points under `on_failure: "skip"`
//! must exit 4 while leaving a valid checkpoint journal, violated
//! serving ceilings must exit 5 while still writing the serving
//! snapshot, and `seda_cli stream` must exit 3 on a malformed stream
//! spec and 4 on a tampered block with the `seda-stream/v1` snapshot
//! written before the nonzero exit. Each scenario-backed test spawns
//! the real binary against a private scenario registry under a temp
//! directory (`SEDA_SCENARIOS`).

use std::path::{Path, PathBuf};
use std::process::Command;

/// A private scenario registry for one test, cleaned up on drop.
struct TempRegistry {
    dir: PathBuf,
}

impl TempRegistry {
    fn new(tag: &str, files: &[(&str, &str)]) -> Self {
        let dir = std::env::temp_dir().join(format!("seda-cli-exit-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp registry dir");
        for (name, json) in files {
            std::fs::write(dir.join(format!("{name}.json")), json).expect("scenario file");
        }
        Self { dir }
    }

    fn path(&self, file: &str) -> PathBuf {
        self.dir.join(file)
    }

    fn cli(&self) -> Command {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_seda_cli"));
        cmd.env("SEDA_SCENARIOS", &self.dir);
        cmd
    }
}

impl Drop for TempRegistry {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("expected artifact at {}: {e}", path.display()))
}

/// A scheme that provably adds traffic cannot stay under a 1.0001x
/// normalized-traffic ceiling: the run must exit 5 (expectations
/// violated) and still write the telemetry snapshot — CI archives it as
/// part of the failure artifact.
#[test]
fn violated_expect_block_exits_5_with_a_telemetry_snapshot() {
    let reg = TempRegistry::new(
        "expect",
        &[(
            "expect_fail",
            r#"{
              "name": "expect_fail",
              "title": "SGX traffic cannot be baseline-flat",
              "npus": ["edge"],
              "workloads": ["let"],
              "schemes": ["baseline", "SGX-64B"],
              "outputs": ["traffic"],
              "expect": {"scheme": "SGX-64B", "traffic_norm_max": 1.0001}
            }"#,
        )],
    );
    let telemetry = reg.path("telemetry.json");
    let out = reg
        .cli()
        .args([
            "--telemetry",
            telemetry.to_str().expect("utf-8 temp path"),
            "scenario",
            "run",
            "expect_fail",
        ])
        .output()
        .expect("seda_cli spawns");
    assert_eq!(
        out.status.code(),
        Some(5),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("expectation(s) not met"),
        "stderr must name the violation:\n{stderr}"
    );
    let snapshot = read(&telemetry);
    assert!(
        snapshot.contains("\"seda-telemetry/v1\""),
        "telemetry snapshot must be schema-tagged even on failure:\n{snapshot}"
    );
}

/// A 1 ms point budget kills the single point; under `on_failure:
/// "skip"` the run degrades instead of aborting, exits 4 (point
/// failures), and the streamed checkpoint journal stays valid.
#[test]
fn budget_skipped_point_exits_4_with_a_valid_journal() {
    let reg = TempRegistry::new(
        "skip",
        &[(
            "budget_skip",
            r#"{
              "name": "budget_skip",
              "title": "one point, one impossible budget",
              "npus": ["server"],
              "workloads": [{"transformer_decode": {"context": 2048}}],
              "schemes": ["SGX-64B"],
              "outputs": ["traffic"],
              "on_failure": "skip",
              "point_budget_ms": 1
            }"#,
        )],
    );
    let journal = reg.path("journal.jsonl");
    let out = reg
        .cli()
        .args([
            "scenario",
            "run",
            "budget_skip",
            "--journal",
            journal.to_str().expect("utf-8 temp path"),
        ])
        .output()
        .expect("seda_cli spawns");
    assert_eq!(
        out.status.code(),
        Some(4),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let header = read(&journal);
    assert!(
        header.contains("\"seda-checkpoint/v1\""),
        "journal must carry the checkpoint schema:\n{header}"
    );
}

/// A serving ceiling no scheduler can meet must exit 5, and the
/// `seda-serve/v1` snapshot must still be written for the post-mortem.
#[test]
fn violated_serving_ceiling_exits_5_with_a_serving_snapshot() {
    let reg = TempRegistry::new(
        "serve",
        &[(
            "serve_impossible",
            r#"{
              "name": "serve_impossible",
              "title": "a picosecond SLA",
              "npus": ["edge"],
              "workloads": ["let"],
              "schemes": ["SeDA"],
              "outputs": ["traffic"],
              "serving": {
                "seed": 7,
                "scheduler": "fcfs",
                "arrival": {"open_loop": {"rate_rps": 2000.0, "requests": 40}},
                "tenants": [
                  {"name": "only", "workload": "let", "scheme": "SeDA"}
                ],
                "expect": [
                  {"tenant": "only", "p50_ms_max": 0.0000001}
                ]
              }
            }"#,
        )],
    );
    let snapshot_path = reg.path("serve.json");
    let out = reg
        .cli()
        .args([
            "serve",
            "serve_impossible",
            "--json",
            snapshot_path.to_str().expect("utf-8 temp path"),
        ])
        .output()
        .expect("seda_cli spawns");
    assert_eq!(
        out.status.code(),
        Some(5),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("serving expectation(s) not met"),
        "stderr must name the serving violation:\n{stderr}"
    );
    let snapshot = read(&snapshot_path);
    assert!(
        snapshot.contains("\"seda-serve/v1\""),
        "serving snapshot must be written before the nonzero exit:\n{snapshot}"
    );
}

/// A malformed stream spec — layer lengths that are not positive
/// multiples of the 64-byte protection block — must exit 3 with the
/// validation error on stderr, before any sealing happens.
#[test]
fn malformed_stream_spec_exits_3() {
    let out = Command::new(env!("CARGO_BIN_EXE_seda_cli"))
        .args(["stream", "let", "--lens", "128,100"])
        .output()
        .expect("seda_cli spawns");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("not a positive multiple"),
        "stderr must carry the spec validation error:\n{stderr}"
    );

    // An unknown model is a spec error too, not an internal one.
    let out = Command::new(env!("CARGO_BIN_EXE_seda_cli"))
        .args(["stream", "no-such-model"])
        .output()
        .expect("seda_cli spawns");
    assert_eq!(out.status.code(), Some(3));
}

/// A tampered stream block must exit 4 with the typed rejection on
/// stderr — and the `seda-stream/v1` snapshot must already be on disk
/// when the process exits, recording the failure for CI to archive.
#[test]
fn tampered_stream_block_exits_4_with_a_snapshot() {
    let dir = std::env::temp_dir().join(format!("seda-cli-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp snapshot dir");
    let snapshot_path = dir.join("stream.json");
    let out = Command::new(env!("CARGO_BIN_EXE_seda_cli"))
        .args([
            "stream",
            "let",
            "--flip",
            "200",
            "--json",
            snapshot_path.to_str().expect("utf-8 temp path"),
        ])
        .output()
        .expect("seda_cli spawns");
    assert_eq!(
        out.status.code(),
        Some(4),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("stream rejected"),
        "stderr must carry the typed rejection:\n{stderr}"
    );
    let snapshot = read(&snapshot_path);
    assert!(
        snapshot.contains("\"seda-stream/v1\""),
        "stream snapshot must be schema-tagged:\n{snapshot}"
    );
    assert!(
        snapshot.contains("\"ok\": false"),
        "stream snapshot must record the rejection:\n{snapshot}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An untampered stream provisions cleanly: exit 0 and a success
/// snapshot with a positive sustained throughput.
#[test]
fn clean_stream_exits_0_with_a_throughput_snapshot() {
    let dir = std::env::temp_dir().join(format!("seda-cli-stream-ok-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp snapshot dir");
    let snapshot_path = dir.join("stream.json");
    let out = Command::new(env!("CARGO_BIN_EXE_seda_cli"))
        .args([
            "stream",
            "let",
            "--json",
            snapshot_path.to_str().expect("utf-8 temp path"),
        ])
        .output()
        .expect("seda_cli spawns");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let snapshot = read(&snapshot_path);
    assert!(snapshot.contains("\"ok\": true"), "{snapshot}");
    assert!(snapshot.contains("\"gbps_sustained\""), "{snapshot}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scenario without a serving block must be rejected with the spec
/// exit code, not a panic.
#[test]
fn serve_without_a_serving_block_exits_3() {
    let reg = TempRegistry::new(
        "noserve",
        &[(
            "plain",
            r#"{
              "name": "plain",
              "title": "no serving block",
              "npus": ["edge"],
              "workloads": ["let"],
              "schemes": ["baseline"],
              "outputs": ["traffic"]
            }"#,
        )],
    );
    let out = reg
        .cli()
        .args(["serve", "plain"])
        .output()
        .expect("seda_cli spawns");
    assert_eq!(out.status.code(), Some(3));
}
