//! Criterion benchmarks that time the paper's figure regeneration on a
//! reduced workload set — one bench per table/figure family, so `cargo
//! bench` exercises every experiment path end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use seda::experiment::evaluate;
use seda::hw::fig4_sweep;
use seda::models::zoo;
use seda::optblk::search_model;
use seda::protect::paper_lineup;
use seda::report::{figure5, figure6, table1, table2, table3};
use seda::scalesim::NpuConfig;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("table1", |b| b.iter(table1));
    g.bench_function("table2", |b| {
        b.iter(|| table2(&[NpuConfig::server(), NpuConfig::edge()]))
    });
    g.bench_function("table3", |b| {
        b.iter(|| {
            let infos: Vec<_> = paper_lineup().iter().map(|s| s.info()).collect();
            table3(&infos)
        })
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_sweep_16x", |b| b.iter(|| fig4_sweep(black_box(16))));
}

fn bench_fig5_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    // A two-workload slice keeps the bench minutes-scale while running the
    // identical code path the full fig5/fig6 binaries use.
    let models = vec![zoo::lenet(), zoo::ncf()];
    g.bench_function("fig5_fig6_slice_edge", |b| {
        b.iter(|| {
            let eval = evaluate(black_box(&NpuConfig::edge()), black_box(&models));
            (figure5(&eval), figure6(&eval))
        })
    });
    g.finish();
}

fn bench_optblk(c: &mut Criterion) {
    let mut g = c.benchmark_group("optblk_search");
    let cfg = NpuConfig::edge();
    let m = zoo::resnet18();
    g.bench_function("resnet18_edge", |b| {
        b.iter(|| search_model(black_box(&cfg), black_box(&m)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_fig4,
    bench_fig5_fig6,
    bench_optblk
);
criterion_main!(benches);
