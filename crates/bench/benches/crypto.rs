//! Criterion benchmarks for the cryptographic substrate: AES-128 block
//! throughput, the three OTP strategies on a 512 B protected block, and
//! the hash/MAC primitives. The B-AES vs T-AES gap here is the software
//! analogue of Fig. 4's hardware gap: one AES evaluation plus XORs versus
//! one evaluation per 16 B segment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use seda::crypto::aes::Aes128;
use seda::crypto::ctr::CounterSeed;
use seda::crypto::mac::{BlockPosition, PositionBoundMac};
use seda::crypto::otp::{BandwidthAwareOtp, OtpStrategy, SharedOtp, TraditionalOtp};
use seda::crypto::sha256::{hmac_sha256, Sha256};
use std::hint::black_box;

fn bench_aes_block(c: &mut Criterion) {
    let aes = Aes128::new([7u8; 16]);
    let mut g = c.benchmark_group("aes128");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(black_box([0x5au8; 16])))
    });
    g.bench_function("decrypt_block", |b| {
        b.iter(|| aes.decrypt_block(black_box([0x5au8; 16])))
    });
    g.finish();
}

fn bench_otp_strategies(c: &mut Criterion) {
    let seed = CounterSeed::new(0x8000, 3);
    let mut g = c.benchmark_group("otp_512B_block");
    g.throughput(Throughput::Bytes(512));
    let taes = TraditionalOtp::new([1u8; 16]);
    let baes = BandwidthAwareOtp::new([1u8; 16]);
    let shared = SharedOtp::new([1u8; 16]);
    let mut buf = [0u8; 512];
    g.bench_function("taes", |b| b.iter(|| taes.apply(seed, black_box(&mut buf))));
    g.bench_function("baes", |b| b.iter(|| baes.apply(seed, black_box(&mut buf))));
    g.bench_function("shared_insecure", |b| {
        b.iter(|| shared.apply(seed, black_box(&mut buf)))
    });
    g.finish();
}

fn bench_hash(c: &mut Criterion) {
    let data = vec![0xabu8; 4096];
    let mut g = c.benchmark_group("hash");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("sha256_4k", |b| b.iter(|| Sha256::digest(black_box(&data))));
    g.bench_function("hmac_4k", |b| {
        b.iter(|| hmac_sha256(black_box(b"key"), black_box(&data)))
    });
    g.finish();
}

fn bench_block_mac(c: &mut Criterion) {
    let mac = PositionBoundMac::new([9u8; 16]);
    let blk = [0x11u8; 64];
    let mut g = c.benchmark_group("mac");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("position_bound_64B", |b| {
        b.iter(|| mac.tag(black_box(&blk), 0x40, 1, BlockPosition::new(3, 0, 7)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_aes_block,
    bench_otp_strategies,
    bench_hash,
    bench_block_mac
);
criterion_main!(benches);
