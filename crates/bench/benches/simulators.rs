//! Criterion benchmarks for the simulation substrates: DRAM timing,
//! accelerator trace generation, and protection-scheme trace rewriting.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use seda::dram::{DramConfig, DramSim, Request};
use seda::models::zoo;
use seda::pipeline::run_model;
use seda::protect::{BlockMacKind, BlockMacScheme, ProtectionScheme, SedaScheme};
use seda::protect::{LayerMacStore, Unprotected, PROTECTED_BYTES};
use seda::scalesim::{simulate_model, Burst, NpuConfig, TensorKind};
use std::hint::black_box;

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("sequential_stream_10k", |b| {
        b.iter(|| {
            let mut sim = DramSim::new(DramConfig::server());
            for i in 0..N {
                sim.access(black_box(Request::read(i * 64)));
            }
            sim.elapsed_cycles()
        })
    });
    g.bench_function("row_thrash_10k", |b| {
        b.iter(|| {
            let mut sim = DramSim::new(DramConfig::server());
            let row_span = 8192 * 4 * 16;
            for i in 0..N {
                sim.access(black_box(Request::read((i * 7919) % 512 * row_span)));
            }
            sim.elapsed_cycles()
        })
    });
    g.finish();
}

fn bench_scalesim(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalesim");
    let edge = NpuConfig::edge();
    let resnet = zoo::resnet18();
    g.bench_function("simulate_resnet18_edge", |b| {
        b.iter(|| simulate_model(black_box(&edge), black_box(&resnet)))
    });
    g.finish();
}

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("protection_transform");
    // A representative mixed trace: strip reads, weight streams, writes.
    let bursts: Vec<Burst> = (0..64u64)
        .flat_map(|i| {
            [
                Burst::read(i * 8192, 3584, TensorKind::Ifmap, (i / 8) as u32),
                Burst::read(
                    (1 << 30) + i * 4608,
                    4608,
                    TensorKind::Filter,
                    (i / 8) as u32,
                ),
                Burst::write(
                    (1 << 31) + i * 3136,
                    3136,
                    TensorKind::Ofmap,
                    (i / 8) as u32,
                ),
            ]
        })
        .collect();
    let total: u64 = bursts.iter().map(|b| b.bytes).sum();
    g.throughput(Throughput::Bytes(total));
    let run = |scheme: &mut dyn ProtectionScheme| {
        let mut n = 0u64;
        for b in &bursts {
            scheme.transform(b, &mut |_| n += 1);
        }
        scheme.finish(&mut |_| n += 1);
        n
    };
    g.bench_function("baseline", |b| b.iter(|| run(&mut Unprotected::new())));
    g.bench_function("sgx64", |b| {
        b.iter(|| {
            run(&mut BlockMacScheme::new(
                BlockMacKind::Sgx,
                64,
                PROTECTED_BYTES,
            ))
        })
    });
    g.bench_function("mgx512", |b| {
        b.iter(|| {
            run(&mut BlockMacScheme::new(
                BlockMacKind::Mgx,
                512,
                PROTECTED_BYTES,
            ))
        })
    });
    g.bench_function("seda", |b| {
        b.iter(|| {
            run(&mut SedaScheme::new(
                LayerMacStore::OffChip,
                PROTECTED_BYTES,
            ))
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    let edge = NpuConfig::edge();
    let lenet = zoo::lenet();
    g.bench_function("lenet_edge_seda", |b| {
        b.iter(|| {
            run_model(
                black_box(&edge),
                black_box(&lenet),
                &mut SedaScheme::new(LayerMacStore::OffChip, PROTECTED_BYTES),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dram,
    bench_scalesim,
    bench_schemes,
    bench_pipeline
);
criterion_main!(benches);
