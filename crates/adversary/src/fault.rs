//! Tamper classes and seeded fault injection.
//!
//! A [`TamperClass`] is one family of off-chip manipulations an active
//! adversary can perform against the [`ProtectedImage`]. Injection is
//! driven entirely by a seeded [`Rng`], so every fault — which layer,
//! which byte, which bit — replays exactly from a seed.

use crate::config::MacLevel;
use crate::image::{ProtectedImage, BLOCK, SEGMENT};
use crate::rng::Rng;
use seda::error::SedaError;

/// The eight tamper classes of the detection matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperClass {
    /// Flip one ciphertext bit.
    BitFlip,
    /// Flip one bit of a stored (off-chip) MAC.
    MacCorrupt,
    /// Swap two optBlks within one layer (the RePA move, Algorithm 2).
    SpliceWithin,
    /// Swap two optBlks across layers (block relocation).
    SpliceAcross,
    /// Restore a stale off-chip snapshot after a trusted VN-bumping
    /// update (two-time-pad / rollback).
    Replay,
    /// Zero the tail of a region (truncation of the backing store).
    Truncate,
    /// Perturb the version number the reader uses (counter tampering).
    VnTamper,
    /// Passive single-element collision probe against the pad generator
    /// (SECA, Algorithm 1) — a disclosure, not an integrity fault.
    SecaDisclosure,
}

impl TamperClass {
    /// All classes in matrix row order.
    pub fn all() -> [TamperClass; 8] {
        [
            TamperClass::BitFlip,
            TamperClass::MacCorrupt,
            TamperClass::SpliceWithin,
            TamperClass::SpliceAcross,
            TamperClass::Replay,
            TamperClass::Truncate,
            TamperClass::VnTamper,
            TamperClass::SecaDisclosure,
        ]
    }

    /// Short row label.
    pub fn name(self) -> &'static str {
        match self {
            TamperClass::BitFlip => "bit-flip",
            TamperClass::MacCorrupt => "mac-corrupt",
            TamperClass::SpliceWithin => "splice-within",
            TamperClass::SpliceAcross => "splice-across",
            TamperClass::Replay => "replay",
            TamperClass::Truncate => "truncate",
            TamperClass::VnTamper => "vn-tamper",
            TamperClass::SecaDisclosure => "seca-disclosure",
        }
    }
}

/// One adversary experiment: the image under attack plus the trusted
/// side's record of what each region should decrypt to. The record is the
/// oracle that distinguishes *detected* faults (a read errors) from
/// *silently accepted corruption* (a read succeeds but yields bytes the
/// trusted side never wrote).
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The image under attack.
    pub image: ProtectedImage,
    /// What the trusted side expects each region to hold.
    pub expected: Vec<Vec<u8>>,
}

impl Experiment {
    /// Builds an image under `config`-equivalent geometry with seeded
    /// random contents and verifies the honest baseline reads back
    /// bit-identically.
    ///
    /// # Errors
    ///
    /// Returns [`SedaError::InvalidSpec`] if the pristine image fails its
    /// own verification — a harness bug, never an adversary win.
    pub fn fresh(image: ProtectedImage, rng: &mut Rng) -> Result<Self, SedaError> {
        let mut image = image;
        let mut expected = Vec::with_capacity(image.layer_count());
        for layer in 0..image.layer_count() {
            let mut data = vec![0u8; image.layer_len(layer)];
            rng.fill(&mut data);
            image.write_layer(layer, &data)?;
            expected.push(data);
        }
        let baseline = image.read_model()?;
        if baseline != expected {
            return Err(SedaError::InvalidSpec {
                reason: "pristine image failed to read back its own writes".to_owned(),
            });
        }
        Ok(Self { image, expected })
    }

    /// Applies one seeded fault of `class` to the off-chip state.
    ///
    /// Returns a human-readable description of the exact fault, or `None`
    /// when the class is not applicable to the configuration (corrupting
    /// a stored MAC when nothing is stored off-chip) or is not an
    /// integrity fault at all ([`TamperClass::SecaDisclosure`], which the
    /// matrix runner measures on the ciphertext instead).
    ///
    /// # Errors
    ///
    /// Returns [`SedaError`] only for harness-level failures (a trusted
    /// update inside the replay sequence failing), never for the fault
    /// itself.
    pub fn inject(
        &mut self,
        class: TamperClass,
        rng: &mut Rng,
    ) -> Result<Option<String>, SedaError> {
        let layers = self.image.layer_count() as u64;
        match class {
            TamperClass::BitFlip => {
                let offset = rng.below(self.image.total_len() as u64) as usize;
                let bit = (rng.below(8)) as u8;
                self.image.flip_ciphertext_bit(offset, bit);
                Ok(Some(format!("flip ciphertext bit {bit} of byte {offset}")))
            }
            TamperClass::MacCorrupt => {
                let layer = rng.below(layers) as usize;
                let blk = rng.below(self.image.blocks_in(layer) as u64) as usize;
                let bit = (rng.below(64)) as u8;
                if self.image.corrupt_stored_mac(layer, blk, bit) {
                    Ok(Some(format!(
                        "flip bit {bit} of the stored MAC for layer {layer} block {blk}"
                    )))
                } else {
                    Ok(None)
                }
            }
            TamperClass::SpliceWithin => {
                // Pick a layer with at least two blocks and swap two.
                let candidates: Vec<usize> = (0..self.image.layer_count())
                    .filter(|&l| self.image.blocks_in(l) >= 2)
                    .collect();
                if candidates.is_empty() {
                    return Ok(None);
                }
                let layer = candidates[rng.below(candidates.len() as u64) as usize];
                let blocks = self.image.blocks_in(layer) as u64;
                let a = rng.below(blocks) as usize;
                let mut b = rng.below(blocks) as usize;
                if a == b {
                    b = (b + 1) % blocks as usize;
                }
                self.image.swap_blocks(layer, a, layer, b);
                Ok(Some(format!(
                    "swap blocks {a} and {b} within layer {layer}"
                )))
            }
            TamperClass::SpliceAcross => {
                if layers < 2 {
                    return Ok(None);
                }
                let la = rng.below(layers) as usize;
                let mut lb = rng.below(layers) as usize;
                if la == lb {
                    lb = (lb + 1) % layers as usize;
                }
                let a = rng.below(self.image.blocks_in(la) as u64) as usize;
                let b = rng.below(self.image.blocks_in(lb) as u64) as usize;
                self.image.swap_blocks(la, a, lb, b);
                Ok(Some(format!(
                    "swap layer {la} block {a} with layer {lb} block {b}"
                )))
            }
            TamperClass::Replay => {
                let layer = rng.below(layers) as usize;
                let snap = self.image.snapshot_offchip();
                let mut newer = vec![0u8; self.image.layer_len(layer)];
                rng.fill(&mut newer);
                self.image.update_layer(layer, &newer)?;
                self.expected[layer] = newer;
                self.image.restore_offchip(&snap);
                Ok(Some(format!(
                    "roll layer {layer} (ciphertext + stored MACs) back past a VN-bumping update"
                )))
            }
            TamperClass::Truncate => {
                let layer = rng.below(layers) as usize;
                let from = rng.below(self.image.layer_len(layer) as u64 - 1) as usize;
                self.image.zero_tail(layer, from);
                Ok(Some(format!(
                    "zero layer {layer} from byte {from} to its end"
                )))
            }
            TamperClass::VnTamper => {
                let layer = rng.below(layers) as usize;
                let delta = 1 + rng.below(4);
                self.image.tamper_vn(layer, delta);
                Ok(Some(format!("advance layer {layer}'s VN by {delta}")))
            }
            TamperClass::SecaDisclosure => Ok(None),
        }
    }
}

/// Runs the SECA observable against an image: writes a region whose first
/// block repeats one plaintext segment at two positions, then reports
/// whether the two ciphertext segments collide (the single-element
/// disclosure shared pads leak).
///
/// # Errors
///
/// Returns [`SedaError`] if the trusted write itself fails (harness bug).
pub fn seca_probe(image: &mut ProtectedImage, rng: &mut Rng) -> Result<bool, SedaError> {
    let segs = (BLOCK / SEGMENT) as u64;
    let s1 = rng.below(segs) as usize;
    let mut s2 = rng.below(segs) as usize;
    if s1 == s2 {
        s2 = (s2 + 1) % segs as usize;
    }
    let mut data = vec![0u8; image.layer_len(0)];
    rng.fill(&mut data);
    let repeated: Vec<u8> = data[s1 * SEGMENT..(s1 + 1) * SEGMENT].to_vec();
    data[s2 * SEGMENT..(s2 + 1) * SEGMENT].copy_from_slice(&repeated);
    image.write_layer(0, &data)?;
    let a = image.segment_ciphertext(0, 0, s1);
    let b = image.segment_ciphertext(0, 0, s2);
    Ok(a == b)
}

/// Whether `class` can be injected at all under `level` (mirrors the
/// `None` cases of [`Experiment::inject`], for matrix bookkeeping).
pub fn applicable(class: TamperClass, level: MacLevel) -> bool {
    !(class == TamperClass::MacCorrupt && level == MacLevel::Model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtectConfig;

    fn experiment(name: &str, seed: u64) -> Experiment {
        let config = ProtectConfig::by_name(name).expect("known config");
        let image = ProtectedImage::new(config, &[256, 320, 192], [7; 16], [9; 16]).expect("valid");
        Experiment::fresh(image, &mut Rng::new(seed)).expect("pristine image verifies")
    }

    #[test]
    fn every_applicable_fault_mutates_offchip_state() {
        for class in TamperClass::all() {
            if class == TamperClass::SecaDisclosure {
                continue;
            }
            let mut exp = experiment("optblk-mac", 0xFA11);
            let desc = exp
                .inject(class, &mut Rng::new(0xBEEF))
                .expect("injection never errors here")
                .expect("applicable to optblk-mac");
            assert!(!desc.is_empty());
            assert!(
                exp.image.read_model().is_err(),
                "{}: position-bound per-block MACs catch every class",
                class.name()
            );
        }
    }

    #[test]
    fn mac_corrupt_is_not_applicable_at_model_level() {
        let mut exp = experiment("model-mac", 0x51);
        let outcome = exp
            .inject(TamperClass::MacCorrupt, &mut Rng::new(1))
            .expect("no harness error");
        assert!(outcome.is_none());
        assert!(!applicable(TamperClass::MacCorrupt, MacLevel::Model));
        assert!(applicable(TamperClass::MacCorrupt, MacLevel::Layer));
    }

    #[test]
    fn seca_probe_separates_shared_from_baes() {
        let shared = ProtectConfig::by_name("shared-otp").expect("known");
        let mut img = ProtectedImage::new(shared, &[256], [7; 16], [9; 16]).expect("valid");
        assert!(
            seca_probe(&mut img, &mut Rng::new(3)).expect("probe runs"),
            "shared pads leak equal-segment collisions"
        );
        let baes = ProtectConfig::by_name("layer-mac").expect("known");
        let mut img = ProtectedImage::new(baes, &[256], [7; 16], [9; 16]).expect("valid");
        assert!(
            !seca_probe(&mut img, &mut Rng::new(3)).expect("probe runs"),
            "B-AES pads must not collide across segments"
        );
    }

    #[test]
    fn replay_is_silently_accepted_by_ciphertext_only_macs() {
        let mut exp = experiment("ct-mac", 0x7e57);
        exp.inject(TamperClass::Replay, &mut Rng::new(2))
            .expect("no harness error")
            .expect("applicable");
        let plains = exp
            .image
            .read_model()
            .expect("replay must verify under ct-mac");
        assert_ne!(
            plains, exp.expected,
            "accepted data is stale/garbled — the silent-corruption signature"
        );
    }
}
