//! The detection matrix: tamper class × protection configuration.
//!
//! For every cell the runner builds a fresh seeded image, injects one
//! fault of the row's class, and replays the trusted read path. The
//! observed verdict — *detected* (a typed [`SedaError`] surfaced),
//! *undetected* (the read verified; for integrity faults the accepted
//! bytes differ from what the trusted side wrote), or *not applicable* —
//! is compared against [`expected_verdict`], the paper-claimed behaviour
//! of each configuration. The whole matrix is a pure function of its
//! seed.

use crate::config::{Binding, MacLevel, PadGen, ProtectConfig};
use crate::fault::{seca_probe, Experiment, TamperClass};
use crate::image::ProtectedImage;
use crate::rng::Rng;
use seda::error::SedaError;

/// Layer-region byte sizes every matrix experiment uses (4 + 5 + 3
/// optBlks — enough for within- and across-layer splicing).
pub const MATRIX_LAYERS: [usize; 3] = [256, 320, 192];

/// Outcome of one (configuration, class) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The trusted read surfaced a typed error.
    Detected,
    /// The read verified even though the adversary acted — by design for
    /// the weak configurations, a matrix failure anywhere else.
    Undetected,
    /// The fault cannot be expressed against this configuration.
    NotApplicable,
}

impl Verdict {
    /// One-character cell label (`D` / `U` / `-`).
    pub fn glyph(self) -> char {
        match self {
            Verdict::Detected => 'D',
            Verdict::Undetected => 'U',
            Verdict::NotApplicable => '-',
        }
    }
}

/// The paper-claimed verdict for one cell.
///
/// The rules compose from the constructions themselves:
///
/// * Any ciphertext change against an unchanged reference (bit flips,
///   truncation) is caught at every granularity.
/// * Corrupting a stored MAC is caught wherever one is stored; at model
///   level nothing is stored, so the fault is not applicable.
/// * Splices verify exactly when the MAC binds no position: per-block
///   ciphertext-only MACs travel with their blocks, and ciphertext-only
///   XOR folds are permutation-invariant within a fold (RePA) — though a
///   cross-layer splice moves tags *between* layer folds and is caught.
/// * Replay verifies when every reference the verifier consults is
///   off-chip and rolled back together: position binding (the bumped VN),
///   an on-chip root, or an on-chip model MAC each pin freshness.
/// * VN tampering is caught exactly when the VN is MAC-bound.
/// * The SECA probe leaks exactly under the shared pad generator.
pub fn expected_verdict(config: &ProtectConfig, class: TamperClass) -> Verdict {
    let position_bound = config.binding == Binding::PositionBound;
    match class {
        TamperClass::BitFlip | TamperClass::Truncate => Verdict::Detected,
        TamperClass::MacCorrupt => match config.level {
            MacLevel::Model => Verdict::NotApplicable,
            _ => Verdict::Detected,
        },
        TamperClass::SpliceWithin => {
            if position_bound {
                Verdict::Detected
            } else {
                Verdict::Undetected
            }
        }
        TamperClass::SpliceAcross => {
            if position_bound || config.level == MacLevel::Layer {
                Verdict::Detected
            } else {
                Verdict::Undetected
            }
        }
        TamperClass::Replay => {
            if position_bound || config.level == MacLevel::Model || config.on_chip_root {
                Verdict::Detected
            } else {
                Verdict::Undetected
            }
        }
        TamperClass::VnTamper => {
            if position_bound {
                Verdict::Detected
            } else {
                Verdict::Undetected
            }
        }
        TamperClass::SecaDisclosure => match config.pad {
            PadGen::Shared => Verdict::Undetected,
            PadGen::BAes => Verdict::Detected,
        },
    }
}

/// One evaluated matrix cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Configuration label (matrix column).
    pub config: &'static str,
    /// Tamper class (matrix row).
    pub class: TamperClass,
    /// Paper-claimed verdict.
    pub expected: Verdict,
    /// What the experiment observed.
    pub observed: Verdict,
    /// The typed error behind a [`Verdict::Detected`] observation.
    pub error: Option<SedaError>,
    /// For undetected integrity faults: whether the accepted plaintext
    /// differed from what the trusted side wrote (it always should — an
    /// unchanged plaintext would mean the fault was a no-op).
    pub silent_corruption: bool,
    /// Human-readable description of the injected fault.
    pub description: String,
}

impl CellOutcome {
    /// Whether the observation matches the paper-claimed verdict.
    pub fn matches(&self) -> bool {
        self.expected == self.observed
    }
}

/// Evaluates one cell under a dedicated RNG.
///
/// # Errors
///
/// Returns [`SedaError`] only for harness-level failures (a pristine
/// image failing its own verification); every adversarial outcome —
/// including detection — is data, not an error.
pub fn run_cell(
    config: &ProtectConfig,
    class: TamperClass,
    rng: &mut Rng,
) -> Result<CellOutcome, SedaError> {
    let expected = expected_verdict(config, class);
    let enc_key = [0x2b; 16];
    let mac_key = [0x7e; 16];

    if class == TamperClass::SecaDisclosure {
        let mut image = ProtectedImage::new(*config, &MATRIX_LAYERS, enc_key, mac_key)?;
        let leaked = seca_probe(&mut image, rng)?;
        return Ok(CellOutcome {
            config: config.name,
            class,
            expected,
            observed: if leaked {
                Verdict::Undetected
            } else {
                Verdict::Detected
            },
            error: None,
            silent_corruption: leaked,
            description: "probe two equal plaintext segments for a ciphertext collision".to_owned(),
        });
    }

    let image = ProtectedImage::new(*config, &MATRIX_LAYERS, enc_key, mac_key)?;
    let mut exp = Experiment::fresh(image, rng)?;
    let Some(description) = exp.inject(class, rng)? else {
        return Ok(CellOutcome {
            config: config.name,
            class,
            expected,
            observed: Verdict::NotApplicable,
            error: None,
            silent_corruption: false,
            description: format!("{} not expressible here", class.name()),
        });
    };
    match exp.image.read_model() {
        Err(e) => Ok(CellOutcome {
            config: config.name,
            class,
            expected,
            observed: Verdict::Detected,
            error: Some(e),
            silent_corruption: false,
            description,
        }),
        Ok(plains) => Ok(CellOutcome {
            config: config.name,
            class,
            expected,
            observed: Verdict::Undetected,
            error: None,
            silent_corruption: plains != exp.expected,
            description,
        }),
    }
}

/// The full evaluated matrix.
#[derive(Debug, Clone)]
pub struct DetectionMatrix {
    /// All cells, row-major: classes × configurations.
    pub cells: Vec<CellOutcome>,
    /// The root seed the matrix derives from.
    pub seed: u64,
}

impl DetectionMatrix {
    /// Evaluates every (class, configuration) cell under `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SedaError`] only on harness-level failures; adversarial
    /// outcomes are cells.
    pub fn run(seed: u64) -> Result<Self, SedaError> {
        let configs = ProtectConfig::matrix();
        let classes = TamperClass::all();
        let mut cells = Vec::with_capacity(configs.len() * classes.len());
        for (ri, class) in classes.iter().enumerate() {
            for (ci, config) in configs.iter().enumerate() {
                let mut rng = Rng::derive(seed, (ri * configs.len() + ci) as u64);
                cells.push(run_cell(config, *class, &mut rng)?);
            }
        }
        Ok(Self { cells, seed })
    }

    /// Cells whose observation contradicts the paper-claimed verdict.
    pub fn mismatches(&self) -> Vec<&CellOutcome> {
        self.cells.iter().filter(|c| !c.matches()).collect()
    }

    /// Whether every cell matches its claim.
    pub fn all_match(&self) -> bool {
        self.cells.iter().all(CellOutcome::matches)
    }

    /// Renders the matrix as an aligned text table (`D` detected, `U`
    /// undetected by design, `-` not applicable; a `!` marks any cell
    /// contradicting its claim).
    pub fn render(&self) -> String {
        let configs = ProtectConfig::matrix();
        let classes = TamperClass::all();
        let row_w = classes
            .iter()
            .map(|c| c.name().len())
            .max()
            .unwrap_or(0)
            .max("tamper class".len());
        let mut out = format!("{:row_w$}", "tamper class");
        for c in &configs {
            out.push_str(&format!("  {:>10}", c.name));
        }
        out.push('\n');
        for (ri, class) in classes.iter().enumerate() {
            out.push_str(&format!("{:row_w$}", class.name()));
            for ci in 0..configs.len() {
                let cell = &self.cells[ri * configs.len() + ci];
                let mark = if cell.matches() { ' ' } else { '!' };
                out.push_str(&format!("  {:>9}{}", cell.observed.glyph(), mark));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_claims_exhaustively() {
        let matrix = DetectionMatrix::run(0x5EDA).expect("harness runs clean");
        assert_eq!(matrix.cells.len(), 48, "8 classes x 6 configurations");
        let mismatches = matrix.mismatches();
        assert!(
            mismatches.is_empty(),
            "cells contradicting their claim:\n{}\n{}",
            mismatches
                .iter()
                .map(|c| format!(
                    "  {}/{}: expected {:?}, observed {:?} ({})",
                    c.config,
                    c.class.name(),
                    c.expected,
                    c.observed,
                    c.description
                ))
                .collect::<Vec<_>>()
                .join("\n"),
            matrix.render()
        );
    }

    #[test]
    fn matrix_is_deterministic_per_seed() {
        let a = DetectionMatrix::run(42).expect("runs");
        let b = DetectionMatrix::run(42).expect("runs");
        for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
            assert_eq!(ca.observed, cb.observed);
            assert_eq!(ca.description, cb.description);
        }
    }

    #[test]
    fn undetected_cells_are_real_attacks_not_noops() {
        let matrix = DetectionMatrix::run(0xACE).expect("runs");
        for cell in &matrix.cells {
            if cell.observed == Verdict::Undetected {
                assert!(
                    cell.silent_corruption,
                    "{}/{}: an undetected fault must actually corrupt or leak",
                    cell.config,
                    cell.class.name()
                );
            }
        }
    }

    #[test]
    fn detected_cells_surface_typed_errors() {
        let matrix = DetectionMatrix::run(0xD0D0).expect("runs");
        for cell in &matrix.cells {
            if cell.observed == Verdict::Detected && cell.class != TamperClass::SecaDisclosure {
                assert!(
                    cell.error.is_some(),
                    "{}/{} detected without a typed error",
                    cell.config,
                    cell.class.name()
                );
            }
        }
    }

    #[test]
    fn full_seda_detects_every_integrity_fault() {
        let seda = ProtectConfig::by_name("layer-mac").expect("known");
        for class in TamperClass::all() {
            assert_eq!(
                expected_verdict(&seda, class),
                Verdict::Detected,
                "{}",
                class.name()
            );
        }
    }

    #[test]
    fn render_shows_every_row_and_column() {
        let matrix = DetectionMatrix::run(1).expect("runs");
        let table = matrix.render();
        for class in TamperClass::all() {
            assert!(table.contains(class.name()), "{table}");
        }
        for config in ProtectConfig::matrix() {
            assert!(table.contains(config.name), "{table}");
        }
        assert!(!table.contains('!'), "no mismatch markers:\n{table}");
    }
}
