//! The protection configurations the detection matrix spans.
//!
//! Each configuration is one point in the design space of §III: at what
//! granularity MACs are kept (per optBlk, per layer, or one model MAC),
//! whether each optBlk MAC binds its position (`PA || VN || layer_id ||
//! fmap_idx || blk_idx`, Algorithm 2) or covers the ciphertext alone, and
//! which pad generator encrypts blocks (B-AES vs the SECA-vulnerable
//! shared pad). The six named configurations cover the paper's scheme
//! lineup plus the ablations its attacks are demonstrated against.

/// Granularity at which MAC state is kept and verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacLevel {
    /// One stored MAC per optBlk, verified block-by-block (SGX/MGX style).
    Block,
    /// Per-block tags XOR-folded into one stored MAC per layer.
    Layer,
    /// Per-block tags XOR-folded into a single on-chip model MAC; nothing
    /// is stored off-chip.
    Model,
}

/// What each optBlk MAC covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// `HMAC_K(blk)` — the ciphertext alone. Splicing, replay, and VN
    /// tampering keep tag and data consistent, so they verify.
    CiphertextOnly,
    /// `HMAC_K(blk || PA || VN || layer_id || fmap_idx || blk_idx)` —
    /// SeDA's position-bound construction (Algorithm 2, lines 7-8).
    PositionBound,
}

/// Pad generator encrypting each optBlk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PadGen {
    /// One AES evaluation per block, pad reused across its 16 B segments —
    /// the SECA-vulnerable strawman.
    Shared,
    /// B-AES: base pad XORed with per-segment round keys (Algorithm 1).
    BAes,
}

/// One protection configuration of the detection matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectConfig {
    /// Short matrix label (`ct-mac`, `optblk-mac`, ...).
    pub name: &'static str,
    /// MAC granularity.
    pub level: MacLevel,
    /// optBlk MAC binding.
    pub binding: Binding,
    /// Pad generator.
    pub pad: PadGen,
    /// Whether the trusted side keeps an on-chip root over the stored
    /// layer MACs (SeDA's model MAC). Meaningful only for
    /// [`MacLevel::Layer`]; [`MacLevel::Model`] *is* the on-chip root.
    pub on_chip_root: bool,
}

impl ProtectConfig {
    /// The six configurations of the detection matrix, in column order:
    ///
    /// 1. `ct-mac` — per-block MACs over ciphertext only.
    /// 2. `optblk-mac` — per-block position-bound MACs (SeDA's optBlk).
    /// 3. `layer-mac` — layer-folded position-bound MACs stored off-chip
    ///    with an on-chip model root (the full SeDA configuration).
    /// 4. `model-mac` — one on-chip model MAC, nothing stored off-chip.
    /// 5. `layer-ct` — layer-folded ciphertext-only MACs, no root: the
    ///    construction the RePA attack (Algorithm 2) breaks.
    /// 6. `shared-otp` — the SeDA layer configuration but with the shared
    ///    pad generator SECA (Algorithm 1) breaks.
    pub fn matrix() -> [ProtectConfig; 6] {
        [
            ProtectConfig {
                name: "ct-mac",
                level: MacLevel::Block,
                binding: Binding::CiphertextOnly,
                pad: PadGen::BAes,
                on_chip_root: false,
            },
            ProtectConfig {
                name: "optblk-mac",
                level: MacLevel::Block,
                binding: Binding::PositionBound,
                pad: PadGen::BAes,
                on_chip_root: false,
            },
            ProtectConfig {
                name: "layer-mac",
                level: MacLevel::Layer,
                binding: Binding::PositionBound,
                pad: PadGen::BAes,
                on_chip_root: true,
            },
            ProtectConfig {
                name: "model-mac",
                level: MacLevel::Model,
                binding: Binding::PositionBound,
                pad: PadGen::BAes,
                on_chip_root: true,
            },
            ProtectConfig {
                name: "layer-ct",
                level: MacLevel::Layer,
                binding: Binding::CiphertextOnly,
                pad: PadGen::BAes,
                on_chip_root: false,
            },
            ProtectConfig {
                name: "shared-otp",
                level: MacLevel::Layer,
                binding: Binding::PositionBound,
                pad: PadGen::Shared,
                on_chip_root: true,
            },
        ]
    }

    /// Looks a matrix configuration up by its label.
    pub fn by_name(name: &str) -> Option<ProtectConfig> {
        Self::matrix().into_iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        let configs = ProtectConfig::matrix();
        for c in &configs {
            assert_eq!(ProtectConfig::by_name(c.name), Some(*c));
        }
        let mut names: Vec<_> = configs.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), configs.len());
        assert_eq!(ProtectConfig::by_name("nope"), None);
    }

    #[test]
    fn seda_configuration_is_position_bound_baes() {
        let seda = ProtectConfig::by_name("layer-mac").unwrap_or_else(|| unreachable!());
        assert_eq!(seda.binding, Binding::PositionBound);
        assert_eq!(seda.pad, PadGen::BAes);
        assert!(seda.on_chip_root, "SeDA keeps the model MAC on-chip");
    }
}
