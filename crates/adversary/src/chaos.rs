//! Seeded chaos engine for the sweep resilience layer.
//!
//! Where [`crate::fault`] attacks *data* — tampered ciphertext against the
//! verifier — this module attacks *execution*: it builds a deterministic
//! [`FaultPlan`] over the flat point indices of a [`seda::Sweep`] and turns
//! it into a [`seda::FaultHook`] that panics, raises typed errors, or
//! stalls at exactly the planned points. Every decision derives from the
//! root seed through the crate's SplitMix64 stream:
//!
//! * **which** points are faulted — a partial Fisher–Yates draw of
//!   `⌈points × fault_percent / 100⌉` indices;
//! * **how** each faulted point fails — panic, synthesized
//!   [`seda::SedaError::Integrity`] violation, or a stall the sweep's
//!   watchdog must convert into a timeout;
//! * **when** it recovers — each fault is transient, firing only on
//!   attempts `1..=fail_attempts`, so a `retry` policy with
//!   `max_attempts > fail_attempts` must produce results bit-identical to
//!   a clean run. That equality is the resilience validation family's
//!   headline proof.

use crate::rng::Rng;
use seda::{FaultHook, PointContext, SedaError};
use seda_scalesim::TensorKind;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// How a planned fault manifests when its point executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The hook panics; the sweep must contain it as
    /// [`seda::SedaError::PointPanicked`].
    Panic,
    /// The hook raises a synthesized integrity violation — the typed-error
    /// path, exercising retry accounting without touching the verifier.
    Error,
    /// The hook sleeps for this many milliseconds. Paired with a watchdog
    /// budget below the stall, the sweep must surface
    /// [`seda::SedaError::PointTimedOut`].
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

impl FaultKind {
    /// Short name used in labels and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Error => "error",
            FaultKind::Stall { .. } => "stall",
        }
    }
}

/// One planned transient fault at a specific sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// How the point fails.
    pub kind: FaultKind,
    /// The fault fires on attempts `1..=fail_attempts` and then clears,
    /// so attempt `fail_attempts + 1` succeeds.
    pub fail_attempts: u32,
}

/// A deterministic schedule of transient faults over a sweep's points.
///
/// Two plans built from the same `(seed, points, fault_percent,
/// fail_attempts, stall_ms)` are identical; the plan is pure data and can
/// be inspected before (or instead of) being turned into a hook.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    points: usize,
    faults: BTreeMap<usize, PlannedFault>,
}

impl FaultPlan {
    /// Builds a plan faulting `⌈points × fault_percent / 100⌉` of the
    /// sweep's points (at least one, when `points > 0` and
    /// `fault_percent > 0`). Faulted indices are a partial Fisher–Yates
    /// draw under `Rng::derive(seed, 0)`; each chosen point's kind is
    /// drawn from its own derived stream, so plans with different sizes
    /// still agree on shared prefixes of the derivation tree.
    ///
    /// `fail_attempts` is clamped to at least 1 — a fault that never
    /// fires is not a fault. `stall_ms` sets the sleep for
    /// [`FaultKind::Stall`] points.
    pub fn seeded(
        seed: u64,
        points: usize,
        fault_percent: u32,
        fail_attempts: u32,
        stall_ms: u64,
    ) -> Self {
        let fail_attempts = fail_attempts.max(1);
        let mut faults = BTreeMap::new();
        let want = if points == 0 || fault_percent == 0 {
            0
        } else {
            let exact = (points as u64 * u64::from(fault_percent)).div_ceil(100);
            (exact.max(1) as usize).min(points)
        };
        if want > 0 {
            // Partial Fisher–Yates: after `want` steps the prefix of
            // `indices` is a uniform sample without replacement.
            let mut draw = Rng::derive(seed, 0);
            let mut indices: Vec<usize> = (0..points).collect();
            for i in 0..want {
                let j = i + draw.below((points - i) as u64) as usize;
                indices.swap(i, j);
                let idx = indices[i];
                let mut kind_rng = Rng::derive(seed, 1 + idx as u64);
                let kind = match kind_rng.below(3) {
                    0 => FaultKind::Panic,
                    1 => FaultKind::Error,
                    _ => FaultKind::Stall { ms: stall_ms },
                };
                faults.insert(
                    idx,
                    PlannedFault {
                        kind,
                        fail_attempts,
                    },
                );
            }
        }
        Self {
            seed,
            points,
            faults,
        }
    }

    /// Root seed the plan derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of sweep points the plan covers.
    pub fn points(&self) -> usize {
        self.points
    }

    /// Number of faulted points.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no point is faulted.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Fraction of points that are faulted, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.faults.len() as f64 / self.points as f64
        }
    }

    /// The planned fault at `index`, if any.
    pub fn fault_at(&self, index: usize) -> Option<&PlannedFault> {
        self.faults.get(&index)
    }

    /// Faulted indices in ascending order.
    pub fn faulted_indices(&self) -> Vec<usize> {
        self.faults.keys().copied().collect()
    }

    /// Highest attempt number on which any planned fault still fires —
    /// a `retry` policy needs `max_attempts` strictly above this for the
    /// chaos run to recover everywhere.
    pub fn max_fail_attempts(&self) -> u32 {
        self.faults
            .values()
            .map(|f| f.fail_attempts)
            .max()
            .unwrap_or(0)
    }

    /// Turns the plan into a [`FaultHook`] for
    /// [`seda::Sweep::fault_hook`]. The hook is pure with respect to the
    /// plan: a faulted point fails on attempts `1..=fail_attempts` with
    /// its planned kind and succeeds afterwards; un-faulted points are
    /// untouched.
    pub fn hook(&self) -> FaultHook {
        let faults = self.faults.clone();
        let seed = self.seed;
        Arc::new(move |ctx: &PointContext| {
            let Some(fault) = faults.get(&ctx.index) else {
                return Ok(());
            };
            if ctx.attempt > fault.fail_attempts {
                return Ok(());
            }
            match fault.kind {
                FaultKind::Panic => panic!(
                    "chaos: planned panic at point {} ({}) attempt {}",
                    ctx.index,
                    ctx.label(),
                    ctx.attempt
                ),
                FaultKind::Error => Err(synthesize_violation(seed, ctx)),
                FaultKind::Stall { ms } => {
                    std::thread::sleep(Duration::from_millis(ms));
                    Ok(())
                }
            }
        })
    }
}

/// A synthesized integrity violation whose fields derive from
/// `(seed, point, attempt)` — distinguishable in reports, reproducible
/// across runs.
fn synthesize_violation(seed: u64, ctx: &PointContext) -> SedaError {
    let mut rng = Rng::derive(seed, (ctx.index as u64) << 8 | u64::from(ctx.attempt));
    let tensor = match rng.below(3) {
        0 => TensorKind::Ifmap,
        1 => TensorKind::Filter,
        _ => TensorKind::Ofmap,
    };
    SedaError::Integrity(seda::IntegrityViolation {
        layer: rng.below(64) as u32,
        tensor,
        block: Some(rng.below(256) as u32),
        pa: rng.next_u64() & 0xFFFF_FFC0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = FaultPlan::seeded(0xC4A05, 156, 20, 1, 50);
        let b = FaultPlan::seeded(0xC4A05, 156, 20, 1, 50);
        assert_eq!(a.faulted_indices(), b.faulted_indices());
        for idx in a.faulted_indices() {
            assert_eq!(a.fault_at(idx), b.fault_at(idx));
        }
        let c = FaultPlan::seeded(0xC4A06, 156, 20, 1, 50);
        assert_ne!(
            a.faulted_indices(),
            c.faulted_indices(),
            "different seeds must (here) pick different points"
        );
    }

    #[test]
    fn coverage_meets_the_requested_floor() {
        for points in [1usize, 5, 24, 156] {
            let plan = FaultPlan::seeded(7, points, 20, 1, 10);
            assert!(
                plan.coverage() >= 0.20,
                "{points} points: coverage {} below the 20% floor",
                plan.coverage()
            );
            assert!(plan.len() <= points);
            for idx in plan.faulted_indices() {
                assert!(idx < points, "index {idx} out of range");
            }
        }
        assert!(FaultPlan::seeded(7, 0, 20, 1, 10).is_empty());
        assert!(FaultPlan::seeded(7, 24, 0, 1, 10).is_empty());
    }

    #[test]
    fn all_kinds_appear_on_a_large_plan() {
        let plan = FaultPlan::seeded(0xD15EA5E, 156, 100, 2, 10);
        assert_eq!(plan.len(), 156);
        let mut saw = [false; 3];
        for idx in plan.faulted_indices() {
            match plan.fault_at(idx).expect("planned").kind {
                FaultKind::Panic => saw[0] = true,
                FaultKind::Error => saw[1] = true,
                FaultKind::Stall { ms } => {
                    assert_eq!(ms, 10);
                    saw[2] = true;
                }
            }
        }
        assert!(saw.iter().all(|&s| s), "kinds drawn: {saw:?}");
        assert_eq!(plan.max_fail_attempts(), 2);
    }

    #[test]
    fn hook_is_transient_and_spares_clean_points() {
        let plan = FaultPlan::seeded(11, 10, 30, 2, 1);
        let hook = plan.hook();
        let faulted = plan
            .faulted_indices()
            .into_iter()
            .find(|&i| {
                matches!(
                    plan.fault_at(i).map(|f| f.kind),
                    Some(FaultKind::Error | FaultKind::Stall { .. })
                )
            })
            .expect("a non-panic fault among 3 draws");
        let ctx = |index: usize, attempt: u32| PointContext {
            index,
            attempt,
            npu: "edge".to_owned(),
            model: "let".to_owned(),
            scheme: "SeDA".to_owned(),
        };
        let during = hook(&ctx(faulted, 1));
        match plan.fault_at(faulted).expect("planned").kind {
            FaultKind::Error => {
                let err = during.expect_err("error fault must fail attempt 1");
                assert!(err.integrity().is_some(), "synthesized violation: {err}");
                // The same (point, attempt) synthesizes the same violation.
                let again = hook(&ctx(faulted, 1)).expect_err("still attempt 1");
                assert_eq!(format!("{err}"), format!("{again}"));
            }
            FaultKind::Stall { .. } => {
                during.expect("stall returns Ok after sleeping");
            }
            FaultKind::Panic => unreachable!("filtered above"),
        }
        hook(&ctx(faulted, 3)).expect("attempt 3 is past fail_attempts=2");
        let clean = (0..10)
            .find(|i| plan.fault_at(*i).is_none())
            .expect("some clean point");
        hook(&ctx(clean, 1)).expect("clean points are untouched");
    }

    #[test]
    fn panic_faults_panic_with_the_point_label() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let plan = FaultPlan::seeded(0xBEEF, 200, 100, 1, 1);
        let idx = plan
            .faulted_indices()
            .into_iter()
            .find(|&i| matches!(plan.fault_at(i).map(|f| f.kind), Some(FaultKind::Panic)))
            .expect("a panic fault in a full-coverage plan");
        let hook = plan.hook();
        let ctx = PointContext {
            index: idx,
            attempt: 1,
            npu: "server".to_owned(),
            model: "dlrm".to_owned(),
            scheme: "Baseline".to_owned(),
        };
        let payload =
            catch_unwind(AssertUnwindSafe(|| hook(&ctx))).expect_err("planned panic must fire");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert!(msg.contains("server/dlrm/Baseline"), "{msg}");
    }
}
