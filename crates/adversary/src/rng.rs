//! Deterministic PRNG (SplitMix64) for fault generation.
//!
//! The adversary must be replayable: every tamper offset, bit index, and
//! class choice derives from a root seed, so a failing matrix cell can be
//! reproduced exactly. This is the same construction as the validation
//! harness's generator, duplicated here because `seda-validate` depends on
//! this crate (the dependency cannot point both ways).

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// A generator for sub-experiment `idx` of the run under `seed` — one
    /// SplitMix64 step over the combined value, so neighbouring cells are
    /// uncorrelated.
    pub fn derive(seed: u64, idx: u64) -> Self {
        let mut probe = Self::new(seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let derived = probe.next_u64();
        Self::new(derived)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Modulo bias is irrelevant at these bounds (all ≪ 2^32).
        self.next_u64() % bound
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let a = Rng::derive(1, 0).next_u64();
        let b = Rng::derive(1, 1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = Rng::new(9);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
