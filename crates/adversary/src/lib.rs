//! Seeded fault-injection adversary for the SeDA protection stack.
//!
//! This crate plays the active adversary of the paper's threat model: it
//! owns everything off-chip — ciphertext, stored MACs, version counters —
//! and perturbs it while the trusted on-chip verifier replays its read
//! path. Eight [`fault::TamperClass`]es (bit flips, stored-MAC
//! corruption, within/across-layer block splicing, stale replay,
//! truncation, VN tampering, and the passive SECA collision probe) run
//! against six [`config::ProtectConfig`]urations spanning the design
//! space of §III (ciphertext-only vs position-bound optBlk MACs, block vs
//! layer vs model granularity, shared-pad vs B-AES encryption).
//!
//! The product is the [`matrix::DetectionMatrix`]: every (class, config)
//! cell's observed verdict checked against the paper-claimed one.
//! The weak configurations *must* miss exactly the attacks the paper says
//! they miss (RePA against ciphertext-only folds, SECA against shared
//! pads, replay against unrooted off-chip state), and the full SeDA
//! configuration must catch all of them. Two properties hold everywhere:
//!
//! * **No fault panics the stack.** Every adversarial outcome surfaces as
//!   a typed [`seda::SedaError`] or as an accepted read; the fuzz
//!   tests pin this under `catch_unwind`.
//! * **Everything replays from a seed.** Faults derive from a SplitMix64
//!   stream, so any cell reproduces exactly from `(seed, row, column)`.
//!
//! The same seeded machinery also attacks *execution* rather than data:
//! [`chaos`] builds deterministic fault plans (panics, typed errors,
//! stalls) over sweep points for `seda-core`'s resilience layer, proving
//! that retry/skip/resume recovery is bit-identical to a clean run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod fault;
pub mod image;
pub mod matrix;
pub mod rng;

pub use chaos::{FaultKind, FaultPlan, PlannedFault};
pub use config::{Binding, MacLevel, PadGen, ProtectConfig};
pub use fault::{seca_probe, Experiment, TamperClass};
pub use image::{OffChipSnapshot, ProtectedImage, BLOCK, SEGMENT};
pub use matrix::{expected_verdict, run_cell, CellOutcome, DetectionMatrix, Verdict};
pub use rng::Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Satellite property: flipping one bit at *every* byte offset of a
    /// position-bound image must be detected — no blind spots anywhere in
    /// any optBlk of any layer.
    #[test]
    fn position_bound_macs_detect_bitflips_at_every_byte_offset() {
        let config = ProtectConfig::by_name("optblk-mac").expect("known config");
        let image = ProtectedImage::new(config, &[128, 64], [5; 16], [6; 16]).expect("valid");
        let mut rng = Rng::new(0x0FF5E7);
        let pristine = Experiment::fresh(image, &mut rng).expect("pristine verifies");
        for offset in 0..pristine.image.total_len() {
            let bit = (rng.below(8)) as u8;
            let mut tampered = pristine.clone();
            tampered.image.flip_ciphertext_bit(offset, bit);
            let err = tampered
                .image
                .read_model()
                .expect_err("a flipped ciphertext bit must never verify");
            assert!(
                err.integrity().is_some(),
                "offset {offset} bit {bit}: detection must be an integrity error, got {err}"
            );
        }
    }

    /// Tentpole acceptance: random (config, class, seed) triples never
    /// panic — every fault degrades into a verdict or a typed error.
    #[test]
    fn random_faults_never_panic() {
        let configs = ProtectConfig::matrix();
        let classes = TamperClass::all();
        let mut rng = Rng::new(0xF022);
        for trial in 0..200u64 {
            let config = configs[rng.below(configs.len() as u64) as usize];
            let class = classes[rng.below(classes.len() as u64) as usize];
            let cell_seed = rng.next_u64();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut cell_rng = Rng::new(cell_seed);
                matrix::run_cell(&config, class, &mut cell_rng)
            }));
            let cell = outcome.unwrap_or_else(|_| {
                panic!(
                    "trial {trial}: {}/{} panicked under seed {cell_seed:#x}",
                    config.name,
                    class.name()
                )
            });
            assert!(
                cell.is_ok(),
                "trial {trial}: harness-level failure for {}/{}",
                config.name,
                class.name()
            );
        }
    }

    #[test]
    fn verdict_glyphs_are_distinct() {
        let glyphs = [
            Verdict::Detected.glyph(),
            Verdict::Undetected.glyph(),
            Verdict::NotApplicable.glyph(),
        ];
        let mut unique = glyphs.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), glyphs.len());
    }
}
