//! The untrusted off-chip image under one protection configuration.
//!
//! [`ProtectedImage`] is the adversary's target: a functional model of the
//! off-chip memory holding encrypted tensor regions plus whatever MAC
//! metadata the configuration stores off-chip, together with the trusted
//! on-chip state (keys, VN table, model root) the verifier checks against.
//! The trusted side writes and reads through the encrypt/MAC path; the
//! adversary mutates the off-chip state directly through the tamper API
//! ([`flip_ciphertext_bit`](ProtectedImage::flip_ciphertext_bit),
//! [`swap_blocks`](ProtectedImage::swap_blocks),
//! [`snapshot_offchip`](ProtectedImage::snapshot_offchip), ...).
//!
//! The version-number table is exposed to tampering as well: for SGX-style
//! schemes VNs are off-chip counters, and even for on-chip tables the
//! matrix wants to model targeted fault injection against them. Whether a
//! perturbed VN is *caught* depends purely on the MAC binding.

use crate::config::{Binding, MacLevel, PadGen, ProtectConfig};
use seda::error::SedaError;
use seda::functional::IntegrityViolation;
use seda_crypto::ctr::CounterSeed;
use seda_crypto::mac::{xor_fold, BlockPosition, MacTag, PositionBoundMac};
use seda_crypto::otp::{BandwidthAwareOtp, OtpStrategy, SharedOtp};
use seda_scalesim::TensorKind;

/// Protection block size (one optBlk).
pub const BLOCK: usize = 64;

/// AES segment size within a block.
pub const SEGMENT: usize = 16;

/// Pad generator instance for one image.
#[derive(Debug, Clone)]
enum Pads {
    Shared(SharedOtp),
    BAes(BandwidthAwareOtp),
}

impl Pads {
    fn apply(&self, seed: CounterSeed, data: &mut [u8]) {
        match self {
            Pads::Shared(p) => p.apply(seed, data),
            Pads::BAes(p) => p.apply(seed, data),
        }
    }
}

/// A snapshot of everything the adversary controls: ciphertext and the
/// off-chip MAC store. Restoring it after a trusted update is the replay
/// attack (the on-chip VN table and root are *not* part of the snapshot).
#[derive(Debug, Clone)]
pub struct OffChipSnapshot {
    bytes: Vec<u8>,
    block_macs: Vec<Vec<MacTag>>,
    layer_macs: Vec<MacTag>,
}

/// Encrypted off-chip image plus the trusted verifier state for one
/// [`ProtectConfig`].
#[derive(Debug, Clone)]
pub struct ProtectedImage {
    config: ProtectConfig,
    // Untrusted off-chip state (the tamper surface).
    bytes: Vec<u8>,
    block_macs: Vec<Vec<MacTag>>,
    layer_macs: Vec<MacTag>,
    vns: Vec<u64>,
    // Trusted on-chip state.
    root: MacTag,
    layer_folds: Vec<MacTag>,
    mac: PositionBoundMac,
    pads: Pads,
    lens: Vec<usize>,
    pas: Vec<u64>,
}

impl ProtectedImage {
    /// Creates an image with one contiguous region per layer.
    ///
    /// # Errors
    ///
    /// Returns [`SedaError::InvalidSpec`] if `lens` is empty or any length
    /// is zero or not a multiple of [`BLOCK`].
    pub fn new(
        config: ProtectConfig,
        lens: &[usize],
        enc_key: [u8; 16],
        mac_key: [u8; 16],
    ) -> Result<Self, SedaError> {
        if lens.is_empty() {
            return Err(SedaError::InvalidSpec {
                reason: "image needs at least one layer region".to_owned(),
            });
        }
        if let Some(bad) = lens.iter().find(|&&l| l == 0 || l % BLOCK != 0) {
            return Err(SedaError::InvalidSpec {
                reason: format!("layer length {bad} is not a positive multiple of {BLOCK}"),
            });
        }
        let mut pas = Vec::with_capacity(lens.len());
        let mut next = 0u64;
        for &len in lens {
            pas.push(next);
            next += len as u64;
        }
        let pads = match config.pad {
            PadGen::Shared => Pads::Shared(SharedOtp::new(enc_key)),
            PadGen::BAes => Pads::BAes(BandwidthAwareOtp::new(enc_key)),
        };
        Ok(Self {
            config,
            bytes: vec![0; next as usize],
            block_macs: lens.iter().map(|&l| vec![MacTag(0); l / BLOCK]).collect(),
            layer_macs: vec![MacTag(0); lens.len()],
            vns: vec![1; lens.len()],
            root: MacTag(0),
            layer_folds: vec![MacTag(0); lens.len()],
            mac: PositionBoundMac::new(mac_key),
            pads,
            lens: lens.to_vec(),
            pas,
        })
    }

    /// The configuration this image runs under.
    pub fn config(&self) -> &ProtectConfig {
        &self.config
    }

    /// Number of layer regions.
    pub fn layer_count(&self) -> usize {
        self.lens.len()
    }

    /// Byte length of one layer region.
    pub fn layer_len(&self, layer: usize) -> usize {
        self.lens[layer]
    }

    /// Base physical address of one layer region.
    pub fn layer_pa(&self, layer: usize) -> u64 {
        self.pas[layer]
    }

    /// Number of optBlks in one layer region.
    pub fn blocks_in(&self, layer: usize) -> usize {
        self.lens[layer] / BLOCK
    }

    /// Total image size in bytes.
    pub fn total_len(&self) -> usize {
        self.bytes.len()
    }

    fn block_tag(&self, ct: &[u8], pa: u64, vn: u64, layer: u32, blk: u32) -> MacTag {
        match self.config.binding {
            Binding::PositionBound => self.mac.tag(ct, pa, vn, BlockPosition::new(layer, 0, blk)),
            // Ciphertext-only: no address, version, or position enters the
            // MAC — the weakness the splice/replay rows demonstrate.
            Binding::CiphertextOnly => self.mac.tag(ct, 0, 0, BlockPosition::default()),
        }
    }

    fn check_layer(&self, layer: usize, len: usize) -> Result<(), SedaError> {
        if layer >= self.lens.len() {
            return Err(SedaError::InvalidSpec {
                reason: format!("layer {layer} out of range ({} layers)", self.lens.len()),
            });
        }
        if len != self.lens[layer] {
            return Err(SedaError::InvalidSpec {
                reason: format!("layer {layer} holds {} bytes, got {len}", self.lens[layer]),
            });
        }
        Ok(())
    }

    /// Encrypts and MACs `data` into layer `layer` under its current VN.
    ///
    /// # Errors
    ///
    /// Returns [`SedaError::InvalidSpec`] if `layer` is out of range or
    /// `data` does not exactly fill the region.
    pub fn write_layer(&mut self, layer: usize, data: &[u8]) -> Result<(), SedaError> {
        self.check_layer(layer, data.len())?;
        let vn = self.vns[layer];
        let pa0 = self.pas[layer];
        let mut tags = Vec::with_capacity(data.len() / BLOCK);
        for (i, chunk) in data.chunks(BLOCK).enumerate() {
            let pa = pa0 + (i * BLOCK) as u64;
            let mut ct = chunk.to_vec();
            self.pads.apply(CounterSeed::new(pa, vn), &mut ct);
            let tag = self.block_tag(&ct, pa, vn, layer as u32, i as u32);
            self.bytes[pa as usize..pa as usize + ct.len()].copy_from_slice(&ct);
            tags.push(tag);
        }
        let fold = xor_fold(tags.iter().copied());
        match self.config.level {
            MacLevel::Block => self.block_macs[layer] = tags,
            MacLevel::Layer => self.layer_macs[layer] = fold,
            MacLevel::Model => {}
        }
        // Incremental on-chip root maintenance (XOR-MAC incrementality):
        // XOR out the region's previous fold, XOR in the new one.
        self.root = self.root.xor(self.layer_folds[layer]).xor(fold);
        self.layer_folds[layer] = fold;
        Ok(())
    }

    /// Installs one layer of *already-encrypted* ciphertext — the streamed
    /// constructor the `seda-stream` unsealer uses after verifying a
    /// provisioning stream's transport MACs. The ciphertext must have been
    /// produced under this image's encryption key and the layer's current
    /// VN (a fresh image starts every VN at 1); storage MACs, the layer
    /// fold, and the on-chip root are recomputed exactly as
    /// [`write_layer`](Self::write_layer) would, so a streamed image is
    /// bit-identical to an at-rest sealing of the same plaintext.
    ///
    /// # Errors
    ///
    /// Returns [`SedaError::InvalidSpec`] if `layer` is out of range or
    /// `ct` does not exactly fill the region.
    pub fn install_sealed_layer(&mut self, layer: usize, ct: &[u8]) -> Result<(), SedaError> {
        self.check_layer(layer, ct.len())?;
        let vn = self.vns[layer];
        let pa0 = self.pas[layer];
        let mut tags = Vec::with_capacity(ct.len() / BLOCK);
        for (i, chunk) in ct.chunks(BLOCK).enumerate() {
            let pa = pa0 + (i * BLOCK) as u64;
            let tag = self.block_tag(chunk, pa, vn, layer as u32, i as u32);
            self.bytes[pa as usize..pa as usize + chunk.len()].copy_from_slice(chunk);
            tags.push(tag);
        }
        let fold = xor_fold(tags.iter().copied());
        match self.config.level {
            MacLevel::Block => self.block_macs[layer] = tags,
            MacLevel::Layer => self.layer_macs[layer] = fold,
            MacLevel::Model => {}
        }
        self.root = self.root.xor(self.layer_folds[layer]).xor(fold);
        self.layer_folds[layer] = fold;
        Ok(())
    }

    /// The raw off-chip ciphertext — the byte-identity surface the stream
    /// differential oracle compares against an at-rest sealing.
    pub fn offchip_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The trusted on-chip model root.
    pub fn model_root(&self) -> MacTag {
        self.root
    }

    /// A trusted update: bumps the layer's VN, then rewrites the region —
    /// the write path an inference's activation producer takes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`write_layer`](Self::write_layer).
    pub fn update_layer(&mut self, layer: usize, data: &[u8]) -> Result<(), SedaError> {
        self.check_layer(layer, data.len())?;
        self.vns[layer] += 1;
        self.write_layer(layer, data)
    }

    fn violation(&self, layer: usize, block: Option<u32>, pa: u64) -> SedaError {
        SedaError::Integrity(IntegrityViolation {
            layer: layer as u32,
            tensor: TensorKind::Ifmap,
            block,
            pa,
        })
    }

    /// Decrypts one layer region, verifying whatever the configuration
    /// verifies at layer granularity. At [`MacLevel::Model`] no per-layer
    /// check exists — use [`read_model`](Self::read_model), which checks
    /// the aggregate.
    ///
    /// # Errors
    ///
    /// Returns [`SedaError::Integrity`] on any MAC mismatch and
    /// [`SedaError::InvalidSpec`] for an out-of-range layer.
    pub fn read_layer(&self, layer: usize) -> Result<Vec<u8>, SedaError> {
        let (out, tags) = self.decrypt_layer(layer)?;
        match self.config.level {
            MacLevel::Block => {
                for (i, tag) in tags.iter().enumerate() {
                    if !tag.ct_eq(self.block_macs[layer][i]) {
                        let pa = self.pas[layer] + (i * BLOCK) as u64;
                        return Err(self.violation(layer, Some(i as u32), pa));
                    }
                }
            }
            MacLevel::Layer => {
                if self.config.on_chip_root {
                    // SeDA's model MAC: the stored layer MACs must still
                    // fold to the on-chip root before any is trusted.
                    let stored = xor_fold(self.layer_macs.iter().copied());
                    if !stored.ct_eq(self.root) {
                        return Err(self.violation(layer, None, self.pas[layer]));
                    }
                }
                let fold = xor_fold(tags.iter().copied());
                if !fold.ct_eq(self.layer_macs[layer]) {
                    return Err(self.violation(layer, None, self.pas[layer]));
                }
            }
            MacLevel::Model => {}
        }
        Ok(out)
    }

    fn decrypt_layer(&self, layer: usize) -> Result<(Vec<u8>, Vec<MacTag>), SedaError> {
        if layer >= self.lens.len() {
            return Err(SedaError::InvalidSpec {
                reason: format!("layer {layer} out of range ({} layers)", self.lens.len()),
            });
        }
        let vn = self.vns[layer];
        let pa0 = self.pas[layer];
        let blocks = self.blocks_in(layer);
        let mut out = Vec::with_capacity(self.lens[layer]);
        let mut tags = Vec::with_capacity(blocks);
        for i in 0..blocks {
            let pa = pa0 + (i * BLOCK) as u64;
            let ct = &self.bytes[pa as usize..pa as usize + BLOCK];
            tags.push(self.block_tag(ct, pa, vn, layer as u32, i as u32));
            let mut buf = ct.to_vec();
            self.pads.apply(CounterSeed::new(pa, vn), &mut buf);
            out.extend_from_slice(&buf);
        }
        Ok((out, tags))
    }

    /// Decrypts and verifies every layer, at the configuration's own
    /// granularity (per-block, per-layer, or one model-wide fold).
    ///
    /// # Errors
    ///
    /// Returns [`SedaError::Integrity`] on any verification failure.
    pub fn read_model(&self) -> Result<Vec<Vec<u8>>, SedaError> {
        match self.config.level {
            MacLevel::Model => {
                let mut plains = Vec::with_capacity(self.lens.len());
                let mut fold = MacTag(0);
                for layer in 0..self.lens.len() {
                    let (plain, tags) = self.decrypt_layer(layer)?;
                    fold = fold.xor(xor_fold(tags.iter().copied()));
                    plains.push(plain);
                }
                if !fold.ct_eq(self.root) {
                    // A model-wide fold cannot localize; report layer 0.
                    return Err(self.violation(0, None, 0));
                }
                Ok(plains)
            }
            _ => (0..self.lens.len()).map(|l| self.read_layer(l)).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Tamper API: direct access to the untrusted off-chip state.
    // ------------------------------------------------------------------

    /// Flips bit `bit` of ciphertext byte `offset`.
    pub fn flip_ciphertext_bit(&mut self, offset: usize, bit: u8) {
        let at = offset % self.bytes.len();
        self.bytes[at] ^= 1 << (bit % 8);
    }

    /// Flips one bit of a stored MAC: the block MAC at `(layer, blk)` for
    /// block-level configurations, the layer MAC at `layer` for
    /// layer-level ones. Returns `false` when the configuration stores no
    /// MAC off-chip (model level) — the fault is then not applicable.
    pub fn corrupt_stored_mac(&mut self, layer: usize, blk: usize, bit: u8) -> bool {
        let mask = 1u64 << (bit % 64);
        match self.config.level {
            MacLevel::Block => {
                let tags = &mut self.block_macs[layer];
                let at = blk % tags.len();
                tags[at].0 ^= mask;
                true
            }
            MacLevel::Layer => {
                self.layer_macs[layer].0 ^= mask;
                true
            }
            MacLevel::Model => false,
        }
    }

    /// Swaps the ciphertext of two optBlks — the block-splicing move. For
    /// block-level configurations the stored MACs travel with their
    /// blocks, modeling an adversary who relocates `(ciphertext, MAC)`
    /// pairs consistently.
    pub fn swap_blocks(&mut self, layer_a: usize, blk_a: usize, layer_b: usize, blk_b: usize) {
        let pa = (self.pas[layer_a] as usize) + blk_a * BLOCK;
        let pb = (self.pas[layer_b] as usize) + blk_b * BLOCK;
        for i in 0..BLOCK {
            self.bytes.swap(pa + i, pb + i);
        }
        if self.config.level == MacLevel::Block {
            let tag_a = self.block_macs[layer_a][blk_a];
            let tag_b = self.block_macs[layer_b][blk_b];
            self.block_macs[layer_a][blk_a] = tag_b;
            self.block_macs[layer_b][blk_b] = tag_a;
        }
    }

    /// Perturbs the VN the reader will use for `layer` — off-chip counter
    /// corruption (or a targeted fault against the VN table).
    pub fn tamper_vn(&mut self, layer: usize, delta: u64) {
        self.vns[layer] = self.vns[layer].wrapping_add(delta);
    }

    /// Zeroes the ciphertext of `layer` from byte `from` to the end of the
    /// region — truncation of the backing store.
    pub fn zero_tail(&mut self, layer: usize, from: usize) {
        let from = from.min(self.lens[layer].saturating_sub(1));
        let start = self.pas[layer] as usize + from;
        let end = self.pas[layer] as usize + self.lens[layer];
        self.bytes[start..end].fill(0);
    }

    /// Captures the adversary-controlled state for a later replay.
    pub fn snapshot_offchip(&self) -> OffChipSnapshot {
        OffChipSnapshot {
            bytes: self.bytes.clone(),
            block_macs: self.block_macs.clone(),
            layer_macs: self.layer_macs.clone(),
        }
    }

    /// Restores a previously captured off-chip snapshot — the replay
    /// attack. On-chip state (VN table, root) keeps its current values.
    pub fn restore_offchip(&mut self, snap: &OffChipSnapshot) {
        self.bytes.clone_from(&snap.bytes);
        self.block_macs.clone_from(&snap.block_macs);
        self.layer_macs.clone_from(&snap.layer_macs);
    }

    /// The ciphertext of one 16 B segment — the observable SECA compares
    /// across segments to find single-element collisions.
    pub fn segment_ciphertext(&self, layer: usize, blk: usize, segment: usize) -> [u8; SEGMENT] {
        let at = self.pas[layer] as usize + blk * BLOCK + segment * SEGMENT;
        let mut out = [0u8; SEGMENT];
        out.copy_from_slice(&self.bytes[at..at + SEGMENT]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(name: &str) -> ProtectedImage {
        let config = ProtectConfig::by_name(name).expect("known config");
        ProtectedImage::new(config, &[256, 128], [3; 16], [4; 16]).expect("valid geometry")
    }

    fn data(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31) ^ salt)
            .collect()
    }

    #[test]
    fn roundtrip_all_configs() {
        for config in ProtectConfig::matrix() {
            let mut img =
                ProtectedImage::new(config, &[256, 128], [3; 16], [4; 16]).expect("valid");
            let a = data(256, 0x11);
            let b = data(128, 0x22);
            img.write_layer(0, &a).expect("write");
            img.write_layer(1, &b).expect("write");
            let plains = img.read_model().expect("honest image verifies");
            assert_eq!(plains, vec![a, b], "{}", config.name);
        }
    }

    #[test]
    fn ciphertext_is_not_plaintext() {
        let mut img = image("layer-mac");
        let a = data(256, 0x5a);
        img.write_layer(0, &a).expect("write");
        let ct: Vec<u8> = (0..256)
            .map(|i| img.segment_ciphertext(0, i / 64, (i / 16) % 4)[i % 16])
            .collect();
        assert_ne!(ct, a);
    }

    #[test]
    fn update_bumps_vn_and_still_verifies() {
        let mut img = image("optblk-mac");
        img.write_layer(0, &data(256, 1)).expect("write");
        img.write_layer(1, &data(128, 2)).expect("write");
        let newer = data(256, 9);
        img.update_layer(0, &newer).expect("update");
        let plains = img.read_model().expect("updated image verifies");
        assert_eq!(plains[0], newer);
    }

    #[test]
    fn bad_geometry_is_a_typed_error() {
        let config = ProtectConfig::by_name("layer-mac").expect("known");
        assert!(matches!(
            ProtectedImage::new(config, &[], [0; 16], [0; 16]),
            Err(SedaError::InvalidSpec { .. })
        ));
        assert!(matches!(
            ProtectedImage::new(config, &[100], [0; 16], [0; 16]),
            Err(SedaError::InvalidSpec { .. })
        ));
        let mut img = image("layer-mac");
        assert!(matches!(
            img.write_layer(5, &[0; 256]),
            Err(SedaError::InvalidSpec { .. })
        ));
        assert!(matches!(
            img.write_layer(0, &[0; 64]),
            Err(SedaError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn streamed_install_matches_at_rest_write() {
        for config in ProtectConfig::matrix() {
            let lens = [256usize, 128];
            let mut at_rest = ProtectedImage::new(config, &lens, [3; 16], [4; 16]).expect("valid");
            let mut streamed = ProtectedImage::new(config, &lens, [3; 16], [4; 16]).expect("valid");
            let pads = match config.pad {
                PadGen::Shared => Pads::Shared(SharedOtp::new([3; 16])),
                PadGen::BAes => Pads::BAes(BandwidthAwareOtp::new([3; 16])),
            };
            for (layer, plain) in [data(256, 0x31), data(128, 0x42)].iter().enumerate() {
                at_rest.write_layer(layer, plain).expect("write");
                // Encrypt externally under the same key and the fresh VN
                // (pad application is its own inverse), then install the
                // ciphertext through the streamed path.
                let mut ct = plain.clone();
                let pa0 = streamed.layer_pa(layer);
                for (i, chunk) in ct.chunks_mut(BLOCK).enumerate() {
                    pads.apply(CounterSeed::new(pa0 + (i * BLOCK) as u64, 1), chunk);
                }
                streamed
                    .install_sealed_layer(layer, &ct)
                    .expect("install streamed layer");
            }
            assert_eq!(
                at_rest.offchip_bytes(),
                streamed.offchip_bytes(),
                "{}",
                config.name
            );
            assert_eq!(
                at_rest.model_root().0,
                streamed.model_root().0,
                "{}",
                config.name
            );
            assert_eq!(
                at_rest.read_model().expect("at-rest verifies"),
                streamed.read_model().expect("streamed verifies"),
                "{}",
                config.name
            );
        }
    }

    #[test]
    fn flipped_bit_is_detected_with_block_context() {
        let mut img = image("optblk-mac");
        img.write_layer(0, &data(256, 3)).expect("write");
        img.write_layer(1, &data(128, 4)).expect("write");
        img.flip_ciphertext_bit(70, 2); // layer 0, block 1
        let err = img.read_model().expect_err("tamper detected");
        let v = err.integrity().expect("integrity violation");
        assert_eq!(v.layer, 0);
        assert_eq!(v.block, Some(1));
        assert_eq!(v.pa, 64);
    }
}
