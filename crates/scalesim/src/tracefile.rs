//! Text trace format for burst traces.
//!
//! SCALE-Sim emits DRAM traces as CSV files and Ramulator consumes plain
//! request traces; this module provides the equivalent interop surface so
//! the simulators can be used standalone. One burst per line:
//!
//! ```text
//! # comment
//! R 0x0000000000001000 3584 ifmap 0
//! W 0x0000000080000000 3136 ofmap 2
//! ```
//!
//! Fields: direction (`R`/`W`), hex byte address, decimal byte length,
//! tensor kind (`ifmap`/`filter`/`ofmap`), decimal layer index.

use crate::burst::{Burst, TensorKind};
use std::fmt::Write as _;

/// Error produced when parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn tensor_name(t: TensorKind) -> &'static str {
    match t {
        TensorKind::Ifmap => "ifmap",
        TensorKind::Filter => "filter",
        TensorKind::Ofmap => "ofmap",
    }
}

fn tensor_from(name: &str) -> Option<TensorKind> {
    match name {
        "ifmap" => Some(TensorKind::Ifmap),
        "filter" => Some(TensorKind::Filter),
        "ofmap" => Some(TensorKind::Ofmap),
        _ => None,
    }
}

/// Serializes bursts into the text trace format.
pub fn write_trace(bursts: &[Burst]) -> String {
    let mut out = String::with_capacity(bursts.len() * 40);
    out.push_str("# seda burst trace v1: dir addr bytes tensor layer\n");
    for b in bursts {
        let _ = writeln!(
            out,
            "{} {:#018x} {} {} {}",
            if b.is_write { 'W' } else { 'R' },
            b.addr,
            b.bytes,
            tensor_name(b.tensor),
            b.layer
        );
    }
    out
}

/// Parses the text trace format.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] naming the first malformed line; blank
/// lines and `#` comments are skipped.
pub fn parse_trace(text: &str) -> Result<Vec<Burst>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: &str| ParseTraceError {
            line: i + 1,
            message: message.to_owned(),
        };
        let mut fields = line.split_whitespace();
        let dir = fields.next().ok_or_else(|| err("missing direction"))?;
        let is_write = match dir {
            "R" => false,
            "W" => true,
            other => return Err(err(&format!("bad direction {other:?}"))),
        };
        let addr_s = fields.next().ok_or_else(|| err("missing address"))?;
        let addr = u64::from_str_radix(addr_s.trim_start_matches("0x"), 16)
            .map_err(|e| err(&format!("bad address: {e}")))?;
        let bytes: u64 = fields
            .next()
            .ok_or_else(|| err("missing length"))?
            .parse()
            .map_err(|e| err(&format!("bad length: {e}")))?;
        if bytes == 0 {
            return Err(err("zero-length burst"));
        }
        let tensor = fields
            .next()
            .and_then(tensor_from)
            .ok_or_else(|| err("bad tensor kind"))?;
        let layer: u32 = fields
            .next()
            .ok_or_else(|| err("missing layer"))?
            .parse()
            .map_err(|e| err(&format!("bad layer: {e}")))?;
        if fields.next().is_some() {
            return Err(err("trailing fields"));
        }
        out.push(Burst {
            addr,
            bytes,
            is_write,
            tensor,
            layer,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NpuConfig;
    use crate::sim::simulate_model;
    use seda_models::zoo;

    #[test]
    fn round_trip_preserves_bursts() {
        let sim = simulate_model(&NpuConfig::edge(), &zoo::lenet());
        let bursts: Vec<Burst> = sim.layers.iter().flat_map(|l| l.bursts.clone()).collect();
        let text = write_trace(&bursts);
        let parsed = parse_trace(&text).expect("own output parses");
        assert_eq!(parsed, bursts);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\nR 0x40 64 ifmap 0\n   \n# tail\n";
        let parsed = parse_trace(text).expect("valid");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].addr, 0x40);
    }

    #[test]
    fn malformed_lines_are_located() {
        let text = "R 0x40 64 ifmap 0\nX 0x40 64 ifmap 0\n";
        let err = parse_trace(text).expect_err("bad direction");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("direction"));
    }

    #[test]
    fn zero_length_rejected() {
        assert!(parse_trace("R 0x0 0 ifmap 0").is_err());
    }

    #[test]
    fn bad_tensor_rejected() {
        assert!(parse_trace("R 0x0 64 weights 0").is_err());
    }

    #[test]
    fn trailing_fields_rejected() {
        assert!(parse_trace("R 0x0 64 ifmap 0 extra").is_err());
    }

    #[test]
    fn error_displays_line_number() {
        let err = parse_trace("bogus").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
