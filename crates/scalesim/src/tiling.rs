//! Tiling engine: schedules a layer onto finite SRAM and derives its
//! off-chip traffic structure.
//!
//! The planner considers three classic schedules and picks the cheapest:
//!
//! * [`Schedule::IfmapResident`] — ifmap strips stay resident; filter
//!   chunks re-stream once per strip. The default for convolutions, whose
//!   weights are small.
//! * [`Schedule::FilterResident`] — filter chunks stay resident; the ifmap
//!   re-streams once per chunk.
//! * [`Schedule::OutputResident`] — only the output tile is pinned (partial
//!   sums in the ofmap buffer) while both inputs stream. This is what saves
//!   big-`K` GEMMs (e.g. Faster R-CNN's fc6) from quadratic re-reads.
//!
//! Strip geometry also fixes the layer's *burst structure*: contiguous run
//! lengths, halo re-reads between overlapping strips (Fig. 3(b)'s
//! intra-layer overlap), and channel-chunked output writes whose short
//! strided runs are exactly the inter-layer pattern mismatch that penalizes
//! coarse protection granularities.

use crate::burst::{Burst, TensorKind};
use crate::config::NpuConfig;
use seda_models::{Layer, LayerKind};
use serde::{Deserialize, Serialize};

/// Loop order chosen for a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Schedule {
    /// Outer loop over ifmap strips; ifmap read once, filter per strip.
    IfmapResident,
    /// Outer loop over filter chunks; filter read once, ifmap per chunk.
    FilterResident,
    /// Output tile pinned; both inputs stream per output tile.
    OutputResident,
}

/// Unified layer geometry the planner works in (convs and GEMMs alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerGeometry {
    /// Input rows (`ih` for convs, batch rows `m` for GEMMs).
    pub in_rows: u64,
    /// Bytes per input row (`iw·c` or `k`).
    pub in_row_bytes: u64,
    /// Filter extent along rows (`r`; 1 for GEMMs).
    pub r: u64,
    /// Row stride (1 for GEMMs).
    pub stride: u64,
    /// Output rows (`oh` or `m`).
    pub out_rows: u64,
    /// Output pixels per row (`ow` or 1).
    pub out_row_pixels: u64,
    /// Output channels (`m` filters, GEMM `n`, or depthwise `c`).
    pub out_channels: u64,
    /// Filter bytes per output channel (`r·s·c`, `k`, or `r·s`).
    pub filter_per_channel: u64,
}

impl LayerGeometry {
    /// Extracts the planning geometry from a layer.
    pub fn of(layer: &Layer) -> Self {
        let (oh, ow) = layer.ofmap_dims();
        match layer.kind {
            LayerKind::Conv {
                ih,
                iw,
                r,
                c,
                m,
                stride,
                ..
            } => Self {
                in_rows: u64::from(ih),
                in_row_bytes: u64::from(iw) * u64::from(c),
                r: u64::from(r),
                stride: u64::from(stride),
                out_rows: oh,
                out_row_pixels: ow,
                out_channels: u64::from(m),
                filter_per_channel: layer.filter_bytes() / u64::from(m),
            },
            LayerKind::DepthwiseConv {
                ih,
                iw,
                r,
                c,
                stride,
                ..
            } => Self {
                in_rows: u64::from(ih),
                in_row_bytes: u64::from(iw) * u64::from(c),
                r: u64::from(r),
                stride: u64::from(stride),
                out_rows: oh,
                out_row_pixels: ow,
                out_channels: u64::from(c),
                filter_per_channel: layer.filter_bytes() / u64::from(c),
            },
            LayerKind::Gemm { m, k, n } => Self {
                in_rows: u64::from(m),
                in_row_bytes: u64::from(k),
                r: 1,
                stride: 1,
                out_rows: u64::from(m),
                out_row_pixels: 1,
                out_channels: u64::from(n),
                filter_per_channel: u64::from(k),
            },
        }
    }

    /// Input rows a strip of `th` output rows needs (with halo).
    pub fn in_rows_for(&self, th: u64) -> u64 {
        ((th - 1) * self.stride + self.r).min(self.in_rows)
    }

    /// Bytes per output row (`ow · out_channels`).
    pub fn out_row_bytes(&self) -> u64 {
        self.out_row_pixels * self.out_channels
    }

    /// Total filter bytes.
    pub fn filter_bytes(&self) -> u64 {
        self.filter_per_channel * self.out_channels
    }

    /// Total ifmap bytes.
    pub fn ifmap_bytes(&self) -> u64 {
        self.in_rows * self.in_row_bytes
    }

    /// Total ofmap bytes.
    pub fn ofmap_bytes(&self) -> u64 {
        self.out_rows * self.out_row_bytes()
    }
}

/// Estimated per-tensor traffic of a plan, in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficEstimate {
    /// Ifmap bytes read (including halo re-reads and re-streams).
    pub ifmap: u64,
    /// Filter bytes read (including re-streams).
    pub filter: u64,
    /// Ofmap bytes written.
    pub ofmap: u64,
}

impl TrafficEstimate {
    /// Total demand bytes.
    pub fn total(&self) -> u64 {
        self.ifmap + self.filter + self.ofmap
    }
}

/// A complete tiling decision for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilePlan {
    /// Chosen loop order.
    pub schedule: Schedule,
    /// Output rows per strip.
    pub out_rows_per_strip: u64,
    /// Number of strips.
    pub strips: u64,
    /// Output channels per filter chunk.
    pub chunk_channels: u64,
    /// Number of filter chunks.
    pub chunks: u64,
    /// Input rows fetched per full strip (with halo).
    pub in_rows_per_strip: u64,
    /// Estimated demand traffic.
    pub traffic: TrafficEstimate,
}

fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Ifmap bytes fetched when the tensor is swept once in `strips` strips of
/// `th` output rows (halo rows re-fetched between neighbours).
fn ifmap_sweep_bytes(g: &LayerGeometry, th: u64) -> u64 {
    let strips = div_ceil(g.out_rows, th);
    let mut total = 0;
    for s in 0..strips {
        let rows_out = th.min(g.out_rows - s * th);
        let y0 = (s * th * g.stride).min(g.in_rows);
        let rows_in = g.in_rows_for(rows_out).min(g.in_rows - y0);
        total += rows_in * g.in_row_bytes;
    }
    total
}

/// Plans a layer onto the NPU's buffers.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`NpuConfig::validate`]).
pub fn plan_layer(cfg: &NpuConfig, layer: &Layer) -> TilePlan {
    cfg.validate().expect("invalid NPU configuration");
    let g = LayerGeometry::of(layer);
    let bi = cfg.ifmap_buffer().max(1);
    let bf = cfg.filter_buffer().max(1);
    let bo = cfg.ofmap_buffer().max(1);

    // Largest strip whose input rows fit the ifmap buffer.
    let rows_fitting = (bi / g.in_row_bytes.max(1)).max(1);
    let th_resident = if g.in_rows_for(1) > rows_fitting {
        1 // even one output row's halo overflows; accept overflow at th=1
    } else {
        // Largest th with (th-1)*stride + r <= rows_fitting.
        ((rows_fitting.saturating_sub(g.r)) / g.stride + 1).min(g.out_rows)
    };

    // Largest filter chunk that fits the filter buffer.
    let mc_resident = (bf / g.filter_per_channel.max(1)).clamp(1, g.out_channels);

    let f = g.filter_bytes();
    let o = g.ofmap_bytes();

    // Fits an output tile into the ofmap buffer, preferring to shorten the
    // strip before thinning the channel chunk (full-depth writes stay
    // contiguous; thin chunks degrade into per-pixel strided runs).
    let fit_output_tile = |th_max: u64, mc_max: u64| -> (u64, u64) {
        let row_tile = (g.out_row_pixels * mc_max).max(1);
        if bo >= row_tile {
            ((bo / row_tile).clamp(1, th_max), mc_max)
        } else {
            (1, (bo / g.out_row_pixels.max(1)).clamp(1, mc_max))
        }
    };

    // Candidate 1: ifmap strips resident (filter re-streamed per strip, so
    // it needs no residency and the chunk can span the full depth whenever
    // the ofmap tile allows — keeping output writes contiguous).
    let c1 = {
        let (th, mc) = fit_output_tile(th_resident, g.out_channels);
        let strips = div_ceil(g.out_rows, th);
        let chunks = div_ceil(g.out_channels, mc);
        let i_bytes = ifmap_sweep_bytes(&g, th);
        let f_bytes = f * strips;
        TilePlan {
            schedule: Schedule::IfmapResident,
            out_rows_per_strip: th,
            strips,
            chunk_channels: mc,
            chunks,
            in_rows_per_strip: g.in_rows_for(th),
            traffic: TrafficEstimate {
                ifmap: i_bytes,
                filter: f_bytes,
                ofmap: o,
            },
        }
    };

    // Candidate 2: filter chunks resident (the chunk must fit the filter
    // buffer); the ifmap streams per chunk, so strips are bounded only by
    // the ofmap tile.
    let c2 = {
        let (th, mc) = fit_output_tile(g.out_rows, mc_resident);
        let chunks = div_ceil(g.out_channels, mc);
        let strips = div_ceil(g.out_rows, th);
        let i_bytes = ifmap_sweep_bytes(&g, th) * chunks;
        TilePlan {
            schedule: Schedule::FilterResident,
            out_rows_per_strip: th,
            strips,
            chunk_channels: mc,
            chunks,
            in_rows_per_strip: g.in_rows_for(th),
            traffic: TrafficEstimate {
                ifmap: i_bytes,
                filter: f,
                ofmap: o,
            },
        }
    };

    // Candidate 3: output tile resident, both inputs stream. Search strip
    // heights geometrically; the chunk is whatever the ofmap buffer allows.
    let c3 = {
        let mut best: Option<TilePlan> = None;
        let mut th = g.out_rows;
        loop {
            let mc = (bo / (th * g.out_row_pixels).max(1)).clamp(1, g.out_channels);
            let strips = div_ceil(g.out_rows, th);
            let chunks = div_ceil(g.out_channels, mc);
            let i_bytes = ifmap_sweep_bytes(&g, th) * chunks;
            let f_bytes = f * strips;
            let plan = TilePlan {
                schedule: Schedule::OutputResident,
                out_rows_per_strip: th,
                strips,
                chunk_channels: mc,
                chunks,
                in_rows_per_strip: g.in_rows_for(th),
                traffic: TrafficEstimate {
                    ifmap: i_bytes,
                    filter: f_bytes,
                    ofmap: o,
                },
            };
            if best.is_none_or(|b| plan.traffic.total() < b.traffic.total()) {
                best = Some(plan);
            }
            if th == 1 {
                break;
            }
            th /= 2;
        }
        best.expect("at least one output-resident plan")
    };

    // Tie-break equal traffic toward fewer chunks and strips: contiguous
    // full-depth writes beat fragmented ones at equal byte cost.
    [c1, c2, c3]
        .into_iter()
        .min_by_key(|p| (p.traffic.total(), p.chunks, p.strips))
        .expect("three candidates")
}

/// Base addresses the burst generator writes a layer's traffic against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerAddresses {
    /// Base of the layer's ifmap activation buffer.
    pub ifmap: u64,
    /// Base of the layer's packed weights.
    pub filter: u64,
    /// Base of the layer's ofmap activation buffer.
    pub ofmap: u64,
}

/// Generates the layer's burst trace under `plan`.
///
/// Burst order follows the plan's loop nest, so downstream DRAM simulation
/// sees realistic interleaving. Output writes for partial-channel chunks
/// become one short strided run per output pixel — the pattern that coarse
/// integrity granularities pay for.
pub fn generate_bursts(
    layer: &Layer,
    layer_idx: u32,
    plan: &TilePlan,
    addrs: LayerAddresses,
) -> Vec<Burst> {
    let g = LayerGeometry::of(layer);
    let mut out = Vec::new();

    let strip_in_base = |s: u64| -> (u64, u64) {
        // (first input row, rows fetched) for strip s.
        let th = plan.out_rows_per_strip;
        let rows_out = th.min(g.out_rows - s * th);
        let y0 = (s * th * g.stride).min(g.in_rows);
        let rows_in = g.in_rows_for(rows_out).min(g.in_rows - y0);
        (y0, rows_in)
    };

    let emit_ifmap = |out: &mut Vec<Burst>, s: u64| {
        let (y0, rows) = strip_in_base(s);
        if rows > 0 {
            out.push(Burst::read(
                addrs.ifmap + y0 * g.in_row_bytes,
                rows * g.in_row_bytes,
                TensorKind::Ifmap,
                layer_idx,
            ));
        }
    };

    let emit_filter = |out: &mut Vec<Burst>, c: u64| {
        let mc = plan.chunk_channels;
        let ch0 = c * mc;
        let chs = mc.min(g.out_channels - ch0);
        out.push(Burst::read(
            addrs.filter + ch0 * g.filter_per_channel,
            chs * g.filter_per_channel,
            TensorKind::Filter,
            layer_idx,
        ));
    };

    let emit_ofmap = |out: &mut Vec<Burst>, s: u64, c: u64| {
        let th = plan.out_rows_per_strip;
        let rows_out = th.min(g.out_rows - s * th);
        let mc = plan.chunk_channels;
        let ch0 = c * mc;
        let chs = mc.min(g.out_channels - ch0);
        let row_bytes = g.out_row_bytes();
        if chs == g.out_channels {
            // Full-depth strip: one contiguous run.
            out.push(Burst::write(
                addrs.ofmap + s * th * row_bytes,
                rows_out * row_bytes,
                TensorKind::Ofmap,
                layer_idx,
            ));
        } else {
            // Channel-chunked: the ofmap is laid out chunk-major within
            // each row (`[y][chunk][x][mc]`), so each (row, chunk) pair is
            // one contiguous run. A full row remains one contiguous span
            // for the next layer's row-granular reads.
            for y in 0..rows_out {
                let row = s * th + y;
                out.push(Burst::write(
                    addrs.ofmap + row * row_bytes + ch0 * g.out_row_pixels,
                    chs * g.out_row_pixels,
                    TensorKind::Ofmap,
                    layer_idx,
                ));
            }
        }
    };

    match plan.schedule {
        Schedule::IfmapResident => {
            for s in 0..plan.strips {
                emit_ifmap(&mut out, s);
                for c in 0..plan.chunks {
                    emit_filter(&mut out, c);
                    emit_ofmap(&mut out, s, c);
                }
            }
        }
        Schedule::FilterResident => {
            for c in 0..plan.chunks {
                emit_filter(&mut out, c);
                for s in 0..plan.strips {
                    emit_ifmap(&mut out, s);
                    emit_ofmap(&mut out, s, c);
                }
            }
        }
        Schedule::OutputResident => {
            for c in 0..plan.chunks {
                for s in 0..plan.strips {
                    emit_filter(&mut out, c);
                    emit_ifmap(&mut out, s);
                    emit_ofmap(&mut out, s, c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::TrafficSummary;
    use seda_models::Layer;

    fn addrs() -> LayerAddresses {
        LayerAddresses {
            ifmap: 0,
            filter: 1 << 30,
            ofmap: 1 << 31,
        }
    }

    #[test]
    fn resident_layer_reads_everything_once() {
        let cfg = NpuConfig::server();
        let layer = Layer::conv("c", 58, 58, 3, 3, 64, 64, 1);
        let plan = plan_layer(&cfg, &layer);
        assert_eq!(plan.strips, 1);
        assert_eq!(plan.chunks, 1);
        assert_eq!(plan.traffic.ifmap, layer.ifmap_bytes());
        assert_eq!(plan.traffic.filter, layer.filter_bytes());
        assert_eq!(plan.traffic.ofmap, layer.ofmap_bytes());
    }

    #[test]
    fn edge_tiling_adds_halo() {
        let cfg = NpuConfig::edge();
        // 416x416x16 ifmap = 2.7 MB >> 192 KB ifmap buffer.
        let layer = Layer::conv("c", 418, 418, 3, 3, 16, 32, 1);
        let plan = plan_layer(&cfg, &layer);
        assert!(plan.strips > 1, "large ifmap must be stripped");
        assert!(
            plan.traffic.ifmap > layer.ifmap_bytes(),
            "halo rows must be re-fetched: {} vs {}",
            plan.traffic.ifmap,
            layer.ifmap_bytes()
        );
        // But amplification stays bounded (halo is r-stride rows per strip).
        assert!(plan.traffic.ifmap < 2 * layer.ifmap_bytes());
    }

    #[test]
    fn big_k_gemm_uses_output_residency() {
        let cfg = NpuConfig::edge();
        // Faster R-CNN fc6-like: both operands far exceed their buffers.
        let layer = Layer::gemm("fc6", 128, 25088, 4096);
        let plan = plan_layer(&cfg, &layer);
        assert_eq!(plan.schedule, Schedule::OutputResident);
        // Traffic must stay within a small multiple of the tensor sizes,
        // not the quadratic blowup of the naive schedules.
        assert!(
            plan.traffic.total() < 3 * layer.total_bytes(),
            "traffic {} vs tensors {}",
            plan.traffic.total(),
            layer.total_bytes()
        );
    }

    #[test]
    fn bursts_match_estimate() {
        let cfg = NpuConfig::edge();
        for layer in [
            Layer::conv("a", 58, 58, 3, 3, 64, 64, 1),
            Layer::conv("b", 418, 418, 3, 3, 16, 32, 1),
            Layer::gemm("c", 128, 1024, 512),
            Layer::depthwise("d", 114, 114, 3, 3, 64, 1),
        ] {
            let plan = plan_layer(&cfg, &layer);
            let bursts = generate_bursts(&layer, 0, &plan, addrs());
            let s = TrafficSummary::of(&bursts);
            assert_eq!(s.ifmap_read, plan.traffic.ifmap, "{}", layer.name);
            assert_eq!(s.filter_read, plan.traffic.filter, "{}", layer.name);
            assert_eq!(s.ofmap_write, plan.traffic.ofmap, "{}", layer.name);
        }
    }

    #[test]
    fn ofmap_writes_cover_tensor_exactly_once() {
        let cfg = NpuConfig::edge();
        let layer = Layer::conv("c", 30, 30, 3, 3, 32, 64, 1);
        let plan = plan_layer(&cfg, &layer);
        let bursts = generate_bursts(&layer, 0, &plan, addrs());
        let base = addrs().ofmap;
        let mut coverage = vec![0u8; layer.ofmap_bytes() as usize];
        for b in bursts.iter().filter(|b| b.is_write) {
            for i in 0..b.bytes {
                coverage[(b.addr - base + i) as usize] += 1;
            }
        }
        assert!(
            coverage.iter().all(|&c| c == 1),
            "every ofmap byte written once"
        );
    }

    #[test]
    fn ifmap_reads_stay_in_bounds() {
        let cfg = NpuConfig::edge();
        let layer = Layer::conv("c", 418, 418, 3, 3, 16, 32, 1);
        let plan = plan_layer(&cfg, &layer);
        for b in generate_bursts(&layer, 0, &plan, addrs()) {
            if b.tensor == TensorKind::Ifmap {
                assert!(b.end() <= layer.ifmap_bytes());
            }
        }
    }

    #[test]
    fn traffic_is_at_least_compulsory() {
        let cfg = NpuConfig::edge();
        for layer in [
            Layer::conv("a", 227, 227, 11, 11, 3, 96, 4),
            Layer::gemm("b", 1, 9216, 4096),
        ] {
            let plan = plan_layer(&cfg, &layer);
            assert!(plan.traffic.ifmap >= layer.ifmap_bytes());
            assert!(plan.traffic.filter >= layer.filter_bytes());
            assert_eq!(plan.traffic.ofmap, layer.ofmap_bytes());
        }
    }
}
