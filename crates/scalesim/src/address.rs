//! Physical address layout of a model in protected off-chip memory.
//!
//! Weights are packed contiguously per layer at the bottom of the protected
//! region. Activations ping-pong between two buffers sized for the largest
//! feature map, so layer *i* writes the buffer layer *i+1* reads — the
//! inter-layer tiling-pattern interaction of Fig. 3(b) plays out in these
//! shared addresses.

use seda_models::Model;
use serde::{Deserialize, Serialize};

/// Alignment of every tensor allocation (one protection block of the
/// largest granularity under study keeps tensors from sharing blocks).
pub const TENSOR_ALIGN: u64 = 4096;

fn align_up(x: u64, a: u64) -> u64 {
    x.div_ceil(a) * a
}

/// Address assignment for one model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    weight_base: Vec<u64>,
    act_base: [u64; 2],
    total_bytes: u64,
}

impl AddressMap {
    /// Lays out `model` starting at address zero.
    pub fn new(model: &Model) -> Self {
        let mut cursor = 0u64;
        let mut weight_base = Vec::with_capacity(model.layers().len());
        for layer in model.layers() {
            weight_base.push(cursor);
            cursor = align_up(cursor + layer.filter_bytes(), TENSOR_ALIGN);
        }
        let act_bytes = model
            .layers()
            .iter()
            .map(|l| l.ifmap_bytes().max(l.ofmap_bytes()))
            .max()
            .expect("model has layers");
        let act0 = cursor;
        let act1 = align_up(act0 + act_bytes, TENSOR_ALIGN);
        let total = align_up(act1 + act_bytes, TENSOR_ALIGN);
        Self {
            weight_base,
            act_base: [act0, act1],
            total_bytes: total,
        }
    }

    /// Base address of layer `i`'s weights.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn weights(&self, i: usize) -> u64 {
        self.weight_base[i]
    }

    /// Base address of the activation buffer layer `i` reads (its ifmap).
    pub fn ifmap(&self, i: usize) -> u64 {
        self.act_base[i % 2]
    }

    /// Base address of the activation buffer layer `i` writes (its ofmap).
    pub fn ofmap(&self, i: usize) -> u64 {
        self.act_base[(i + 1) % 2]
    }

    /// Total protected footprint in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_models::zoo;

    #[test]
    fn weights_do_not_overlap() {
        let m = zoo::resnet18();
        let map = AddressMap::new(&m);
        for (i, layer) in m.layers().iter().enumerate().take(m.layers().len() - 1) {
            assert!(
                map.weights(i) + layer.filter_bytes() <= map.weights(i + 1),
                "layer {i} weights overlap layer {}",
                i + 1
            );
        }
    }

    #[test]
    fn activations_ping_pong() {
        let m = zoo::alexnet();
        let map = AddressMap::new(&m);
        for i in 0..m.layers().len() - 1 {
            assert_eq!(
                map.ofmap(i),
                map.ifmap(i + 1),
                "layer {i} output must feed layer {} input",
                i + 1
            );
            assert_ne!(map.ifmap(i), map.ofmap(i));
        }
    }

    #[test]
    fn everything_is_aligned() {
        let m = zoo::mobilenet();
        let map = AddressMap::new(&m);
        for i in 0..m.layers().len() {
            assert_eq!(map.weights(i) % TENSOR_ALIGN, 0);
        }
        assert_eq!(map.ifmap(0) % TENSOR_ALIGN, 0);
        assert_eq!(map.ofmap(0) % TENSOR_ALIGN, 0);
    }

    #[test]
    fn footprint_covers_weights_and_activations() {
        let m = zoo::lenet();
        let map = AddressMap::new(&m);
        assert!(map.total_bytes() >= m.weight_bytes());
        assert!(map.total_bytes().is_multiple_of(TENSOR_ALIGN));
    }
}
