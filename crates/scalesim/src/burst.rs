//! DRAM burst traces.
//!
//! The accelerator's memory traffic is described as *bursts*: contiguous
//! runs of bytes moved between SRAM and DRAM. A burst is the unit the
//! memory-protection layer reasons about — its length relative to the
//! protection granularity determines alignment overfetch, and its tensor
//! and layer identity determine which MACs and version numbers cover it.

use serde::{Deserialize, Serialize};

/// Which tensor a burst belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorKind {
    /// Input feature map (read).
    Ifmap,
    /// Weights (read).
    Filter,
    /// Output feature map (written).
    Ofmap,
}

impl TensorKind {
    /// Stable index used as the `fmap_idx` MAC position field.
    pub fn fmap_idx(self) -> u32 {
        match self {
            TensorKind::Ifmap => 0,
            TensorKind::Filter => 1,
            TensorKind::Ofmap => 2,
        }
    }
}

/// One contiguous run of off-chip traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Burst {
    /// Starting byte address.
    pub addr: u64,
    /// Length in bytes (non-zero).
    pub bytes: u64,
    /// Direction: write to DRAM when true, read otherwise.
    pub is_write: bool,
    /// Tensor the data belongs to.
    pub tensor: TensorKind,
    /// Index of the layer issuing the burst.
    pub layer: u32,
}

impl Burst {
    /// A read burst.
    pub fn read(addr: u64, bytes: u64, tensor: TensorKind, layer: u32) -> Self {
        debug_assert!(bytes > 0);
        Self {
            addr,
            bytes,
            is_write: false,
            tensor,
            layer,
        }
    }

    /// A write burst.
    pub fn write(addr: u64, bytes: u64, tensor: TensorKind, layer: u32) -> Self {
        debug_assert!(bytes > 0);
        Self {
            addr,
            bytes,
            is_write: true,
            tensor,
            layer,
        }
    }

    /// Exclusive end address of the run.
    pub fn end(&self) -> u64 {
        self.addr + self.bytes
    }
}

/// Byte totals per tensor and direction for a burst stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficSummary {
    /// Ifmap bytes read.
    pub ifmap_read: u64,
    /// Filter bytes read.
    pub filter_read: u64,
    /// Ofmap bytes written.
    pub ofmap_write: u64,
    /// Ofmap bytes read back (partial-block or partial-sum traffic).
    pub ofmap_read: u64,
    /// Number of bursts.
    pub bursts: u64,
}

impl TrafficSummary {
    /// Adds one burst to the totals.
    pub fn record(&mut self, b: &Burst) {
        self.bursts += 1;
        match (b.tensor, b.is_write) {
            (TensorKind::Ifmap, false) => self.ifmap_read += b.bytes,
            (TensorKind::Filter, false) => self.filter_read += b.bytes,
            (TensorKind::Ofmap, true) => self.ofmap_write += b.bytes,
            (TensorKind::Ofmap, false) => self.ofmap_read += b.bytes,
            // Writes of read-only tensors do not occur in inference.
            (TensorKind::Ifmap | TensorKind::Filter, true) => {
                unreachable!("inference never writes {:?}", b.tensor)
            }
        }
    }

    /// Total bytes moved in either direction.
    pub fn total(&self) -> u64 {
        self.ifmap_read + self.filter_read + self.ofmap_write + self.ofmap_read
    }

    /// Summarizes a burst slice.
    pub fn of(bursts: &[Burst]) -> Self {
        let mut s = Self::default();
        for b in bursts {
            s.record(b);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_accumulates_by_kind() {
        let bursts = [
            Burst::read(0, 100, TensorKind::Ifmap, 0),
            Burst::read(4096, 50, TensorKind::Filter, 0),
            Burst::write(8192, 30, TensorKind::Ofmap, 0),
            Burst::read(8192, 10, TensorKind::Ofmap, 0),
        ];
        let s = TrafficSummary::of(&bursts);
        assert_eq!(s.ifmap_read, 100);
        assert_eq!(s.filter_read, 50);
        assert_eq!(s.ofmap_write, 30);
        assert_eq!(s.ofmap_read, 10);
        assert_eq!(s.total(), 190);
        assert_eq!(s.bursts, 4);
    }

    #[test]
    fn fmap_indices_are_distinct() {
        assert_ne!(TensorKind::Ifmap.fmap_idx(), TensorKind::Filter.fmap_idx());
        assert_ne!(TensorKind::Filter.fmap_idx(), TensorKind::Ofmap.fmap_idx());
    }

    #[test]
    fn burst_end() {
        assert_eq!(Burst::read(64, 128, TensorKind::Ifmap, 0).end(), 192);
    }
}
