//! NPU configuration (paper Table II).

use serde::{Deserialize, Serialize};

/// Systolic-array dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Output-stationary: each PE accumulates one output element.
    OutputStationary,
    /// Weight-stationary: weights are pinned, inputs stream through.
    WeightStationary,
}

/// A DNN accelerator configuration.
///
/// The two presets, [`NpuConfig::server`] (Google TPU v1-class) and
/// [`NpuConfig::edge`] (Samsung Exynos 990-class), mirror the paper's
/// Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpuConfig {
    /// Configuration label (e.g. `"server"`).
    pub name: String,
    /// Systolic-array rows.
    pub rows: u32,
    /// Systolic-array columns.
    pub cols: u32,
    /// Dataflow mapping.
    pub dataflow: Dataflow,
    /// Total on-chip SRAM in bytes, split across the three tensor buffers.
    pub sram_bytes: u64,
    /// Accelerator clock in Hz.
    pub clock_hz: f64,
    /// Aggregate off-chip peak bandwidth in bytes/second.
    pub dram_bandwidth: f64,
    /// Number of DRAM channels.
    pub dram_channels: u32,
    /// Fraction of SRAM given to the ifmap buffer.
    pub ifmap_frac: f64,
    /// Fraction of SRAM given to the filter buffer (remainder → ofmap).
    pub filter_frac: f64,
}

impl NpuConfig {
    /// Server NPU per Table II: Google TPU v1 — 256×256 PEs, 24 MB SRAM,
    /// 1 GHz, 20 GB/s over 4 channels.
    pub fn server() -> Self {
        Self {
            name: "server".to_owned(),
            rows: 256,
            cols: 256,
            dataflow: Dataflow::OutputStationary,
            sram_bytes: 24 << 20,
            clock_hz: 1.0e9,
            dram_bandwidth: 20.0e9,
            dram_channels: 4,
            ifmap_frac: 0.4,
            filter_frac: 0.4,
        }
    }

    /// Edge NPU per Table II: Samsung Exynos 990 — 32×32 PEs, 480 KB SRAM,
    /// 2.75 GHz, 10 GB/s over 4 channels.
    pub fn edge() -> Self {
        Self {
            name: "edge".to_owned(),
            rows: 32,
            cols: 32,
            dataflow: Dataflow::OutputStationary,
            sram_bytes: 480 << 10,
            clock_hz: 2.75e9,
            dram_bandwidth: 10.0e9,
            dram_channels: 4,
            ifmap_frac: 0.4,
            filter_frac: 0.4,
        }
    }

    /// Ifmap buffer capacity in bytes.
    pub fn ifmap_buffer(&self) -> u64 {
        (self.sram_bytes as f64 * self.ifmap_frac) as u64
    }

    /// Filter buffer capacity in bytes.
    pub fn filter_buffer(&self) -> u64 {
        (self.sram_bytes as f64 * self.filter_frac) as u64
    }

    /// Ofmap buffer capacity in bytes.
    pub fn ofmap_buffer(&self) -> u64 {
        self.sram_bytes - self.ifmap_buffer() - self.filter_buffer()
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.rows == 0 || self.cols == 0 {
            return Err("array dimensions must be positive".into());
        }
        if self.sram_bytes == 0 {
            return Err("sram_bytes must be positive".into());
        }
        if self.clock_hz <= 0.0
            || self.dram_bandwidth <= 0.0
            || self.clock_hz.is_nan()
            || self.dram_bandwidth.is_nan()
        {
            return Err("clock and bandwidth must be positive".into());
        }
        if !(0.0..1.0).contains(&self.ifmap_frac)
            || !(0.0..1.0).contains(&self.filter_frac)
            || self.ifmap_frac + self.filter_frac >= 1.0
        {
            return Err("buffer fractions must be in (0,1) and sum below 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_presets() {
        let s = NpuConfig::server();
        assert_eq!(s.rows * s.cols, 65536);
        assert_eq!(s.sram_bytes, 24 * 1024 * 1024);
        assert!(s.validate().is_ok());
        let e = NpuConfig::edge();
        assert_eq!(e.rows * e.cols, 1024);
        assert_eq!(e.sram_bytes, 480 * 1024);
        assert!((e.clock_hz - 2.75e9).abs() < 1.0);
        assert!(e.validate().is_ok());
    }

    #[test]
    fn buffers_partition_sram() {
        let s = NpuConfig::server();
        assert_eq!(
            s.ifmap_buffer() + s.filter_buffer() + s.ofmap_buffer(),
            s.sram_bytes
        );
        assert!(s.ofmap_buffer() > 0);
    }

    #[test]
    fn invalid_fractions_rejected() {
        let mut c = NpuConfig::edge();
        c.ifmap_frac = 0.7;
        c.filter_frac = 0.5;
        assert!(c.validate().is_err());
    }
}
