//! Whole-model accelerator simulation: per-layer compute cycles, tile
//! plans, and burst traces.

use crate::address::AddressMap;
use crate::burst::{Burst, TrafficSummary};
use crate::compute::gemm_cycles;
use crate::config::NpuConfig;
use crate::tiling::{generate_bursts, plan_layer, LayerAddresses, TilePlan};
use seda_models::Model;
use serde::{Deserialize, Serialize};

/// Simulation result for one layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerSim {
    /// Layer index within the model.
    pub index: u32,
    /// Layer name.
    pub name: String,
    /// Systolic-array compute cycles (accelerator clock).
    pub compute_cycles: u64,
    /// The tiling decision.
    pub plan: TilePlan,
    /// Demand traffic totals.
    pub traffic: TrafficSummary,
    /// The burst trace in loop-nest order.
    pub bursts: Vec<Burst>,
}

/// Simulation result for a whole model on one NPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSim {
    /// Model name.
    pub model: String,
    /// NPU configuration name.
    pub npu: String,
    /// Per-layer results in execution order.
    pub layers: Vec<LayerSim>,
    /// Address layout used.
    #[serde(skip)]
    pub address_map: Option<AddressMap>,
}

impl ModelSim {
    /// Total compute cycles across layers.
    pub fn total_compute_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.compute_cycles).sum()
    }

    /// Total demand bytes across layers.
    pub fn total_demand_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.traffic.total()).sum()
    }
}

/// Simulates `model` on `cfg`, producing per-layer cycles and burst traces.
///
/// # Examples
///
/// ```
/// use seda_models::zoo;
/// use seda_scalesim::{simulate_model, NpuConfig};
///
/// let sim = simulate_model(&NpuConfig::edge(), &zoo::lenet());
/// assert_eq!(sim.layers.len(), 5);
/// assert!(sim.total_compute_cycles() > 0);
/// ```
pub fn simulate_model(cfg: &NpuConfig, model: &Model) -> ModelSim {
    let map = AddressMap::new(model);
    let mut layers = Vec::with_capacity(model.layers().len());
    for (i, layer) in model.layers().iter().enumerate() {
        let plan = plan_layer(cfg, layer);
        let addrs = LayerAddresses {
            ifmap: map.ifmap(i),
            filter: map.weights(i),
            ofmap: map.ofmap(i),
        };
        let bursts = generate_bursts(layer, i as u32, &plan, addrs);
        let traffic = TrafficSummary::of(&bursts);
        layers.push(LayerSim {
            index: i as u32,
            name: layer.name.clone(),
            compute_cycles: gemm_cycles(cfg, layer.gemm_shape()),
            plan,
            traffic,
            bursts,
        });
    }
    ModelSim {
        model: model.name().to_owned(),
        npu: cfg.name.clone(),
        layers,
        address_map: Some(map),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_models::zoo;

    #[test]
    fn lenet_on_edge_is_tiny() {
        let sim = simulate_model(&NpuConfig::edge(), &zoo::lenet());
        // LeNet fits on-chip: traffic equals compulsory tensor bytes.
        let m = zoo::lenet();
        assert_eq!(sim.total_demand_bytes(), m.total_tensor_bytes());
    }

    #[test]
    fn server_moves_less_than_edge() {
        let m = zoo::yolo_tiny();
        let server = simulate_model(&NpuConfig::server(), &m);
        let edge = simulate_model(&NpuConfig::edge(), &m);
        assert!(
            server.total_demand_bytes() <= edge.total_demand_bytes(),
            "24 MB SRAM must not lose to 480 KB: {} vs {}",
            server.total_demand_bytes(),
            edge.total_demand_bytes()
        );
    }

    #[test]
    fn traffic_never_below_compulsory() {
        for cfg in [NpuConfig::server(), NpuConfig::edge()] {
            for m in [zoo::alexnet(), zoo::mobilenet(), zoo::dlrm()] {
                let sim = simulate_model(&cfg, &m);
                assert!(
                    sim.total_demand_bytes() >= m.total_tensor_bytes(),
                    "{} on {}",
                    m.name(),
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn all_models_simulate_on_both_npus() {
        for cfg in [NpuConfig::server(), NpuConfig::edge()] {
            for m in zoo::all_models() {
                let sim = simulate_model(&cfg, &m);
                assert_eq!(sim.layers.len(), m.layers().len());
                assert!(sim.total_compute_cycles() > 0);
                for l in &sim.layers {
                    assert!(!l.bursts.is_empty(), "{}::{}", m.name(), l.name);
                }
            }
        }
    }

    #[test]
    fn burst_counts_stay_tractable() {
        for cfg in [NpuConfig::server(), NpuConfig::edge()] {
            for m in zoo::all_models() {
                let sim = simulate_model(&cfg, &m);
                let total: usize = sim.layers.iter().map(|l| l.bursts.len()).sum();
                assert!(
                    total < 3_000_000,
                    "{} on {} emits {total} bursts",
                    m.name(),
                    cfg.name
                );
            }
        }
    }
}
