//! A cycle-level systolic-array DNN accelerator simulator in the spirit of
//! SCALE-Sim v2, providing the substrate of the SeDA evaluation.
//!
//! Given an [`NpuConfig`] (paper Table II presets included) and a
//! [`seda_models::Model`], the simulator:
//!
//! 1. lowers each layer to its systolic GEMM and computes analytical
//!    compute cycles ([`compute`]);
//! 2. schedules the layer onto finite SRAM with one of three loop orders,
//!    deriving halo re-reads and channel-chunked writes ([`tiling`]);
//! 3. lays the model out in protected memory ([`address`]); and
//! 4. emits a DRAM *burst trace* — contiguous runs with tensor and layer
//!    identity ([`burst`]) — which the memory-protection layer transforms
//!    and the DRAM simulator times.
//!
//! # Examples
//!
//! ```
//! use seda_models::zoo;
//! use seda_scalesim::{simulate_model, NpuConfig};
//!
//! let sim = simulate_model(&NpuConfig::server(), &zoo::resnet18());
//! println!(
//!     "{}: {} cycles, {} MiB of demand traffic",
//!     sim.model,
//!     sim.total_compute_cycles(),
//!     sim.total_demand_bytes() >> 20
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod burst;
pub mod cache;
pub mod compute;
pub mod config;
pub mod exact;
pub mod sim;
pub mod tiling;
pub mod tracefile;

pub use address::AddressMap;
pub use burst::{Burst, TensorKind, TrafficSummary};
pub use cache::TraceCache;
pub use compute::{gemm_cycles, utilization};
pub use config::{Dataflow, NpuConfig};
pub use exact::{
    exact_gemm, simulate_fold, simulate_fold_in, simulate_fold_ws, ExactGemm, FoldSim,
};
pub use sim::{simulate_model, LayerSim, ModelSim};
pub use tiling::{generate_bursts, plan_layer, LayerAddresses, LayerGeometry, Schedule, TilePlan};
pub use tracefile::{parse_trace, write_trace, ParseTraceError};
