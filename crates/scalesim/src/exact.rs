//! Cycle-accurate systolic-array simulation.
//!
//! The analytical model in [`crate::compute`] uses closed-form fold
//! formulas; this module *simulates* the output-stationary array cycle by
//! cycle — skewed operand wavefronts, per-PE accumulation, and result
//! drain — and is used to validate those formulas and to produce per-PE
//! activity statistics the closed forms cannot (utilization heatmaps,
//! wavefront occupancy traces).
//!
//! One fold of an `R × C` output-stationary array computing a reduction of
//! length `T`: PE *(i, j)* receives its first operand pair at cycle
//! `i + j` (inputs skew in from the left edge, weights from the top),
//! performs one MAC per cycle for `T` cycles, and the finished outputs
//! drain through the array's columns for `R` further cycles.

use crate::config::NpuConfig;
use seda_models::GemmShape;
use serde::{Deserialize, Serialize};

/// Result of simulating one fold cycle-accurately.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoldSim {
    /// Rows of the array occupied by this fold.
    pub rows_used: u64,
    /// Columns occupied.
    pub cols_used: u64,
    /// Reduction length.
    pub t: u64,
    /// Total cycles from first operand entry to last output drained.
    pub cycles: u64,
    /// MAC operations performed.
    pub macs: u64,
    /// Number of cycles each PE row spent active (length `rows_used`).
    pub row_active_cycles: Vec<u64>,
}

/// Simulates one output-stationary fold cycle by cycle.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn simulate_fold(rows_used: u64, cols_used: u64, t: u64) -> FoldSim {
    simulate_fold_in(rows_used, cols_used, t, rows_used)
}

/// Like [`simulate_fold`] with an explicit physical array height, which
/// the output drain must traverse even when the fold occupies fewer rows.
///
/// # Panics
///
/// Panics if any dimension is zero or `rows_used > physical_rows`.
pub fn simulate_fold_in(rows_used: u64, cols_used: u64, t: u64, physical_rows: u64) -> FoldSim {
    assert!(rows_used > 0 && cols_used > 0 && t > 0, "degenerate fold");
    assert!(rows_used <= physical_rows, "fold taller than the array");
    let mut macs = 0u64;
    let mut row_active_cycles = vec![0u64; rows_used as usize];
    // A PE (i, j) is active during cycles [i + j, i + j + t).
    let compute_end = (rows_used - 1) + (cols_used - 1) + t; // exclusive
    let mut cycle = 0u64;
    while cycle < compute_end {
        for (i, row_cycles) in row_active_cycles.iter_mut().enumerate() {
            let i = i as u64;
            // Columns active in this row at this cycle.
            let lo = cycle.saturating_sub(i).saturating_sub(t - 1);
            let hi = cycle.saturating_sub(i).min(cols_used - 1);
            if cycle >= i && lo <= hi {
                let active = hi - lo + 1;
                macs += active;
                *row_cycles += active;
            }
        }
        cycle += 1;
    }
    // Drain: outputs shift down their columns, one hop per cycle. The
    // bottom-occupied PEs finish last (cycle compute_end − 1) and their
    // results traverse the physical array height to clear the bottom edge;
    // earlier rows overlap underneath them.
    let cycles = compute_end + physical_rows;
    FoldSim {
        rows_used,
        cols_used,
        t,
        cycles,
        macs,
        row_active_cycles,
    }
}

/// Cycle-accurate result for a whole GEMM on the configured array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExactGemm {
    /// Total cycles across all folds (folds execute back to back).
    pub cycles: u64,
    /// Total MACs performed (must equal the shape's MAC count).
    pub macs: u64,
    /// MACs divided by `cycles × rows × cols`: achieved utilization.
    pub utilization: f64,
}

/// Simulates a GEMM fold by fold on `cfg`'s array (output-stationary).
///
/// Identical folds are simulated once and multiplied, so cost is bounded
/// by the four distinct (full/partial row, full/partial column) shapes.
pub fn exact_gemm(cfg: &NpuConfig, shape: GemmShape) -> ExactGemm {
    let rows = u64::from(cfg.rows);
    let cols = u64::from(cfg.cols);
    let full_r = shape.sr / rows;
    let rem_r = shape.sr % rows;
    let full_c = shape.sc / cols;
    let rem_c = shape.sc % cols;

    let mut cycles = 0u64;
    let mut macs = 0u64;
    let mut add = |r: u64, c: u64, count: u64| {
        if r > 0 && c > 0 && count > 0 {
            let sim = simulate_fold_in(r, c, shape.t, rows);
            cycles += sim.cycles * count;
            macs += sim.macs * count;
        }
    };
    add(rows, cols, full_r * full_c);
    add(rows, rem_c, full_r);
    add(rem_r, cols, full_c);
    add(rem_r, rem_c, 1);

    cycles *= shape.folds;
    macs *= shape.folds;
    // Degenerate shapes (zero folds or a zero dimension) do zero work in
    // zero cycles — matching the analytical `gemm_cycles`, which returns 0
    // for them — so utilization is 0, not the 0/0 NaN a blind division
    // would produce.
    let utilization = if cycles == 0 {
        0.0
    } else {
        macs as f64 / (cycles as f64 * rows as f64 * cols as f64)
    };
    ExactGemm {
        cycles,
        macs,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::gemm_cycles;

    fn shape(sr: u64, t: u64, sc: u64) -> GemmShape {
        GemmShape {
            sr,
            t,
            sc,
            folds: 1,
        }
    }

    #[test]
    fn single_fold_matches_closed_form() {
        // 2R + C + T − 2 for a full fold.
        let sim = simulate_fold(8, 8, 32);
        assert_eq!(sim.cycles, 2 * 8 + 8 + 32 - 2);
        assert_eq!(sim.macs, 8 * 8 * 32);
    }

    #[test]
    fn every_pe_is_active_exactly_t_cycles() {
        let sim = simulate_fold(5, 7, 13);
        for (i, &active) in sim.row_active_cycles.iter().enumerate() {
            assert_eq!(active, 7 * 13, "row {i} active cycles");
        }
    }

    #[test]
    fn exact_matches_analytical_across_shapes() {
        let cfg = NpuConfig::edge(); // 32x32
        for (sr, t, sc) in [
            (32, 64, 32),  // one exact fold
            (64, 64, 64),  // 2x2 full folds
            (40, 17, 40),  // partial edge folds
            (1, 1, 1),     // degenerate
            (100, 9, 3),   // tall-thin
            (3, 200, 100), // short-wide
        ] {
            let s = shape(sr, t, sc);
            let exact = exact_gemm(&cfg, s);
            assert_eq!(
                exact.cycles,
                gemm_cycles(&cfg, s),
                "cycle mismatch for {sr}x{t}x{sc}"
            );
            assert_eq!(exact.macs, s.macs(), "MAC mismatch for {sr}x{t}x{sc}");
        }
    }

    #[test]
    fn folds_multiply_depthwise_work() {
        let cfg = NpuConfig::edge();
        let s = GemmShape {
            sr: 16,
            t: 9,
            sc: 1,
            folds: 32,
        };
        let exact = exact_gemm(&cfg, s);
        assert_eq!(exact.macs, 16 * 9 * 32);
        assert_eq!(exact.cycles, gemm_cycles(&cfg, s));
    }

    #[test]
    fn utilization_is_sane_and_improves_with_t() {
        let cfg = NpuConfig::edge();
        let short = exact_gemm(&cfg, shape(32, 8, 32));
        let long = exact_gemm(&cfg, shape(32, 2048, 32));
        assert!(short.utilization > 0.0 && short.utilization <= 1.0);
        assert!(long.utilization > short.utilization);
        assert!(long.utilization > 0.9, "long reductions amortize skew");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_fold_rejected() {
        let _ = simulate_fold(0, 4, 4);
    }

    #[test]
    fn zero_fold_shape_yields_zero_not_nan() {
        // Regression: `folds == 0` (and zero dimensions) used to divide
        // 0 MACs by 0 cycles, poisoning utilization with NaN. The exact
        // path must short-circuit to zeros, consistent with the analytical
        // path returning 0 cycles.
        let cfg = NpuConfig::edge();
        for s in [
            GemmShape {
                sr: 32,
                t: 64,
                sc: 32,
                folds: 0,
            },
            GemmShape {
                sr: 0,
                t: 64,
                sc: 32,
                folds: 1,
            },
        ] {
            let exact = exact_gemm(&cfg, s);
            assert_eq!(exact.cycles, 0);
            assert_eq!(exact.cycles, gemm_cycles(&cfg, s));
            assert_eq!(exact.macs, 0);
            assert_eq!(exact.utilization, 0.0, "must not be NaN");
            assert!(exact.utilization.is_finite());
        }
    }
}

/// Cycle-accurate weight-stationary fold: `rows_used` weights load down
/// the columns (one row per cycle), then `sr` activation rows stream
/// through with a `cols_used − 1` skew drain.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn simulate_fold_ws(rows_used: u64, cols_used: u64, sr: u64) -> FoldSim {
    assert!(rows_used > 0 && cols_used > 0 && sr > 0, "degenerate fold");
    // Phase 1: weight load occupies the array for rows_used cycles.
    let load = rows_used;
    // Phase 2: activations stream; PE column j sees activation i at cycle
    // load + i + j and performs rows_used MACs per activation as the
    // partial sum cascades. Count active MACs per cycle.
    let mut macs = 0u64;
    let mut row_active_cycles = vec![0u64; rows_used as usize];
    let stream_end = load + (sr - 1) + (cols_used - 1) + 1;
    for cycle in load..stream_end {
        let t = cycle - load;
        // Activations i with 0 <= i < sr occupy column j = t - i when in range.
        let lo = t.saturating_sub(cols_used - 1);
        let hi = t.min(sr - 1);
        if lo <= hi {
            let streams = hi - lo + 1;
            macs += streams * rows_used;
            for rc in row_active_cycles.iter_mut() {
                *rc += streams;
            }
        }
    }
    // Partial sums ripple down rows_used accumulators during the stream,
    // folded into the streaming window (the closed form's single pass).
    let cycles = stream_end;
    FoldSim {
        rows_used,
        cols_used,
        t: sr,
        cycles,
        macs,
        row_active_cycles,
    }
}

#[cfg(test)]
mod ws_tests {
    use super::*;
    use crate::compute::gemm_cycles;
    use crate::config::{Dataflow, NpuConfig};
    use seda_models::GemmShape;

    #[test]
    fn ws_fold_matches_closed_form() {
        // rows + sr + cols − 1 per fold.
        let sim = simulate_fold_ws(32, 32, 100);
        assert_eq!(sim.cycles, 32 + 100 + 32 - 1);
        // Every activation row crosses every weight row in every occupied
        // column exactly once.
        assert_eq!(sim.macs, 100 * 32 * 32);
    }

    #[test]
    fn ws_full_gemm_cycles_match_analytical() {
        let mut cfg = NpuConfig::edge();
        cfg.dataflow = Dataflow::WeightStationary;
        let shape = GemmShape {
            sr: 500,
            t: 64,
            sc: 64,
            folds: 1,
        };
        // Analytical WS: ceil(T/rows) x ceil(Sc/cols) folds of
        // (rows + Sr + cols − 1).
        let ft = shape.t.div_ceil(32);
        let fc = shape.sc.div_ceil(32);
        let per_fold = simulate_fold_ws(32, 32, shape.sr).cycles;
        assert_eq!(gemm_cycles(&cfg, shape), ft * fc * per_fold);
    }

    #[test]
    fn ws_mac_total_scales_with_stream_length() {
        let short = simulate_fold_ws(8, 8, 10);
        let long = simulate_fold_ws(8, 8, 100);
        assert_eq!(long.macs, 10 * short.macs);
    }
}
