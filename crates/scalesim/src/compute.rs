//! Analytical systolic-array compute-cycle model (SCALE-Sim style).
//!
//! A layer lowers to a GEMM of `Sr × T × Sc` (see
//! [`seda_models::GemmShape`]); the array executes it in *folds* — tiles of
//! the GEMM mapped onto the physical `rows × cols` grid — each paying a
//! pipeline fill/drain in addition to its streaming time.

use crate::config::{Dataflow, NpuConfig};
use seda_models::GemmShape;

/// Compute cycles for one GEMM on the configured array.
///
/// Output-stationary: `Sr` maps to rows, `Sc` to columns; each fold streams
/// the full reduction `T` and pays `2·rows + cols − 2` fill/drain
/// (SCALE-Sim's OS formula). Weight-stationary: `T` maps to rows (weights
/// pinned), `Sc` to columns; each fold loads weights (`rows` cycles) and
/// streams `Sr` activations plus skew.
pub fn gemm_cycles(cfg: &NpuConfig, g: GemmShape) -> u64 {
    let rows = u64::from(cfg.rows);
    let cols = u64::from(cfg.cols);
    let per_gemm = match cfg.dataflow {
        Dataflow::OutputStationary => {
            // Per fold: operand skew spans the *occupied* rows/columns,
            // but the drain always traverses the physical array height.
            // Full folds reduce to the classic `2R + C + T − 2`.
            let fold = |r_used: u64, c_used: u64| r_used + c_used + g.t - 2 + rows;
            let (full_r, rem_r) = (g.sr / rows, g.sr % rows);
            let (full_c, rem_c) = (g.sc / cols, g.sc % cols);
            let mut cycles = full_r * full_c * fold(rows, cols);
            if rem_c > 0 {
                cycles += full_r * fold(rows, rem_c);
            }
            if rem_r > 0 {
                cycles += full_c * fold(rem_r, cols);
            }
            if rem_r > 0 && rem_c > 0 {
                cycles += fold(rem_r, rem_c);
            }
            cycles
        }
        Dataflow::WeightStationary => {
            let ft = g.t.div_ceil(rows);
            let fc = g.sc.div_ceil(cols);
            ft * fc * (rows + g.sr + cols - 1)
        }
    };
    per_gemm * g.folds
}

/// Array utilization in `[0, 1]`: ideal MAC-cycles over modeled cycles.
pub fn utilization(cfg: &NpuConfig, g: GemmShape) -> f64 {
    let ideal = g.macs() as f64 / (f64::from(cfg.rows) * f64::from(cfg.cols));
    let actual = gemm_cycles(cfg, g) as f64;
    if actual == 0.0 {
        0.0
    } else {
        (ideal / actual).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(sr: u64, t: u64, sc: u64) -> GemmShape {
        GemmShape {
            sr,
            t,
            sc,
            folds: 1,
        }
    }

    #[test]
    fn large_gemm_approaches_ideal_throughput() {
        let cfg = NpuConfig::server();
        // A GEMM that tiles the array exactly many times over, with a long
        // reduction that amortizes each fold's fill/drain.
        let g = shape(256 * 64, 16384, 256 * 64);
        let u = utilization(&cfg, g);
        assert!(u > 0.9, "utilization {u:.3}");
    }

    #[test]
    fn tiny_gemm_underutilizes() {
        let cfg = NpuConfig::server();
        let g = shape(4, 16, 4);
        let u = utilization(&cfg, g);
        assert!(u < 0.05, "tiny GEMM should waste the array: {u:.3}");
    }

    #[test]
    fn cycles_scale_with_folds() {
        let cfg = NpuConfig::edge();
        let one = gemm_cycles(&cfg, shape(32, 100, 32));
        let folded = gemm_cycles(
            &cfg,
            GemmShape {
                sr: 32,
                t: 100,
                sc: 32,
                folds: 8,
            },
        );
        assert_eq!(folded, 8 * one);
    }

    #[test]
    fn os_fold_grid_counts() {
        let cfg = NpuConfig::edge(); // 32x32
        let single = gemm_cycles(&cfg, shape(32, 10, 32));
        let quad = gemm_cycles(&cfg, shape(64, 10, 64));
        assert_eq!(quad, 4 * single);
    }

    #[test]
    fn ws_differs_from_os() {
        let mut cfg = NpuConfig::edge();
        let g = shape(1000, 500, 64);
        let os = gemm_cycles(&cfg, g);
        cfg.dataflow = Dataflow::WeightStationary;
        let ws = gemm_cycles(&cfg, g);
        assert_ne!(os, ws);
        // Both are at least the ideal streaming bound.
        let ideal = g.macs() / (32 * 32);
        assert!(os >= ideal && ws >= ideal);
    }
}
