//! A shared, keyed cache of accelerator traces.
//!
//! Tiling + burst generation ([`simulate_model`]) depends only on the
//! (NPU, model) pair — not on the protection scheme replayed over the
//! trace — yet sweep-style evaluations historically re-derived it once
//! per scheme. The paper's headline 13-workload × 6-scheme × 2-NPU sweep
//! needs only 26 distinct traces but used to compute 156. [`TraceCache`]
//! memoizes [`ModelSim`]s behind [`Arc`]s so every consumer of the same
//! pair shares one simulation, including under concurrency: per-key
//! [`OnceLock`]s guarantee *exactly one* `simulate_model` call per
//! distinct pair even when many threads race on it.

use crate::config::NpuConfig;
use crate::sim::{simulate_model, ModelSim};
use seda_models::Model;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: a structural fingerprint of the NPU config and the model.
///
/// Names alone are not sufficient — a custom `NpuConfig` may reuse the
/// `"edge"` label with different parameters — so the key folds in the
/// full `Debug` rendering of both, which covers every field that can
/// influence the trace.
fn key_of(cfg: &NpuConfig, model: &Model) -> (String, String) {
    (format!("{cfg:?}"), format!("{model:?}"))
}

/// A slot created on first lookup of a key; the inner `OnceLock` makes
/// initialization exactly-once under concurrency.
type TraceSlot = Arc<OnceLock<Arc<ModelSim>>>;

/// A concurrent memo table from (NPU, model) to the simulated trace.
///
/// # Examples
///
/// ```
/// use seda_scalesim::{NpuConfig, TraceCache};
/// use seda_models::zoo;
///
/// let cache = TraceCache::new();
/// let cfg = NpuConfig::edge();
/// let model = zoo::lenet();
/// let first = cache.get_or_simulate(&cfg, &model); // simulates
/// let again = cache.get_or_simulate(&cfg, &model); // shared, no re-simulation
/// assert!(std::sync::Arc::ptr_eq(&first, &again));
/// assert_eq!((cache.misses(), cache.hits()), (1, 1));
/// ```
#[derive(Default)]
pub struct TraceCache {
    map: Mutex<HashMap<(String, String), TraceSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the trace for `(cfg, model)`, simulating it on first use.
    ///
    /// Concurrent callers with the same key block until the single
    /// simulation finishes and then share its result; callers with
    /// different keys proceed independently (the map lock is held only
    /// for the entry lookup, never across a simulation).
    pub fn get_or_simulate(&self, cfg: &NpuConfig, model: &Model) -> Arc<ModelSim> {
        let cell = {
            let mut map = self.map.lock().expect("trace cache poisoned");
            Arc::clone(map.entry(key_of(cfg, model)).or_default())
        };
        let mut missed = false;
        let sim = cell.get_or_init(|| {
            missed = true;
            Arc::new(simulate_model(cfg, model))
        });
        if missed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            seda_telemetry::counter_add("scalesim.trace_cache.misses", 1);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            seda_telemetry::counter_add("scalesim.trace_cache.hits", 1);
        }
        Arc::clone(sim)
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that ran `simulate_model` (one per distinct key).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct (NPU, model) pairs cached so far.
    pub fn len(&self) -> usize {
        self.map.lock().expect("trace cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_models::zoo;

    #[test]
    fn second_lookup_hits() {
        let cache = TraceCache::new();
        let cfg = NpuConfig::edge();
        let m = zoo::lenet();
        let a = cache.get_or_simulate(&cfg, &m);
        let b = cache.get_or_simulate(&cfg, &m);
        assert!(Arc::ptr_eq(&a, &b), "same trace must be shared");
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_npus_are_distinct_keys() {
        let cache = TraceCache::new();
        let m = zoo::lenet();
        cache.get_or_simulate(&NpuConfig::edge(), &m);
        cache.get_or_simulate(&NpuConfig::server(), &m);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn same_name_different_config_is_a_miss() {
        let cache = TraceCache::new();
        let m = zoo::lenet();
        let edge = NpuConfig::edge();
        let mut tweaked = edge.clone();
        tweaked.sram_bytes *= 2;
        cache.get_or_simulate(&edge, &m);
        cache.get_or_simulate(&tweaked, &m);
        assert_eq!(cache.misses(), 2, "label reuse must not alias traces");
    }

    #[test]
    fn concurrent_lookups_simulate_once() {
        let cache = TraceCache::new();
        let cfg = NpuConfig::edge();
        let m = zoo::alexnet();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| cache.get_or_simulate(&cfg, &m));
            }
        });
        assert_eq!(cache.misses(), 1, "races must not duplicate simulation");
        assert_eq!(cache.hits(), 7);
    }
}
