//! Property-based tests for the accelerator simulator: tiling plans and
//! burst traces over arbitrary layer shapes.

use proptest::prelude::*;
use seda_models::{Layer, Model};
use seda_scalesim::{
    generate_bursts, plan_layer, simulate_model, LayerAddresses, NpuConfig, TensorKind,
    TrafficSummary,
};

fn arb_conv() -> impl Strategy<Value = Layer> {
    (
        2u32..96,
        2u32..96,
        1u32..6,
        1u32..6,
        1u32..64,
        1u32..128,
        1u32..3,
    )
        .prop_filter_map("filter must fit input", |(ih, iw, r, s, c, m, stride)| {
            if r <= ih && s <= iw {
                Some(Layer::conv("prop", ih, iw, r, s, c, m, stride))
            } else {
                None
            }
        })
}

fn arb_gemm() -> impl Strategy<Value = Layer> {
    (1u32..512, 1u32..4096, 1u32..2048).prop_map(|(m, k, n)| Layer::gemm("prop", m, k, n))
}

fn arb_layer() -> impl Strategy<Value = Layer> {
    prop_oneof![arb_conv(), arb_gemm()]
}

fn addrs() -> LayerAddresses {
    LayerAddresses {
        ifmap: 0,
        filter: 1 << 40,
        ofmap: 1 << 41,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plans_fetch_at_least_compulsory_traffic(layer in arb_layer()) {
        // Strided convolution legitimately skips rows between (and after)
        // the windows, so the ifmap lower bound is the touched subset: at
        // most `r` rows per output row, never more than the covered span.
        let touched_ifmap = {
            let g = seda_scalesim::LayerGeometry::of(&layer);
            (g.out_rows * g.r).min(g.in_rows_for(g.out_rows)) * g.in_row_bytes
        };
        for cfg in [NpuConfig::server(), NpuConfig::edge()] {
            let plan = plan_layer(&cfg, &layer);
            prop_assert!(plan.traffic.ifmap >= touched_ifmap, "{:?}", plan);
            prop_assert!(plan.traffic.filter >= layer.filter_bytes(), "{:?}", plan);
            prop_assert_eq!(plan.traffic.ofmap, layer.ofmap_bytes());
        }
    }

    #[test]
    fn traffic_amplification_is_bounded(layer in arb_layer()) {
        // No schedule may blow traffic up beyond strips x chunks of the
        // raw tensors — and the chosen plan should do far better.
        let cfg = NpuConfig::edge();
        let plan = plan_layer(&cfg, &layer);
        let bound = layer.total_bytes().saturating_mul(plan.strips.max(plan.chunks) + 1);
        prop_assert!(plan.traffic.total() <= bound,
            "traffic {} vs bound {} (plan {:?})", plan.traffic.total(), bound, plan);
    }

    #[test]
    fn bursts_agree_with_plan_estimate(layer in arb_layer()) {
        for cfg in [NpuConfig::server(), NpuConfig::edge()] {
            let plan = plan_layer(&cfg, &layer);
            let bursts = generate_bursts(&layer, 3, &plan, addrs());
            let s = TrafficSummary::of(&bursts);
            prop_assert_eq!(s.ifmap_read, plan.traffic.ifmap);
            prop_assert_eq!(s.filter_read, plan.traffic.filter);
            prop_assert_eq!(s.ofmap_write, plan.traffic.ofmap);
            prop_assert!(bursts.iter().all(|b| b.layer == 3));
        }
    }

    #[test]
    fn reads_stay_inside_their_tensors(layer in arb_layer()) {
        let cfg = NpuConfig::edge();
        let plan = plan_layer(&cfg, &layer);
        let a = addrs();
        for b in generate_bursts(&layer, 0, &plan, a) {
            match b.tensor {
                TensorKind::Ifmap => {
                    prop_assert!(b.addr >= a.ifmap);
                    prop_assert!(b.end() <= a.ifmap + layer.ifmap_bytes());
                }
                TensorKind::Filter => {
                    prop_assert!(b.addr >= a.filter);
                    prop_assert!(b.end() <= a.filter + layer.filter_bytes());
                }
                TensorKind::Ofmap => {
                    prop_assert!(b.addr >= a.ofmap);
                    prop_assert!(b.end() <= a.ofmap + layer.ofmap_bytes());
                }
            }
        }
    }

    #[test]
    fn ofmap_is_written_exactly_once(layer in arb_layer()) {
        let cfg = NpuConfig::edge();
        let plan = plan_layer(&cfg, &layer);
        let a = addrs();
        let bursts = generate_bursts(&layer, 0, &plan, a);
        let total: u64 = bursts
            .iter()
            .filter(|b| b.is_write)
            .map(|b| b.bytes)
            .sum();
        prop_assert_eq!(total, layer.ofmap_bytes());
        // Non-overlap: sort write intervals and check pairwise.
        let mut spans: Vec<(u64, u64)> = bursts
            .iter()
            .filter(|b| b.is_write)
            .map(|b| (b.addr, b.end()))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlapping writes: {:?}", w);
        }
    }

    #[test]
    fn compute_cycles_at_least_ideal(layer in arb_layer()) {
        for cfg in [NpuConfig::server(), NpuConfig::edge()] {
            let cycles = seda_scalesim::gemm_cycles(&cfg, layer.gemm_shape());
            let ideal = layer.macs() / (u64::from(cfg.rows) * u64::from(cfg.cols));
            prop_assert!(cycles >= ideal.max(1));
        }
    }

    #[test]
    fn model_sim_is_deterministic(seed_layers in prop::collection::vec(arb_layer(), 1..4)) {
        let layers: Vec<Layer> = seed_layers
            .into_iter()
            .enumerate()
            .map(|(i, mut l)| {
                l.name = format!("l{i}");
                l
            })
            .collect();
        let model = Model::new("prop", layers);
        let cfg = NpuConfig::edge();
        let a = simulate_model(&cfg, &model);
        let b = simulate_model(&cfg, &model);
        prop_assert_eq!(a.total_compute_cycles(), b.total_compute_cycles());
        prop_assert_eq!(a.total_demand_bytes(), b.total_demand_bytes());
    }
}
