//! Point-in-time metric snapshots and their stable JSON rendering.

use crate::histogram::HistogramSnapshot;

/// Version tag embedded in every snapshot's JSON rendering. Consumers
/// (CI archival, plotting scripts) key on this to detect schema drift.
pub const SCHEMA: &str = "seda-telemetry/v1";

/// A sorted, immutable copy of every metric a [`crate::SharedSink`] has
/// seen.
///
/// # Examples
///
/// ```
/// use seda_telemetry::SharedSink;
/// use seda_telemetry::Sink;
///
/// let sink = SharedSink::new();
/// sink.add("crypto.aes.block_evals", 16);
/// let snap = sink.snapshot();
/// let json = snap.to_json();
/// assert!(json.contains("\"schema\": \"seda-telemetry/v1\""));
/// assert!(json.contains("\"crypto.aes.block_evals\": 16"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `(name, value)` counter pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` histogram pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// The value of counter `name`, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The summary of histogram `name`, if it ever recorded a sample.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// Renders the snapshot as pretty-printed JSON under the stable
    /// `seda-telemetry/v1` schema:
    ///
    /// ```json
    /// {
    ///   "schema": "seda-telemetry/v1",
    ///   "counters": { "<name>": <u64>, ... },
    ///   "histograms": {
    ///     "<name>": {
    ///       "count": <u64>, "sum": <u64>, "min": <u64>, "max": <u64>,
    ///       "log2_buckets": [[<bucket>, <count>], ...]
    ///     }, ...
    ///   }
    /// }
    /// ```
    ///
    /// All values are integers (histogram means are left to consumers),
    /// names are sorted, and the two top-level maps are always present —
    /// byte-stable output for identical metric states.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_string(SCHEMA)));
        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    {}: {value}", json_string(name)));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let buckets: Vec<String> = h
                .log2_buckets
                .iter()
                .map(|(b, n)| format!("[{b}, {n}]"))
                .collect();
            out.push_str(&format!(
                "    {}: {{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"log2_buckets\": [{}] }}",
                json_string(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                buckets.join(", ")
            ));
        }
        out.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push_str("}\n");
        out
    }
}

/// Quotes and escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{SharedSink, Sink};

    #[test]
    fn empty_snapshot_renders_stable_skeleton() {
        let json = Snapshot::default().to_json();
        assert_eq!(
            json,
            "{\n  \"schema\": \"seda-telemetry/v1\",\n  \"counters\": {},\n  \
             \"histograms\": {}\n}\n"
        );
    }

    #[test]
    fn json_is_byte_stable_for_identical_states() {
        let make = || {
            let s = SharedSink::new();
            s.add("b.two", 2);
            s.add("a.one", 1);
            s.record("h.lat", 100);
            s.record("h.lat", 200);
            s.snapshot().to_json()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn rendered_json_contains_sorted_names_and_values() {
        let s = SharedSink::new();
        s.add("z.last", 9);
        s.add("a.first", 3);
        s.record("lat", 5);
        let json = s.snapshot().to_json();
        let a = json.find("a.first").expect("a.first present");
        let z = json.find("z.last").expect("z.last present");
        assert!(a < z, "names must be sorted");
        assert!(json.contains("\"a.first\": 3"));
        assert!(json.contains("\"count\": 1, \"sum\": 5, \"min\": 5, \"max\": 5"));
        assert!(json.contains("\"log2_buckets\": [[3, 1]]"));
    }

    #[test]
    fn accessors_hit_and_miss() {
        let s = SharedSink::new();
        s.add("one", 1);
        s.record("h", 0);
        let snap = s.snapshot();
        assert_eq!(snap.counter("one"), Some(1));
        assert_eq!(snap.counter("two"), None);
        assert_eq!(snap.histogram("h").map(|h| h.count), Some(1));
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
