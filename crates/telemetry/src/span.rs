//! RAII span timers.

use std::time::Instant;

/// Times a scope and records its wall-clock duration, in nanoseconds,
/// into the histogram `name` when dropped.
///
/// When telemetry is disabled at construction time the span never reads
/// the clock, so an un-instrumented run pays only the enabled check —
/// the same cost as any other disabled event.
///
/// # Examples
///
/// ```
/// use seda_telemetry::Span;
///
/// {
///     let _span = Span::start("sweep.point_ns");
///     // ... timed work ...
/// } // recorded here (if a sink is installed and telemetry is enabled)
/// ```
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Starts timing a scope that will be recorded under `name`.
    pub fn start(name: &'static str) -> Self {
        Self {
            name,
            start: crate::enabled().then(Instant::now),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::record(self.name, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_never_reads_the_clock() {
        // The global sink is not installed in this test binary, so the
        // span must be inert.
        let span = Span::start("test.span_ns");
        assert!(span.start.is_none());
    }
}
