//! Zero-dependency structured metrics for the SeDA workspace.
//!
//! The crate follows the `log`-crate model: instrumented code emits
//! events through free functions ([`counter_add`], [`record`],
//! [`Span::start`]) that dispatch to a process-global [`Sink`] installed
//! once by the binary. When no sink is installed — the default for every
//! test binary and for benchmarks that measure the un-instrumented
//! path — each event costs exactly one relaxed atomic load.
//!
//! # Quick start
//!
//! ```
//! // In the binary, once, at startup:
//! let sink = seda_telemetry::install_shared().expect("first install");
//!
//! // Anywhere in instrumented library code:
//! seda_telemetry::counter_add("crypto.aes.block_evals", 1);
//! seda_telemetry::record("dram.bank_occupancy_cycles", 17);
//! {
//!     let _span = seda_telemetry::Span::start("sweep.point_ns");
//!     // ... timed work ...
//! }
//!
//! // At shutdown, snapshot and export:
//! let snap = sink.snapshot();
//! assert_eq!(snap.counter("crypto.aes.block_evals"), Some(1));
//! println!("{}", snap.to_json()); // stable "seda-telemetry/v1" JSON
//! ```
//!
//! # Threading
//!
//! All dispatch is thread-safe. [`SharedSink`] aggregates counters and
//! histograms behind atomics with a read-locked registry, so parallel
//! sweep workers never serialize against each other after a metric's
//! first touch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod sink;
mod snapshot;
mod span;

pub use histogram::{AtomicHistogram, HistogramSnapshot, BUCKETS};
pub use sink::{NoopSink, SharedSink, Sink};
pub use snapshot::{Snapshot, SCHEMA};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Fast on/off gate checked before any sink dispatch. Kept separate from
/// the sink slot so a binary can install a sink once and still toggle
/// collection on and off (e.g. to exclude warmup iterations).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-global sink, set at most once for the process lifetime.
static SINK: OnceLock<&'static dyn Sink> = OnceLock::new();

/// Error returned when a global sink is already installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstallError;

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("a global telemetry sink is already installed")
    }
}

impl std::error::Error for InstallError {}

/// Installs `sink` as the process-global event receiver and enables
/// collection.
///
/// The sink slot is write-once: a second install fails with
/// [`InstallError`] and leaves the first sink in place. The `'static`
/// bound matches the process-lifetime slot; leak a boxed sink
/// (`Box::leak`) or use [`install_shared`] for the common case.
pub fn install(sink: &'static dyn Sink) -> Result<(), InstallError> {
    SINK.set(sink).map_err(|_| InstallError)?;
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Installs a fresh [`SharedSink`] as the global sink, enables
/// collection, and returns the sink for later [`SharedSink::snapshot`]
/// calls.
pub fn install_shared() -> Result<&'static SharedSink, InstallError> {
    let sink: &'static SharedSink = Box::leak(Box::new(SharedSink::new()));
    install(sink)?;
    Ok(sink)
}

/// Whether events currently reach the installed sink.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Toggles collection without touching the installed sink. Enabling
/// before any sink is installed is harmless: dispatch still no-ops on
/// the empty sink slot.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Adds `delta` to the monotonic counter `name`.
///
/// With telemetry disabled this is one relaxed atomic load.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        if let Some(sink) = SINK.get() {
            sink.add(name, delta);
        }
    }
}

/// Records one `value` sample into the histogram `name`.
///
/// With telemetry disabled this is one relaxed atomic load.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if enabled() {
        if let Some(sink) = SINK.get() {
            sink.record(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global sink is process-wide, so all tests touching it live in
    // this one #[test] to avoid cross-test interference.
    #[test]
    fn global_dispatch_lifecycle() {
        // Before install: disabled, dispatch is inert.
        assert!(!enabled());
        counter_add("g.pre_install", 1);
        record("g.pre_install", 1);

        // Enabling without a sink must also be inert (doesn't panic).
        set_enabled(true);
        counter_add("g.no_sink", 1);
        set_enabled(false);

        let sink = install_shared().expect("first install succeeds");
        assert!(enabled());

        counter_add("g.counter", 2);
        counter_add("g.counter", 3);
        record("g.histogram", 9);
        let _ = Span::start("g.span_ns");

        // Disabled events are dropped even with a sink installed.
        set_enabled(false);
        counter_add("g.counter", 100);
        set_enabled(true);

        let snap = sink.snapshot();
        assert_eq!(snap.counter("g.counter"), Some(5));
        assert_eq!(snap.counter("g.pre_install"), None);
        assert_eq!(snap.counter("g.no_sink"), None);
        assert_eq!(snap.histogram("g.histogram").map(|h| h.sum), Some(9));
        assert_eq!(snap.histogram("g.span_ns").map(|h| h.count), Some(1));

        // Second install fails and leaves the first sink active.
        assert_eq!(install(&NoopSink), Err(InstallError));
        assert!(install_shared().is_err());
        counter_add("g.counter", 1);
        assert_eq!(sink.snapshot().counter("g.counter"), Some(6));

        let msg = InstallError.to_string();
        assert!(msg.contains("already installed"));
    }
}
