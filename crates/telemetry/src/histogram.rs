//! Lock-free log2-bucketed histogram.
//!
//! Values land in bucket `bit_length(v)` — bucket 0 holds zeros, bucket
//! `i > 0` holds `[2^(i-1), 2^i)` — so one `u64` range needs 65 buckets.
//! All state is `AtomicU64`, making concurrent recording from sweep worker
//! threads wait-free; snapshots are taken with relaxed loads and are
//! therefore approximate only while writers are active.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets covering the full `u64` range (zeros + 64 bit
/// lengths).
pub const BUCKETS: usize = 65;

/// A concurrently-updatable histogram of `u64` samples.
#[derive(Debug)]
pub struct AtomicHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            log2_buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u8, n))
                })
                .collect(),
        }
    }
}

/// Immutable summary of an [`AtomicHistogram`] at snapshot time.
///
/// `log2_buckets` lists only non-empty buckets as `(bucket, count)`
/// pairs, where bucket 0 holds zero-valued samples and bucket `i > 0`
/// holds samples in `[2^(i-1), 2^i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample, or 0 when empty.
    pub min: u64,
    /// Largest sample, or 0 when empty.
    pub max: u64,
    /// Non-empty `(bucket, count)` pairs in bucket order.
    pub log2_buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The upper edge of the log2 bucket containing the `q`-quantile
    /// sample (`0.0 < q <= 1.0`), or 0 for an empty histogram.
    ///
    /// This is the log2-histogram percentile estimator the serving
    /// simulator's SLA reports use: the true `q`-quantile sample lies in
    /// the returned bucket, so the estimate upper-bounds it by at most
    /// 2x (the bucket width). Bucket 0 reports 0; bucket `i > 0` reports
    /// `2^i - 1`, the largest value that lands in it.
    ///
    /// # Examples
    ///
    /// ```
    /// use seda_telemetry::AtomicHistogram;
    ///
    /// let h = AtomicHistogram::new();
    /// for v in 1..=1000u64 {
    ///     h.record(v);
    /// }
    /// let s = h.snapshot();
    /// // The median of 1..=1000 is ~500, inside [256, 512).
    /// assert_eq!(s.quantile(0.5), 511);
    /// assert_eq!(s.quantile(1.0), 1023);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `q` is not in `(0.0, 1.0]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
        if self.count == 0 {
            return 0;
        }
        // Rank of the q-quantile sample, 1-based: ceil(q * count).
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(bucket, n) in &self.log2_buckets {
            seen += n;
            if seen >= rank {
                return if bucket == 0 {
                    0
                } else if bucket >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bucket) - 1
                };
            }
        }
        // Invariant: bucket counts sum to `count`, so the loop returns.
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = AtomicHistogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert!(s.log2_buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn buckets_follow_bit_length() {
        let h = AtomicHistogram::new();
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        // 0 → bucket 0; 1 → 1; 2,3 → 2; 4 → 3; 1024 → 11; MAX → 64.
        assert_eq!(
            s.log2_buckets,
            vec![(0, 1), (1, 1), (2, 2), (3, 1), (11, 1), (64, 1)]
        );
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = AtomicHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // p50 sample is 50, inside [32, 64) → reported as 63.
        assert_eq!(s.quantile(0.5), 63);
        // p99 sample is 99, inside [64, 128) → reported as 127.
        assert_eq!(s.quantile(0.99), 127);
        assert_eq!(s.quantile(1.0), 127);
        // A tiny quantile lands in the first non-empty bucket.
        assert_eq!(s.quantile(0.01), 1);
    }

    #[test]
    fn quantile_handles_zeros_and_extremes() {
        let empty = AtomicHistogram::new().snapshot();
        assert_eq!(empty.quantile(0.99), 0);
        let h = AtomicHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = AtomicHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.sum, 4 * (999 * 1000 / 2));
    }
}
