//! Metric sinks: where instrumented code sends its events.

use crate::histogram::AtomicHistogram;
use crate::snapshot::Snapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Receiver for telemetry events.
///
/// Instrumented code emits events through the process-global dispatch
/// functions ([`crate::counter_add`], [`crate::record`]); the installed
/// sink decides what to do with them. Implementations must be cheap and
/// thread-safe: sweep worker threads emit concurrently, and a sink must
/// never block them for long (see [`SharedSink`] for the aggregation
/// contract, [`NoopSink`] for the discard contract).
///
/// Metric names are `&'static str` by design: the instrumentation sites
/// are compiled in, so names need no allocation, and sinks may use the
/// pointer-stable names as map keys.
pub trait Sink: Send + Sync {
    /// Adds `delta` to the monotonic counter `name`.
    fn add(&self, name: &'static str, delta: u64);

    /// Records one `value` sample into the histogram `name`.
    fn record(&self, name: &'static str, value: u64);
}

/// A sink that discards every event.
///
/// This is what "telemetry off" dispatches to if a caller installs it
/// explicitly; the global dispatch short-circuits before the sink when
/// telemetry is disabled, so the cost of an event is one relaxed atomic
/// load either way.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn add(&self, _name: &'static str, _delta: u64) {}
    fn record(&self, _name: &'static str, _value: u64) {}
}

/// An aggregating sink safe for parallel sweeps.
///
/// Counters and histograms live behind `RwLock<HashMap>` registries, but
/// the lock is only write-acquired the first time a name appears; the
/// steady-state path takes a shared read lock and updates an `AtomicU64`
/// (or an atomic histogram bucket), so concurrent workers on distinct or
/// identical metrics never serialize against each other after warmup —
/// "lock-free enough" for sweep worker threads.
///
/// # Examples
///
/// ```
/// use seda_telemetry::{SharedSink, Sink};
///
/// let sink = SharedSink::new();
/// sink.add("dram.reads", 2);
/// sink.add("dram.reads", 3);
/// sink.record("sweep.point_ns", 1500);
/// let snap = sink.snapshot();
/// assert_eq!(snap.counter("dram.reads"), Some(5));
/// assert_eq!(snap.histogram("sweep.point_ns").unwrap().count, 1);
/// ```
#[derive(Debug, Default)]
pub struct SharedSink {
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<&'static str, Arc<AtomicHistogram>>>,
}

/// Looks up `name` in a registry, inserting a default entry on first use.
/// Read-locks on the hot path; write-locks only to insert.
fn intern<T: Default>(map: &RwLock<HashMap<&'static str, Arc<T>>>, name: &'static str) -> Arc<T> {
    // Invariant: the registry locks are only held for map operations,
    // which do not panic, so they cannot be poisoned.
    #[allow(clippy::expect_used)]
    if let Some(v) = map.read().expect("telemetry registry poisoned").get(name) {
        return Arc::clone(v);
    }
    #[allow(clippy::expect_used)]
    let mut w = map.write().expect("telemetry registry poisoned");
    Arc::clone(w.entry(name).or_default())
}

impl SharedSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A point-in-time [`Snapshot`] of every metric, sorted by name.
    ///
    /// Taken with relaxed loads: while writers are active the snapshot is
    /// a consistent-enough approximation; after the instrumented work
    /// completes it is exact.
    pub fn snapshot(&self) -> Snapshot {
        // Invariant: see `intern` — registry locks cannot be poisoned.
        #[allow(clippy::expect_used)]
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|(name, v)| ((*name).to_owned(), v.load(Ordering::Relaxed)))
            .collect();
        counters.sort();
        #[allow(clippy::expect_used)]
        let mut histograms: Vec<_> = self
            .histograms
            .read()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|(name, h)| ((*name).to_owned(), h.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            counters,
            histograms,
        }
    }
}

impl Sink for SharedSink {
    fn add(&self, name: &'static str, delta: u64) {
        intern(&self.counters, name).fetch_add(delta, Ordering::Relaxed);
    }

    fn record(&self, name: &'static str, value: u64) {
        intern(&self.histograms, name).record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let sink = SharedSink::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        sink.add("t.counter", 1);
                        sink.record("t.histogram", 7);
                    }
                });
            }
        });
        let snap = sink.snapshot();
        assert_eq!(snap.counter("t.counter"), Some(4000));
        let h = snap.histogram("t.histogram").expect("recorded");
        assert_eq!((h.count, h.sum, h.min, h.max), (4000, 28000, 7, 7));
    }

    #[test]
    fn unknown_names_are_absent_from_snapshots() {
        let sink = SharedSink::new();
        sink.add("present", 1);
        let snap = sink.snapshot();
        assert_eq!(snap.counter("present"), Some(1));
        assert_eq!(snap.counter("absent"), None);
        assert!(snap.histogram("absent").is_none());
    }

    #[test]
    fn snapshots_are_sorted_by_name() {
        let sink = SharedSink::new();
        for name in ["zz", "aa", "mm"] {
            // Names must be 'static: use leaked literals via match.
            match name {
                "zz" => sink.add("zz", 1),
                "aa" => sink.add("aa", 1),
                _ => sink.add("mm", 1),
            }
        }
        let snap = sink.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["aa", "mm", "zz"]);
    }

    #[test]
    fn noop_sink_discards_everything() {
        let sink = NoopSink;
        sink.add("anything", 42);
        sink.record("anything", 42);
    }
}
