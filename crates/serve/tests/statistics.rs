//! Statistical property tests for the serving simulator's stochastic
//! machinery: the seeded Poisson process must actually be Poisson, the
//! closed loop must actually be closed, and seeds must pin everything.

use seda_serve::spec::STREAM_ARRIVALS;
use seda_serve::{simulate, Arrival, ArrivalSim, Rng, Scheduler, SimOutcome, SimSpec, TenantSim};

fn tenant(name: &str, layers: Vec<u64>, weight: u64) -> TenantSim {
    TenantSim {
        name: name.to_owned(),
        profiles: vec![layers],
        sla_cycles: None,
        weight,
    }
}

/// Exponential interarrival draws over 100k samples must match the
/// distribution's moments within Chernoff-style concentration bounds.
///
/// For n iid Exp(1/m) draws, the sample mean concentrates around m with
/// standard error m/sqrt(n) ≈ 0.32% of m at n = 100_000; a 2% band is
/// ~6 standard errors, so a seeded failure means the generator is
/// wrong, not unlucky. The sample variance concentrates around m² with
/// standard error sqrt(8/n)·m² ≈ 0.9%; we allow 6%.
#[test]
fn poisson_interarrivals_match_exponential_moments() {
    const N: usize = 100_000;
    let mean = 40.0;
    let mut rng = Rng::for_stream(0xD15EA5E, STREAM_ARRIVALS);
    let draws: Vec<f64> = (0..N).map(|_| rng.exp(mean)).collect();
    let sample_mean = draws.iter().sum::<f64>() / N as f64;
    let sample_var = draws.iter().map(|d| (d - sample_mean).powi(2)).sum::<f64>() / (N - 1) as f64;
    assert!(
        (sample_mean - mean).abs() / mean < 0.02,
        "sample mean {sample_mean} strays from {mean}"
    );
    assert!(
        (sample_var - mean * mean).abs() / (mean * mean) < 0.06,
        "sample variance {sample_var} strays from {}",
        mean * mean
    );
    // Memorylessness fingerprint: P(X > m) = 1/e for an exponential.
    let over_mean = draws.iter().filter(|d| **d > mean).count() as f64 / N as f64;
    assert!(
        (over_mean - (-1.0f64).exp()).abs() < 0.01,
        "tail mass {over_mean} strays from 1/e"
    );
}

/// Counting the open-loop trace in fixed windows must show Poisson
/// statistics: the dispersion index (variance of window counts over
/// their mean) is 1 for a Poisson process.
#[test]
fn open_loop_window_counts_are_poisson_dispersed() {
    let spec = SimSpec {
        seed: 0xACC01ADE,
        scheduler: Scheduler::Fcfs,
        replicas: 1,
        max_batch: 1,
        tenants: vec![tenant("a", vec![1], 1)],
        arrival: ArrivalSim::OpenLoop {
            mean_cycles: 25.0,
            requests: 100_000,
            burst: None,
            diurnal: None,
        },
        swaps: vec![],
    };
    let trace = seda_serve::open_loop_trace(&spec);
    let window = 1000u64; // expect ~40 arrivals per window
    let horizon = trace.last().expect("nonempty").cycle;
    let mut counts = vec![0u64; (horizon / window + 1) as usize];
    for a in &trace {
        counts[(a.cycle / window) as usize] += 1;
    }
    counts.pop(); // the last window is truncated
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    let var = counts
        .iter()
        .map(|c| (*c as f64 - mean).powi(2))
        .sum::<f64>()
        / (n - 1.0);
    let dispersion = var / mean;
    assert!(
        (0.9..1.1).contains(&dispersion),
        "dispersion index {dispersion} is not Poisson-like (mean {mean}, var {var})"
    );
}

/// In a closed loop, a client cannot have two requests in flight: the
/// number of requests with `arrival <= t < completion` can never exceed
/// the client population, at any instant.
#[test]
fn closed_loop_in_flight_never_exceeds_the_client_population() {
    let clients = 7u32;
    let spec = SimSpec {
        seed: 0xC105ED,
        scheduler: Scheduler::Edf { preempt: true },
        replicas: 3,
        max_batch: 2,
        tenants: vec![tenant("a", vec![30, 20], 2), tenant("b", vec![55], 1)],
        arrival: ArrivalSim::ClosedLoop {
            clients,
            think_cycles: 12.0,
            requests: 5_000,
        },
        swaps: vec![],
    };
    let out = simulate(&spec);
    assert_eq!(out.completions.len(), 5_000);
    // Sweep the interval endpoints: +1 at each arrival, -1 at each
    // completion; completions at t free the slot before arrivals after t
    // (think times are clamped >= 1, so reuse is never same-instant).
    let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(out.completions.len() * 2);
    for c in &out.completions {
        deltas.push((c.arrival, 1));
        deltas.push((c.completion, -1));
    }
    deltas.sort_by_key(|&(t, delta)| (t, delta));
    let mut in_flight = 0i64;
    for (t, delta) in deltas {
        in_flight += delta;
        assert!(
            in_flight <= i64::from(clients),
            "{in_flight} requests in flight at cycle {t} with only {clients} clients"
        );
    }
    assert_eq!(in_flight, 0, "every request must close its interval");
}

fn demanding_spec(seed: u64) -> SimSpec {
    SimSpec {
        seed,
        scheduler: Scheduler::Edf { preempt: true },
        replicas: 2,
        max_batch: 3,
        tenants: vec![
            tenant("a", vec![18, 9], 3),
            tenant("b", vec![40], 1),
            tenant("c", vec![7, 7, 7], 2),
        ],
        arrival: ArrivalSim::OpenLoop {
            mean_cycles: 11.0,
            requests: 20_000,
            burst: None,
            diurnal: None,
        },
        swaps: vec![],
    }
}

/// Identical seeds must give identical event sequences no matter how
/// many threads run simulations concurrently, and across re-runs.
#[test]
fn identical_seeds_are_identical_across_threads_and_reruns() {
    let spec = demanding_spec(0x5EED);
    let baseline = simulate(&spec);
    let rerun = simulate(&spec);
    assert_eq!(baseline, rerun, "sequential re-run diverged");
    let racing: Vec<SimOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8).map(|_| scope.spawn(|| simulate(&spec))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    for out in racing {
        assert_eq!(out, baseline, "a racing simulation diverged");
    }
}

/// Different seeds must actually change the arrival process — a seed
/// that does nothing would make every determinism test vacuous.
#[test]
fn different_seeds_diverge() {
    let a = simulate(&demanding_spec(1));
    let b = simulate(&demanding_spec(2));
    assert_ne!(a, b, "seeds 1 and 2 produced identical outcomes");
    let ta: Vec<Arrival> = seda_serve::open_loop_trace(&demanding_spec(1));
    let tb: Vec<Arrival> = seda_serve::open_loop_trace(&demanding_spec(2));
    assert_ne!(ta, tb, "seeds 1 and 2 produced identical traces");
}
