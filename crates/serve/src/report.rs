//! Serving results: per-tenant SLA metrics, the stable `seda-serve/v1`
//! snapshot, and the expectation checks `seda_cli serve` enforces.
//!
//! The snapshot is hand-rolled JSON with a fixed key order and
//! six-decimal floats, so a golden fixture pins it byte-for-byte — the
//! same contract the telemetry and scenario snapshots follow.

use crate::spec::{ServeSetup, SimOutcome};
use seda::scenario::ServeExpectation;
use seda_telemetry::HistogramSnapshot;
use std::fmt;
use std::fmt::Write as _;

/// Version tag embedded in every serving snapshot.
pub const SCHEMA: &str = "seda-serve/v1";

/// One tenant's serving metrics.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Sealing-key fingerprint (not the key).
    pub key_id: u64,
    /// Requests completed for this tenant.
    pub completed: u64,
    /// Latency histogram in cycles (arrival → completion).
    pub latency: HistogramSnapshot,
    /// Queue-depth histogram sampled at active cycles.
    pub queue_depth: HistogramSnapshot,
    /// Mean latency in simulated milliseconds.
    pub mean_ms: f64,
    /// p50 latency ceiling estimate in simulated milliseconds.
    pub p50_ms: f64,
    /// p95 latency ceiling estimate in simulated milliseconds.
    pub p95_ms: f64,
    /// p99 latency ceiling estimate in simulated milliseconds.
    pub p99_ms: f64,
    /// The tenant's SLA, if declared.
    pub sla_ms: Option<f64>,
    /// Completions that finished past their deadline.
    pub sla_violations: u64,
}

/// One scheduled hot model-swap, as the report tells it.
#[derive(Debug, Clone)]
pub struct SwapReport {
    /// The swapped tenant's name.
    pub tenant: String,
    /// The replacement image's fresh key fingerprint.
    pub key_id: u64,
    /// Protection blocks the provisioning stream carried.
    pub blocks: u64,
    /// When the swap was requested, in simulated milliseconds.
    pub requested_ms: f64,
    /// When the cutover landed, in simulated milliseconds (equals
    /// `requested_ms` when the tenant was already drained).
    pub cutover_ms: f64,
    /// Whether the cutover landed before the run drained. An unapplied
    /// swap reports `cutover_ms` of 0.
    pub applied: bool,
}

/// One replica's utilization.
#[derive(Debug, Clone, Copy)]
pub struct NpuReport {
    /// Cycles spent executing layers.
    pub busy_cycles: u64,
    /// Busy fraction of the simulated span.
    pub utilization: f64,
}

/// A completed serving run, summarized.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Scenario name.
    pub scenario: String,
    /// NPU configuration name.
    pub npu: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Master seed.
    pub seed: u64,
    /// Replica count.
    pub replicas: u32,
    /// Batch limit.
    pub max_batch: u32,
    /// Requests the arrival process issued.
    pub requests: u64,
    /// Requests completed (equals `requests` for a drained run).
    pub completed: u64,
    /// Events processed by the kernel.
    pub events: u64,
    /// Cycle of the last completion.
    pub end_cycle: u64,
    /// Simulated span in milliseconds.
    pub span_ms: f64,
    /// Per-replica utilization.
    pub npus: Vec<NpuReport>,
    /// Per-tenant metrics, in lineup order.
    pub tenants: Vec<TenantReport>,
    /// Hot model-swaps in declaration order; empty when the scenario
    /// schedules none (and then absent from the snapshot, keeping
    /// swap-free goldens byte-identical).
    pub swaps: Vec<SwapReport>,
}

/// One violated serving expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeFailure {
    /// Tenant name from the `expect` entry.
    pub tenant: String,
    /// Which ceiling was violated (`p50_ms_max`/`p95_ms_max`/`p99_ms_max`).
    pub metric: &'static str,
    /// The declared ceiling in milliseconds.
    pub limit: f64,
    /// The measured value in milliseconds.
    pub actual: f64,
}

impl fmt::Display for ServeFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serving expectation failed: tenant {} has {} {:.4} ms, over the {:.4} ms ceiling",
            self.tenant, self.metric, self.actual, self.limit
        )
    }
}

impl ServeReport {
    /// Summarizes a kernel outcome under its setup.
    pub fn new(setup: &ServeSetup, outcome: &SimOutcome) -> Self {
        let to_ms = |cycles: u64| setup.cycles_to_ms(cycles);
        let swaps: Vec<SwapReport> = setup
            .spec
            .swaps
            .iter()
            .zip(&setup.swaps)
            .map(|(sim, seal)| {
                let landed = outcome
                    .swaps
                    .iter()
                    .find(|o| o.tenant == sim.tenant && o.requested == sim.at_cycle);
                SwapReport {
                    tenant: setup.spec.tenants[sim.tenant].name.clone(),
                    key_id: seal.key_id,
                    blocks: seal.blocks,
                    requested_ms: to_ms(sim.at_cycle),
                    cutover_ms: landed.map_or(0.0, |o| to_ms(o.cutover)),
                    applied: landed.is_some(),
                }
            })
            .collect();
        // A tenant whose swap landed reports the *replacement* key id:
        // the old key/VN space is retired at cutover.
        let live_key_id = |tenant: usize| {
            setup
                .spec
                .swaps
                .iter()
                .zip(&setup.swaps)
                .filter(|(sim, _)| {
                    sim.tenant == tenant
                        && outcome
                            .swaps
                            .iter()
                            .any(|o| o.tenant == tenant && o.requested == sim.at_cycle)
                })
                .map(|(_, seal)| seal.key_id)
                .next_back()
                .unwrap_or_else(|| setup.seals.get(tenant).map_or(0, |s| s.key_id))
        };
        let tenants = setup
            .spec
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let latency = outcome.tenant_latency[i].clone();
                let quant_ms = |q: f64| {
                    if latency.count == 0 {
                        0.0
                    } else {
                        to_ms(latency.quantile(q))
                    }
                };
                let sla_violations = match t.sla_cycles {
                    Some(sla) => outcome
                        .completions
                        .iter()
                        .filter(|c| c.tenant == i && c.completion > c.arrival.saturating_add(sla))
                        .count() as u64,
                    None => 0,
                };
                TenantReport {
                    name: t.name.clone(),
                    key_id: live_key_id(i),
                    completed: latency.count,
                    mean_ms: latency.mean() * 1000.0 / setup.clock_hz,
                    p50_ms: quant_ms(0.50),
                    p95_ms: quant_ms(0.95),
                    p99_ms: quant_ms(0.99),
                    sla_ms: t.sla_cycles.map(&to_ms),
                    sla_violations,
                    latency,
                    queue_depth: outcome.tenant_queue_depth[i].clone(),
                }
            })
            .collect();
        let npus = outcome
            .busy_cycles
            .iter()
            .map(|&busy| NpuReport {
                busy_cycles: busy,
                utilization: if outcome.end_cycle == 0 {
                    0.0
                } else {
                    busy as f64 / outcome.end_cycle as f64
                },
            })
            .collect();
        Self {
            scenario: setup.scenario.clone(),
            npu: setup.npu.clone(),
            scheduler: setup.spec.scheduler.name().to_owned(),
            seed: setup.spec.seed,
            replicas: setup.spec.replicas,
            max_batch: setup.spec.max_batch,
            requests: setup.spec.arrival.requests(),
            completed: outcome.completions.len() as u64,
            events: outcome.events,
            end_cycle: outcome.end_cycle,
            span_ms: to_ms(outcome.end_cycle),
            npus,
            tenants,
            swaps,
        }
    }

    /// Checks per-tenant latency ceilings, returning every violation.
    pub fn check_expectations(&self, expect: &[ServeExpectation]) -> Vec<ServeFailure> {
        let mut out = Vec::new();
        for e in expect {
            let Some(t) = self
                .tenants
                .iter()
                .find(|t| t.name.eq_ignore_ascii_case(&e.tenant))
            else {
                continue;
            };
            let checks = [
                ("p50_ms_max", e.p50_ms_max, t.p50_ms),
                ("p95_ms_max", e.p95_ms_max, t.p95_ms),
                ("p99_ms_max", e.p99_ms_max, t.p99_ms),
            ];
            for (metric, bound, actual) in checks {
                if let Some(limit) = bound {
                    if actual > limit {
                        out.push(ServeFailure {
                            tenant: t.name.clone(),
                            metric,
                            limit,
                            actual,
                        });
                    }
                }
            }
        }
        out
    }

    /// The run's headline numbers as stable JSON (schema `seda-serve/v1`):
    /// fixed key order, integers and six-decimal floats only, so golden
    /// fixtures pin it byte-for-byte at any thread count.
    pub fn snapshot_json(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(o, "{{");
        let _ = writeln!(o, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(o, "  \"scenario\": \"{}\",", escape(&self.scenario));
        let _ = writeln!(o, "  \"npu\": \"{}\",", escape(&self.npu));
        let _ = writeln!(o, "  \"scheduler\": \"{}\",", escape(&self.scheduler));
        let _ = writeln!(o, "  \"seed\": {},", self.seed);
        let _ = writeln!(o, "  \"replicas\": {},", self.replicas);
        let _ = writeln!(o, "  \"max_batch\": {},", self.max_batch);
        let _ = writeln!(o, "  \"requests\": {},", self.requests);
        let _ = writeln!(o, "  \"completed\": {},", self.completed);
        let _ = writeln!(o, "  \"events\": {},", self.events);
        let _ = writeln!(o, "  \"end_cycle\": {},", self.end_cycle);
        let _ = writeln!(o, "  \"span_ms\": {:.6},", self.span_ms);
        let _ = writeln!(o, "  \"npus\": [");
        for (i, n) in self.npus.iter().enumerate() {
            let comma = if i + 1 < self.npus.len() { "," } else { "" };
            let _ = writeln!(
                o,
                "    {{\"busy_cycles\": {}, \"utilization\": {:.6}}}{comma}",
                n.busy_cycles, n.utilization
            );
        }
        let _ = writeln!(o, "  ],");
        let _ = writeln!(o, "  \"tenants\": [");
        for (i, t) in self.tenants.iter().enumerate() {
            let comma = if i + 1 < self.tenants.len() { "," } else { "" };
            let _ = writeln!(o, "    {{");
            let _ = writeln!(o, "      \"name\": \"{}\",", escape(&t.name));
            let _ = writeln!(o, "      \"key_id\": \"{:016x}\",", t.key_id);
            let _ = writeln!(o, "      \"completed\": {},", t.completed);
            let _ = writeln!(
                o,
                "      \"latency_cycles\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}},",
                t.latency.count, t.latency.sum, t.latency.min, t.latency.max
            );
            let _ = writeln!(
                o,
                "      \"latency_ms\": {{\"mean\": {:.6}, \"p50\": {:.6}, \"p95\": {:.6}, \"p99\": {:.6}}},",
                t.mean_ms, t.p50_ms, t.p95_ms, t.p99_ms
            );
            let _ = writeln!(
                o,
                "      \"queue_depth\": {{\"max\": {}, \"samples\": {}}},",
                t.queue_depth.max, t.queue_depth.count
            );
            match t.sla_ms {
                Some(sla) => {
                    let _ = writeln!(o, "      \"sla_ms\": {sla:.6},");
                }
                None => {
                    let _ = writeln!(o, "      \"sla_ms\": null,");
                }
            }
            let _ = writeln!(o, "      \"sla_violations\": {}", t.sla_violations);
            let _ = writeln!(o, "    }}{comma}");
        }
        if self.swaps.is_empty() {
            let _ = writeln!(o, "  ]");
        } else {
            // The swaps section appears only when the scenario schedules
            // swaps, so swap-free goldens stay byte-identical.
            let _ = writeln!(o, "  ],");
            let _ = writeln!(o, "  \"swaps\": [");
            for (i, s) in self.swaps.iter().enumerate() {
                let comma = if i + 1 < self.swaps.len() { "," } else { "" };
                let _ = writeln!(o, "    {{");
                let _ = writeln!(o, "      \"tenant\": \"{}\",", escape(&s.tenant));
                let _ = writeln!(o, "      \"key_id\": \"{:016x}\",", s.key_id);
                let _ = writeln!(o, "      \"blocks\": {},", s.blocks);
                let _ = writeln!(o, "      \"requested_ms\": {:.6},", s.requested_ms);
                let _ = writeln!(o, "      \"cutover_ms\": {:.6},", s.cutover_ms);
                let _ = writeln!(o, "      \"applied\": {}", s.applied);
                let _ = writeln!(o, "    }}{comma}");
            }
            let _ = writeln!(o, "  ]");
        }
        let _ = write!(o, "}}");
        o
    }

    /// Renders the human-facing capacity report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Serving {} on {} NPU x{}: {} scheduler, batch {}, seed {}",
            self.scenario, self.npu, self.replicas, self.scheduler, self.max_batch, self.seed
        );
        let _ = writeln!(
            out,
            "{} of {} requests completed over {:.3} simulated ms ({} events)",
            self.completed, self.requests, self.span_ms, self.events
        );
        for (i, n) in self.npus.iter().enumerate() {
            let _ = writeln!(
                out,
                "  npu[{i}]: busy {} cycles, utilization {:.1}%",
                n.busy_cycles,
                n.utilization * 100.0
            );
        }
        let _ = writeln!(
            out,
            "{:<14} {:>9} {:>10} {:>10} {:>10} {:>10} {:>9} {:>11}",
            "tenant", "completed", "mean ms", "p50 ms", "p95 ms", "p99 ms", "sla ms", "violations"
        );
        for t in &self.tenants {
            let sla = t
                .sla_ms
                .map_or_else(|| "-".to_owned(), |s| format!("{s:.2}"));
            let _ = writeln!(
                out,
                "{:<14} {:>9} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>9} {:>11}",
                t.name, t.completed, t.mean_ms, t.p50_ms, t.p95_ms, t.p99_ms, sla, t.sla_violations
            );
        }
        for s in &self.swaps {
            if s.applied {
                let _ = writeln!(
                    out,
                    "swap {}: {} blocks streamed in, key {:016x}, requested {:.4} ms, cutover {:.4} ms",
                    s.tenant, s.blocks, s.key_id, s.requested_ms, s.cutover_ms
                );
            } else {
                let _ = writeln!(
                    out,
                    "swap {}: requested {:.4} ms, never cut over (run drained first)",
                    s.tenant, s.requested_ms
                );
            }
        }
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[u64]) -> HistogramSnapshot {
        let h = seda_telemetry::AtomicHistogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    fn sample_report() -> ServeReport {
        ServeReport {
            scenario: "s".to_owned(),
            npu: "edge".to_owned(),
            scheduler: "fcfs".to_owned(),
            seed: 1,
            replicas: 1,
            max_batch: 1,
            requests: 3,
            completed: 3,
            events: 6,
            end_cycle: 1000,
            span_ms: 0.001,
            npus: vec![NpuReport {
                busy_cycles: 500,
                utilization: 0.5,
            }],
            tenants: vec![TenantReport {
                name: "alpha".to_owned(),
                key_id: 0xDEAD_BEEF,
                completed: 3,
                latency: hist(&[100, 200, 400]),
                queue_depth: hist(&[0, 1, 2]),
                mean_ms: 0.2,
                p50_ms: 0.25,
                p95_ms: 0.5,
                p99_ms: 0.5,
                sla_ms: Some(0.4),
                sla_violations: 1,
            }],
            swaps: vec![],
        }
    }

    #[test]
    fn snapshot_is_stable_and_tagged() {
        let r = sample_report();
        let a = r.snapshot_json();
        assert_eq!(a, r.snapshot_json(), "snapshot must be deterministic");
        assert!(a.contains("\"schema\": \"seda-serve/v1\""), "{a}");
        assert!(a.contains("\"key_id\": \"00000000deadbeef\""), "{a}");
        assert!(a.contains("\"sla_ms\": 0.400000"), "{a}");
        assert!(
            !a.contains("\"swaps\""),
            "swap-free reports must not grow a swaps section: {a}"
        );
    }

    #[test]
    fn snapshot_grows_a_swaps_section_only_when_swaps_exist() {
        let mut r = sample_report();
        r.swaps.push(SwapReport {
            tenant: "alpha".to_owned(),
            key_id: 0xFEED,
            blocks: 96,
            requested_ms: 0.5,
            cutover_ms: 0.75,
            applied: true,
        });
        let a = r.snapshot_json();
        assert!(a.contains("\"swaps\": ["), "{a}");
        assert!(a.contains("\"key_id\": \"000000000000feed\""), "{a}");
        assert!(a.contains("\"cutover_ms\": 0.750000"), "{a}");
        assert!(a.contains("\"applied\": true"), "{a}");
        assert!(
            a.ends_with("]\n}"),
            "swaps must stay inside the object: {a}"
        );
        assert!(
            r.render().contains("96 blocks streamed in"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn expectations_flag_only_violations() {
        let r = sample_report();
        let pass = ServeExpectation {
            tenant: "ALPHA".to_owned(),
            p50_ms_max: Some(0.3),
            p95_ms_max: None,
            p99_ms_max: Some(1.0),
        };
        assert!(r.check_expectations(&[pass]).is_empty());
        let fail = ServeExpectation {
            tenant: "alpha".to_owned(),
            p50_ms_max: Some(0.2),
            p95_ms_max: Some(0.4),
            p99_ms_max: None,
        };
        let failures = r.check_expectations(&[fail]);
        assert_eq!(failures.len(), 2);
        assert_eq!(failures[0].metric, "p50_ms_max");
        assert!(failures[0].to_string().contains("alpha"), "{}", failures[0]);
    }

    #[test]
    fn render_mentions_every_tenant() {
        let r = sample_report();
        let text = r.render();
        assert!(text.contains("alpha"), "{text}");
        assert!(text.contains("violations"), "{text}");
    }
}
