//! Seeded arrival processes shared by both kernels.
//!
//! Open-loop arrivals are fully pre-generated as a trace — both kernels
//! replay the identical `(cycle, tenant, id)` list, so the differential
//! oracle compares pure scheduling behaviour. Closed-loop draws are
//! necessarily dynamic (a client's next request depends on its previous
//! completion), so both kernels share the *draw functions* here and the
//! determinism contract requires them to invoke the draws at identical
//! points: one think-time draw plus one tenant pick per issue, from the
//! issuing client's own stream.

use crate::rng::Rng;
use crate::spec::{ArrivalSim, BurstSim, DiurnalSim, SimSpec, STREAM_ARRIVALS, STREAM_CLIENTS};

/// One issued request, before service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival cycle.
    pub cycle: u64,
    /// Tenant index the request targets.
    pub tenant: usize,
    /// Issue-order request id (also the heap tie-breaker seq).
    pub id: u64,
    /// Issuing client for closed-loop arrivals.
    pub client: Option<u32>,
}

/// The instantaneous rate multiplier at virtual time `t` (in cycles):
/// the product of the burst square wave and the diurnal sinusoid.
pub fn modulation(burst: Option<&BurstSim>, diurnal: Option<&DiurnalSim>, t: f64) -> f64 {
    let mut m = 1.0;
    if let Some(b) = burst {
        let phase = (t / b.period_cycles).fract();
        if phase < b.duty_pct / 100.0 {
            m *= b.factor;
        }
    }
    if let Some(d) = diurnal {
        let phase = (t / d.period_cycles).fract();
        m *= 1.0 + d.amplitude * (phase * std::f64::consts::TAU).sin();
    }
    m
}

/// Weighted tenant pick: one uniform draw over the weight total.
pub fn pick_tenant(rng: &mut Rng, weights: &[u64]) -> usize {
    let total: u64 = weights.iter().sum();
    let mut ticket = rng.below(total);
    for (i, w) in weights.iter().enumerate() {
        if ticket < *w {
            return i;
        }
        ticket -= w;
    }
    weights.len() - 1
}

/// One think-time draw in whole cycles, clamped to at least 1 so a
/// client can never re-enter the queue in its completion cycle.
pub fn think_draw(rng: &mut Rng, mean_cycles: f64) -> u64 {
    (rng.exp(mean_cycles).round() as u64).max(1)
}

/// The per-client RNG stream for closed-loop draws.
pub fn client_rng(seed: u64, client: u32) -> Rng {
    Rng::for_stream(seed, STREAM_CLIENTS + u64::from(client))
}

/// How many requests client `c` of `clients` issues out of `requests`
/// total: the even split, with the remainder going to the lowest
/// client indices.
pub fn client_quota(requests: u64, clients: u32, c: u32) -> u64 {
    let clients = u64::from(clients);
    requests / clients + u64::from(u64::from(c) < requests % clients)
}

/// Pre-generates the full open-loop arrival trace: seeded Poisson
/// interarrivals via inverse-CDF exponential draws, thinned against the
/// deterministic burst/diurnal modulation, each arrival assigned a
/// tenant by weighted pick from the same stream.
///
/// # Panics
///
/// Panics when `spec.arrival` is not open-loop.
pub fn open_loop_trace(spec: &SimSpec) -> Vec<Arrival> {
    let ArrivalSim::OpenLoop {
        mean_cycles,
        requests,
        ref burst,
        ref diurnal,
    } = spec.arrival
    else {
        panic!("open_loop_trace needs an open-loop arrival spec");
    };
    let weights = spec.weights();
    let mut rng = Rng::for_stream(spec.seed, STREAM_ARRIVALS);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(requests as usize);
    for id in 0..requests {
        let m = modulation(burst.as_ref(), diurnal.as_ref(), t);
        t += rng.exp(mean_cycles / m);
        out.push(Arrival {
            cycle: t as u64,
            tenant: pick_tenant(&mut rng, &weights),
            id,
            client: None,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Scheduler, TenantSim};

    fn open_spec(requests: u64) -> SimSpec {
        SimSpec {
            seed: 11,
            scheduler: Scheduler::Fcfs,
            replicas: 1,
            max_batch: 1,
            tenants: vec![
                TenantSim {
                    name: "a".to_owned(),
                    profiles: vec![vec![5]],
                    sla_cycles: None,
                    weight: 3,
                },
                TenantSim {
                    name: "b".to_owned(),
                    profiles: vec![vec![5]],
                    sla_cycles: None,
                    weight: 1,
                },
            ],
            arrival: ArrivalSim::OpenLoop {
                mean_cycles: 40.0,
                requests,
                burst: None,
                diurnal: None,
            },
            swaps: vec![],
        }
    }

    #[test]
    fn trace_is_sorted_and_deterministic() {
        let spec = open_spec(2000);
        let a = open_loop_trace(&spec);
        let b = open_loop_trace(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2000);
        for w in a.windows(2) {
            assert!(w[0].cycle <= w[1].cycle);
            assert_eq!(w[0].id + 1, w[1].id);
        }
    }

    #[test]
    fn tenant_weights_shape_the_split() {
        let spec = open_spec(8000);
        let trace = open_loop_trace(&spec);
        let to_a = trace.iter().filter(|a| a.tenant == 0).count() as f64;
        let frac = to_a / trace.len() as f64;
        // Weight 3:1 ⇒ ~75% to tenant 0; a generous tolerance keeps the
        // test seed-robust.
        assert!((0.70..0.80).contains(&frac), "{frac}");
    }

    #[test]
    fn modulation_square_wave_and_sinusoid_compose() {
        let burst = BurstSim {
            period_cycles: 100.0,
            duty_pct: 20.0,
            factor: 4.0,
        };
        assert_eq!(modulation(Some(&burst), None, 10.0), 4.0);
        assert_eq!(modulation(Some(&burst), None, 50.0), 1.0);
        let diurnal = DiurnalSim {
            period_cycles: 100.0,
            amplitude: 0.5,
        };
        let quarter = modulation(None, Some(&diurnal), 25.0);
        assert!((quarter - 1.5).abs() < 1e-9, "{quarter}");
        let both = modulation(Some(&burst), Some(&diurnal), 25.0);
        assert!((both - 1.5).abs() < 1e-9, "burst off at phase 0.25: {both}");
    }

    #[test]
    fn client_quotas_cover_all_requests() {
        for (requests, clients) in [(10u64, 3u32), (7, 7), (5, 8), (100, 9)] {
            let total: u64 = (0..clients)
                .map(|c| client_quota(requests, clients, c))
                .sum();
            assert_eq!(total, requests);
        }
    }

    #[test]
    fn weighted_pick_never_leaves_range() {
        let mut rng = Rng::new(3);
        let weights = [1u64, 5, 2];
        for _ in 0..1000 {
            assert!(pick_tenant(&mut rng, &weights) < weights.len());
        }
    }
}
