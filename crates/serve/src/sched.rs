//! Scheduling mechanics shared by both kernels.
//!
//! The event-driven kernel and the brute-force time-stepped reference
//! must agree bit-for-bit, so the *policy* — queue discipline, batch
//! formation, preemption predicate, metric recording — lives here once,
//! and each kernel supplies only its own notion of time: the heap with
//! `(time, rank, tie, seq)` ordering on one side, literal 1-cycle
//! stepping on the other. The shared per-cycle contract both uphold:
//!
//! 1. **Layer-done phase** — boundaries reaching cycle `t` are handled
//!    in NPU index order. A finished batch records completions in
//!    request order (and schedules closed-loop re-issues); an unfinished
//!    one under preemptive EDF yields if pending work has a strictly
//!    earlier deadline, *judged against the queue state before this
//!    cycle's arrivals*.
//! 2. **Arrival phase** — arrivals at `t` enqueue in issue-id order.
//! 3. **Swap phase** — swap requests due at `t` become pending in
//!    declaration order; every pending swap whose tenant has no batch
//!    in flight (running or preempted) cuts over *now*, installing the
//!    replacement profiles before this cycle's dispatch.
//! 4. **Dispatch phase** — idle NPUs in index order each take the
//!    scheduler's best candidate (a preempted batch or a fresh batch of
//!    up to `max_batch` queue-head requests from one tenant).
//!
//! Metrics are sampled only after *active* cycles (at least one
//! arrival, layer-done, or swap-due event), which both kernels can
//! detect identically. The in-flight predicate the swap phase reads
//! only changes on active cycles, so checking it there loses nothing.

use crate::spec::{Completion, Scheduler, SimOutcome, SimSpec, SwapOutcome};
use seda_telemetry::AtomicHistogram;
use std::collections::VecDeque;

/// One queued request awaiting dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedReq {
    /// Issue-order id.
    pub id: u64,
    /// Arrival cycle.
    pub arrival: u64,
    /// EDF deadline (`u64::MAX` without an SLA).
    pub deadline: u64,
    /// Issuing client for closed-loop requests.
    pub client: Option<u32>,
}

/// A dispatched (or preempted) unit of work: consecutive same-tenant
/// requests served as one batch of concatenated inference layers.
/// Preemption re-enqueues the whole batch with its progress intact —
/// batches are indivisible once formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Tenant index.
    pub tenant: usize,
    /// Member requests in arrival order.
    pub reqs: Vec<QueuedReq>,
    /// Concatenated per-layer durations for the whole batch.
    pub layers: Vec<u64>,
    /// Index of the next layer to execute.
    pub next_layer: usize,
    /// Earliest member deadline (the EDF key).
    pub deadline: u64,
    /// Earliest member arrival (the FCFS key).
    pub arrival: u64,
    /// Smallest member id (the final tie-breaker).
    pub id: u64,
}

impl Batch {
    /// Duration of the layer about to execute (or executing).
    pub fn current_layer(&self) -> u64 {
        self.layers[self.next_layer]
    }

    /// Whether every layer has executed.
    pub fn done(&self) -> bool {
        self.next_layer == self.layers.len()
    }
}

/// The queue discipline state shared by both kernels.
#[derive(Debug)]
pub struct SchedState {
    /// Per-tenant FIFO queues.
    pub queues: Vec<VecDeque<QueuedReq>>,
    /// Preempted batches awaiting resumption (EDF-preempt only).
    pub preempted: Vec<Batch>,
    /// Round-robin cursor: the tenant index to consider first.
    pub rr_cursor: usize,
    /// The *active* per-tenant batch cost profiles — the spec's lineup
    /// profiles until a hot swap cuts over, the replacement's after.
    /// Batch formation reads these; batches already formed keep their
    /// admission-time layers.
    pub profiles: Vec<Vec<Vec<u64>>>,
}

impl SchedState {
    /// Empty state for the spec's tenant lineup.
    pub fn new(spec: &SimSpec) -> Self {
        Self {
            queues: vec![VecDeque::new(); spec.tenants.len()],
            preempted: Vec::new(),
            rr_cursor: 0,
            profiles: spec.tenants.iter().map(|t| t.profiles.clone()).collect(),
        }
    }

    /// Installs a tenant's replacement cost profiles at swap cutover.
    /// In-flight batches are unaffected — they own their layers.
    pub fn swap_profiles(&mut self, tenant: usize, profiles: Vec<Vec<u64>>) {
        self.profiles[tenant] = profiles;
    }

    /// Enqueues one arrival on its tenant queue.
    pub fn enqueue(&mut self, tenant: usize, req: QueuedReq) {
        self.queues[tenant].push_back(req);
    }

    /// Total requests queued (preempted batches are in service, not
    /// queued, and are excluded — both kernels must agree on this).
    pub fn queued_total(&self) -> u64 {
        self.queues.iter().map(|q| q.len() as u64).sum()
    }

    /// The earliest deadline among all pending work: queue heads and
    /// preempted batches.
    fn min_pending_deadline(&self) -> Option<u64> {
        let heads = self
            .queues
            .iter()
            .filter_map(|q| q.front().map(|r| r.deadline));
        let pool = self.preempted.iter().map(|b| b.deadline);
        heads.chain(pool).min()
    }

    /// The preemption predicate: pending work strictly beats the
    /// running batch's deadline. Evaluated at layer boundaries only,
    /// against pre-arrival queue state.
    pub fn should_preempt(&self, batch: &Batch) -> bool {
        self.min_pending_deadline()
            .is_some_and(|d| d < batch.deadline)
    }

    /// Parks a preempted batch for later resumption.
    pub fn park(&mut self, batch: Batch) {
        self.preempted.push(batch);
    }

    /// Takes the scheduler's best candidate for one idle NPU, or `None`
    /// when nothing is pending. Forms a fresh batch of up to
    /// `spec.max_batch` head requests when a tenant queue wins;
    /// resumes a preempted batch when the pool wins.
    pub fn dispatch(&mut self, spec: &SimSpec) -> Option<Batch> {
        match spec.scheduler {
            Scheduler::Rr => self.dispatch_rr(spec),
            Scheduler::Fcfs => {
                self.dispatch_keyed(spec, |r| (r.arrival, r.id), |b| (b.arrival, b.id))
            }
            Scheduler::Edf { .. } => self.dispatch_keyed(
                spec,
                |r| (r.deadline, r.arrival),
                |b| (b.deadline, b.arrival),
            ),
        }
    }

    fn dispatch_rr(&mut self, spec: &SimSpec) -> Option<Batch> {
        let tenants = self.queues.len();
        for step in 0..tenants {
            let tenant = (self.rr_cursor + step) % tenants;
            if !self.queues[tenant].is_empty() {
                self.rr_cursor = (tenant + 1) % tenants;
                return Some(self.form_batch(spec, tenant));
            }
        }
        None
    }

    /// Generic keyed dispatch: the best queue head competes with the
    /// best preempted batch under the same key, ties broken by the
    /// smallest member id (globally unique).
    fn dispatch_keyed(
        &mut self,
        spec: &SimSpec,
        req_key: fn(&QueuedReq) -> (u64, u64),
        batch_key: fn(&Batch) -> (u64, u64),
    ) -> Option<Batch> {
        let best_head = self
            .queues
            .iter()
            .enumerate()
            .filter_map(|(tenant, q)| q.front().map(|r| ((req_key(r), r.id), tenant)))
            .min();
        let best_parked = self
            .preempted
            .iter()
            .enumerate()
            .map(|(i, b)| ((batch_key(b), b.id), i))
            .min();
        match (best_head, best_parked) {
            (None, None) => None,
            (Some((_, tenant)), None) => Some(self.form_batch(spec, tenant)),
            (None, Some((_, i))) => Some(self.preempted.remove(i)),
            (Some((hk, tenant)), Some((pk, i))) => {
                if hk <= pk {
                    Some(self.form_batch(spec, tenant))
                } else {
                    Some(self.preempted.remove(i))
                }
            }
        }
    }

    fn form_batch(&mut self, spec: &SimSpec, tenant: usize) -> Batch {
        // A tenant can only batch as deep as it has cost profiles for —
        // judged against the *active* (possibly swapped-in) profiles.
        let b = (spec.max_batch as usize)
            .min(self.profiles[tenant].len())
            .min(self.queues[tenant].len());
        let reqs: Vec<QueuedReq> = self.queues[tenant].drain(..b).collect();
        let layers = self.profiles[tenant][..b].concat();
        // FIFO queues and a per-tenant SLA make the head the minimum on
        // every key, but take the fold anyway — it is the contract.
        let deadline = reqs.iter().map(|r| r.deadline).min().unwrap_or(u64::MAX);
        let arrival = reqs.iter().map(|r| r.arrival).min().unwrap_or(0);
        let id = reqs.iter().map(|r| r.id).min().unwrap_or(0);
        Batch {
            tenant,
            reqs,
            layers,
            next_layer: 0,
            deadline,
            arrival,
            id,
        }
    }
}

/// Metric accumulation shared by both kernels.
#[derive(Debug)]
pub struct Metrics {
    completions: Vec<Completion>,
    queue_trace: Vec<(u64, u64)>,
    latency: Vec<AtomicHistogram>,
    queue_depth: Vec<AtomicHistogram>,
    busy: Vec<u64>,
    events: u64,
    end_cycle: u64,
    swaps: Vec<SwapOutcome>,
}

impl Metrics {
    /// Empty accumulators for `tenants` tenants and `replicas` NPUs.
    pub fn new(tenants: usize, replicas: usize) -> Self {
        Self {
            completions: Vec::new(),
            queue_trace: Vec::new(),
            latency: (0..tenants).map(|_| AtomicHistogram::new()).collect(),
            queue_depth: (0..tenants).map(|_| AtomicHistogram::new()).collect(),
            busy: vec![0; replicas],
            events: 0,
            end_cycle: 0,
            swaps: Vec::new(),
        }
    }

    /// Records one applied hot swap at its cutover cycle.
    pub fn swap(&mut self, tenant: usize, requested: u64, cutover: u64) {
        self.swaps.push(SwapOutcome {
            tenant,
            requested,
            cutover,
        });
    }

    /// Counts one processed event (arrival or layer-done).
    pub fn event(&mut self) {
        self.events += 1;
    }

    /// Charges `cycles` of busy time to replica `npu`.
    pub fn busy(&mut self, npu: usize, cycles: u64) {
        self.busy[npu] += cycles;
    }

    /// Records one completed request.
    pub fn complete(&mut self, req: &QueuedReq, tenant: usize, now: u64) {
        self.completions.push(Completion {
            id: req.id,
            tenant,
            arrival: req.arrival,
            completion: now,
        });
        self.latency[tenant].record(now - req.arrival);
        self.end_cycle = self.end_cycle.max(now);
    }

    /// Samples queue depths after an active cycle.
    pub fn sample(&mut self, now: u64, state: &SchedState) {
        self.queue_trace.push((now, state.queued_total()));
        for (tenant, q) in state.queues.iter().enumerate() {
            self.queue_depth[tenant].record(q.len() as u64);
        }
    }

    /// Finalizes into the comparable outcome.
    pub fn finish(self) -> SimOutcome {
        SimOutcome {
            completions: self.completions,
            queue_trace: self.queue_trace,
            tenant_latency: self.latency.iter().map(AtomicHistogram::snapshot).collect(),
            tenant_queue_depth: self
                .queue_depth
                .iter()
                .map(AtomicHistogram::snapshot)
                .collect(),
            busy_cycles: self.busy,
            end_cycle: self.end_cycle,
            events: self.events,
            swaps: self.swaps,
        }
    }
}

/// Closed-loop client bookkeeping shared by both kernels: per-client
/// RNG streams, issue quotas, and globally ordered issue ids. Both
/// kernels must call [`on_complete`](Clients::on_complete) at identical
/// points (completion processing order) for the draws to line up.
#[derive(Debug)]
pub struct Clients {
    rngs: Vec<crate::rng::Rng>,
    issued: Vec<u64>,
    quota: Vec<u64>,
    next_id: u64,
    think_cycles: f64,
    weights: Vec<u64>,
}

impl Clients {
    /// Initializes client state and returns the initial arrivals, one
    /// per client with a nonzero quota, ids assigned in client order.
    /// Each initial arrival lands at the client's first think draw.
    pub fn new(spec: &SimSpec) -> (Self, Vec<crate::arrivals::Arrival>) {
        let crate::spec::ArrivalSim::ClosedLoop {
            clients,
            think_cycles,
            requests,
        } = spec.arrival
        else {
            panic!("Clients::new needs a closed-loop arrival spec");
        };
        let weights = spec.weights();
        let mut me = Self {
            rngs: (0..clients)
                .map(|c| crate::arrivals::client_rng(spec.seed, c))
                .collect(),
            issued: vec![0; clients as usize],
            quota: (0..clients)
                .map(|c| crate::arrivals::client_quota(requests, clients, c))
                .collect(),
            next_id: 0,
            think_cycles,
            weights,
        };
        let mut initial = Vec::new();
        for c in 0..clients {
            if me.quota[c as usize] > 0 {
                if let Some(a) = me.issue(c, 0) {
                    initial.push(a);
                }
            }
        }
        (me, initial)
    }

    /// Issues client `c`'s next request after `now` if quota remains:
    /// one think draw plus one tenant pick from the client's stream.
    fn issue(&mut self, c: u32, now: u64) -> Option<crate::arrivals::Arrival> {
        let ci = c as usize;
        if self.issued[ci] >= self.quota[ci] {
            return None;
        }
        self.issued[ci] += 1;
        let think = crate::arrivals::think_draw(&mut self.rngs[ci], self.think_cycles);
        let tenant = crate::arrivals::pick_tenant(&mut self.rngs[ci], &self.weights);
        let id = self.next_id;
        self.next_id += 1;
        Some(crate::arrivals::Arrival {
            cycle: now + think,
            tenant,
            id,
            client: Some(c),
        })
    }

    /// Handles one request completion: schedules the issuing client's
    /// next request (arriving strictly after `now`) when quota remains.
    pub fn on_complete(
        &mut self,
        client: Option<u32>,
        now: u64,
    ) -> Option<crate::arrivals::Arrival> {
        client.and_then(|c| self.issue(c, now))
    }
}
