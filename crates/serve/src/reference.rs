//! The brute-force 1-cycle time-stepped reference kernel.
//!
//! No event queue: the clock literally increments one cycle at a time,
//! and every cycle checks each NPU's layer boundary and the due
//! arrivals directly. It is deliberately dumb and obviously faithful to
//! the shared phase contract in [`sched`](crate::sched) — the
//! differential oracle replays identical specs through this kernel and
//! the event-driven one and requires bit-identical outcomes, which
//! pins the heap ordering, boundary arithmetic, and closed-loop draw
//! points of the fast kernel. Only tractable for small cases; the
//! horizon is capped to catch runaway specs.

use crate::arrivals::{open_loop_trace, Arrival};
use crate::sched::{Batch, Clients, Metrics, QueuedReq, SchedState};
use crate::spec::{ArrivalSim, Scheduler, SimOutcome, SimSpec};

/// Hard ceiling on the stepped horizon; hitting it is a test bug, not a
/// simulation result.
const MAX_CYCLES: u64 = 50_000_000;

/// A batch running on one NPU, finishing its current layer at
/// `boundary`.
struct Running {
    batch: Batch,
    boundary: u64,
}

/// Runs the time-stepped reference over a spec.
///
/// # Panics
///
/// Panics on structurally invalid specs or when the horizon exceeds
/// `MAX_CYCLES` (50M cycles) — keep oracle cases small.
pub fn simulate_stepped(spec: &SimSpec) -> SimOutcome {
    assert!(spec.replicas > 0, "need at least one replica");
    assert!(spec.max_batch > 0, "need a positive batch limit");
    assert!(!spec.tenants.is_empty(), "need at least one tenant");
    let total = spec.arrival.requests();
    let mut state = SchedState::new(spec);
    let mut metrics = Metrics::new(spec.tenants.len(), spec.replicas as usize);
    let mut npus: Vec<Option<Running>> = (0..spec.replicas).map(|_| None).collect();
    let mut completed = 0u64;
    let mut swap_pending = vec![false; spec.swaps.len()];
    let mut swap_done = vec![false; spec.swaps.len()];

    // Arrival delivery: a sorted trace with a cursor for open loop, an
    // unsorted pending list scanned each cycle for closed loop.
    let mut trace: Vec<Arrival> = Vec::new();
    let mut cursor = 0usize;
    let mut pending: Vec<Arrival> = Vec::new();
    let mut clients = match spec.arrival {
        ArrivalSim::OpenLoop { .. } => {
            trace = open_loop_trace(spec);
            None
        }
        ArrivalSim::ClosedLoop { .. } => {
            let (clients, initial) = Clients::new(spec);
            pending = initial;
            Some(clients)
        }
    };

    let mut now = 0u64;
    while completed < total {
        assert!(
            now < MAX_CYCLES,
            "reference horizon exceeded {MAX_CYCLES} cycles; oracle case too large"
        );
        let mut active = false;

        // Phase A: layer boundaries reaching this cycle, NPU index order.
        for (npu, slot) in npus.iter_mut().enumerate() {
            let hit = slot.as_ref().is_some_and(|r| r.boundary == now);
            if !hit {
                continue;
            }
            active = true;
            metrics.event();
            let mut run = slot.take().expect("boundary on an idle NPU");
            metrics.busy(npu, run.batch.current_layer());
            run.batch.next_layer += 1;
            if run.batch.done() {
                completed += run.batch.reqs.len() as u64;
                for req in &run.batch.reqs {
                    metrics.complete(req, run.batch.tenant, now);
                }
                if let Some(clients) = &mut clients {
                    for req in &run.batch.reqs {
                        if let Some(a) = clients.on_complete(req.client, now) {
                            pending.push(a);
                        }
                    }
                }
            } else if matches!(spec.scheduler, Scheduler::Edf { preempt: true })
                && state.should_preempt(&run.batch)
            {
                state.park(run.batch);
            } else {
                let boundary = now + run.batch.current_layer();
                *slot = Some(Running {
                    batch: run.batch,
                    boundary,
                });
            }
        }

        // Phase B: arrivals due this cycle, issue-id order.
        let mut due: Vec<Arrival> = Vec::new();
        while cursor < trace.len() && trace[cursor].cycle == now {
            due.push(trace[cursor]);
            cursor += 1;
        }
        if !pending.is_empty() {
            let mut i = 0;
            while i < pending.len() {
                if pending[i].cycle == now {
                    due.push(pending.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            due.sort_by_key(|a| a.id);
        }
        for a in due {
            active = true;
            metrics.event();
            let deadline = spec.tenants[a.tenant].deadline(now);
            state.enqueue(
                a.tenant,
                QueuedReq {
                    id: a.id,
                    arrival: now,
                    deadline,
                    client: a.client,
                },
            );
        }

        // Swap phase: requests due this cycle become pending in
        // declaration order, then every pending swap whose tenant has
        // no batch in flight cuts over before dispatch — identical to
        // the event kernel's rank-2 events plus pre-dispatch cutover.
        for (i, s) in spec.swaps.iter().enumerate() {
            if s.at_cycle == now && !swap_pending[i] {
                active = true;
                metrics.event();
                swap_pending[i] = true;
            }
        }
        if active {
            for (i, s) in spec.swaps.iter().enumerate() {
                if !swap_pending[i] || swap_done[i] {
                    continue;
                }
                let in_flight = npus.iter().flatten().any(|r| r.batch.tenant == s.tenant)
                    || state.preempted.iter().any(|b| b.tenant == s.tenant);
                if in_flight {
                    continue;
                }
                state.swap_profiles(s.tenant, s.profiles.clone());
                metrics.swap(s.tenant, s.at_cycle, now);
                swap_done[i] = true;
            }
        }

        // Phase C + sampling, only on active cycles.
        if active {
            for slot in &mut npus {
                if slot.is_some() {
                    continue;
                }
                let Some(batch) = state.dispatch(spec) else {
                    break;
                };
                let boundary = now + batch.current_layer();
                *slot = Some(Running { batch, boundary });
            }
            metrics.sample(now, &state);
        }
        now += 1;
    }
    metrics.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::simulate;
    use crate::spec::TenantSim;

    #[test]
    fn reference_matches_kernel_on_a_smoke_case() {
        let spec = SimSpec {
            seed: 17,
            scheduler: Scheduler::Edf { preempt: true },
            replicas: 2,
            max_batch: 2,
            tenants: vec![
                TenantSim {
                    name: "a".to_owned(),
                    profiles: vec![vec![12, 7], vec![5, 5]],
                    sla_cycles: Some(90),
                    weight: 2,
                },
                TenantSim {
                    name: "b".to_owned(),
                    profiles: vec![vec![20], vec![9]],
                    sla_cycles: None,
                    weight: 1,
                },
            ],
            arrival: ArrivalSim::OpenLoop {
                mean_cycles: 14.0,
                requests: 500,
                burst: None,
                diurnal: None,
            },
            swaps: vec![],
        };
        let fast = simulate(&spec);
        let slow = simulate_stepped(&spec);
        assert_eq!(fast, slow);
    }

    #[test]
    fn reference_matches_kernel_under_hot_swaps() {
        use crate::spec::SwapSim;
        // Two tenants, preemptive EDF, and both tenants swapped mid-run
        // (one while saturated, one while idle) — the full swap phase
        // must agree bit-for-bit between the kernels.
        let spec = SimSpec {
            seed: 31,
            scheduler: Scheduler::Edf { preempt: true },
            replicas: 2,
            max_batch: 2,
            tenants: vec![
                TenantSim {
                    name: "a".to_owned(),
                    profiles: vec![vec![15, 10], vec![6, 4]],
                    sla_cycles: Some(120),
                    weight: 2,
                },
                TenantSim {
                    name: "b".to_owned(),
                    profiles: vec![vec![25], vec![11]],
                    sla_cycles: None,
                    weight: 1,
                },
            ],
            arrival: ArrivalSim::OpenLoop {
                mean_cycles: 12.0,
                requests: 400,
                burst: None,
                diurnal: None,
            },
            swaps: vec![
                SwapSim {
                    tenant: 0,
                    at_cycle: 700,
                    profiles: vec![vec![8, 8], vec![3, 3]],
                },
                SwapSim {
                    tenant: 1,
                    at_cycle: 1900,
                    profiles: vec![vec![40], vec![18]],
                },
            ],
        };
        let fast = simulate(&spec);
        let slow = simulate_stepped(&spec);
        assert_eq!(fast, slow);
        assert_eq!(fast.swaps.len(), 2, "both swaps must land");
    }

    #[test]
    fn reference_matches_kernel_closed_loop() {
        let spec = SimSpec {
            seed: 23,
            scheduler: Scheduler::Rr,
            replicas: 1,
            max_batch: 3,
            tenants: vec![
                TenantSim {
                    name: "a".to_owned(),
                    profiles: vec![vec![8], vec![4], vec![4]],
                    sla_cycles: None,
                    weight: 1,
                },
                TenantSim {
                    name: "b".to_owned(),
                    profiles: vec![vec![6, 6], vec![3, 3], vec![3, 3]],
                    sla_cycles: None,
                    weight: 3,
                },
            ],
            arrival: ArrivalSim::ClosedLoop {
                clients: 5,
                think_cycles: 20.0,
                requests: 400,
            },
            swaps: vec![],
        };
        let fast = simulate(&spec);
        let slow = simulate_stepped(&spec);
        assert_eq!(fast, slow);
    }
}
