//! The serving simulation's input and output data model.
//!
//! [`SimSpec`] is the *low-level* contract both kernels (event-driven
//! and time-stepped) execute: everything is integer accelerator cycles,
//! every tenant's cost model is an explicit per-layer cycle list, and
//! the only nondeterminism source is the seed. [`build`] grounds a
//! scenario's `"serving"` block into a `SimSpec` by running each
//! tenant's model through the real [`pipeline`](seda::pipeline)
//! simulator (via the shared [`TraceCache`]) and sealing each tenant's
//! weights into an independent [`ProtectedImage`] key/version-number
//! space; the differential oracle instead constructs tiny synthetic
//! `SimSpec`s directly, so the brute-force reference stays tractable.

use crate::rng::Rng;
use seda::pipeline::{dram_config_for, try_run_trace_with_dram};
use seda::scenario::{ArrivalSpec, Scenario, ScenarioError, ServingSpec};
use seda::SedaError;
use seda_adversary::{ProtectConfig, ProtectedImage};
use seda_protect::HashEngine;
use seda_scalesim::TraceCache;
use seda_telemetry::HistogramSnapshot;

/// RNG stream tag for open-loop arrival draws.
pub const STREAM_ARRIVALS: u64 = 1;
/// RNG stream tag base for per-client closed-loop draws (client `c`
/// uses `STREAM_CLIENTS + c`).
pub const STREAM_CLIENTS: u64 = 0x1_0000;
/// RNG stream tag base for per-tenant sealing keys.
pub const STREAM_KEYS: u64 = 0x2_0000;
/// RNG stream tag base for per-tenant key fingerprints.
pub const STREAM_KEY_IDS: u64 = 0x3_0000;
/// RNG stream tag base for per-tenant sealed weight payloads.
pub const STREAM_PAYLOADS: u64 = 0x4_0000;
/// RNG stream tag base for per-swap provisioning keys (encryption,
/// storage MAC, and transport MAC of the replacement image).
pub const STREAM_SWAP_KEYS: u64 = 0x5_0000;
/// RNG stream tag base for per-swap key fingerprints.
pub const STREAM_SWAP_KEY_IDS: u64 = 0x6_0000;
/// RNG stream tag base for per-swap replacement weight payloads.
pub const STREAM_SWAP_PAYLOADS: u64 = 0x7_0000;

/// Scheduling policy for the shared NPU queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// First-come-first-served across all tenants (by arrival order).
    Fcfs,
    /// Round-robin over tenants: a global cursor rotates past the tenant
    /// that last dispatched.
    Rr,
    /// Earliest-deadline-first (deadline = arrival + SLA). With
    /// `preempt`, a running batch can be preempted at a layer boundary
    /// by pending work with a strictly earlier deadline.
    Edf {
        /// Allow preemption at layer boundaries.
        preempt: bool,
    },
}

impl Scheduler {
    /// The lowercase scenario spelling.
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Fcfs => "fcfs",
            Scheduler::Rr => "rr",
            Scheduler::Edf { .. } => "edf",
        }
    }
}

/// Deterministic burst modulation in cycle units.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstSim {
    /// Square-wave period in cycles.
    pub period_cycles: f64,
    /// Percentage of each period spent bursting.
    pub duty_pct: f64,
    /// Rate multiplier while bursting.
    pub factor: f64,
}

/// Deterministic diurnal modulation in cycle units.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalSim {
    /// Sinusoid period in cycles.
    pub period_cycles: f64,
    /// Peak fractional rate swing.
    pub amplitude: f64,
}

/// Arrival process in cycle units.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSim {
    /// Open-loop Poisson arrivals.
    OpenLoop {
        /// Mean interarrival time in cycles (at modulation 1.0).
        mean_cycles: f64,
        /// Total requests to issue.
        requests: u64,
        /// Optional burst modulation.
        burst: Option<BurstSim>,
        /// Optional diurnal modulation.
        diurnal: Option<DiurnalSim>,
    },
    /// Closed-loop client population.
    ClosedLoop {
        /// Concurrent clients.
        clients: u32,
        /// Mean exponential think time in cycles.
        think_cycles: f64,
        /// Total requests issued across all clients.
        requests: u64,
    },
}

impl ArrivalSim {
    /// Total requests the process will issue.
    pub fn requests(&self) -> u64 {
        match self {
            ArrivalSim::OpenLoop { requests, .. } | ArrivalSim::ClosedLoop { requests, .. } => {
                *requests
            }
        }
    }
}

/// One tenant's cost model and scheduling parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSim {
    /// Tenant name (snapshot key).
    pub name: String,
    /// `profiles[i]` is the per-layer cycle list of the `(i+1)`-th
    /// back-to-back inference in a batch — `profiles[0]` is the cold
    /// first inference, later entries the steady state. A batch of `b`
    /// requests executes `profiles[0..b]` concatenated, and the tenant's
    /// effective batch limit is `min(max_batch, profiles.len())`. Every
    /// duration is at least 1 cycle.
    pub profiles: Vec<Vec<u64>>,
    /// SLA deadline offset in cycles; `None` means no deadline pressure
    /// (EDF treats it as far-future).
    pub sla_cycles: Option<u64>,
    /// Relative share of the arrival stream.
    pub weight: u64,
}

impl TenantSim {
    /// The layer-duration list a batch of `b` requests executes.
    pub fn batch_layers(&self, b: usize) -> Vec<u64> {
        self.profiles[..b].concat()
    }

    /// The EDF deadline of a request arriving at `arrival`.
    pub fn deadline(&self, arrival: u64) -> u64 {
        match self.sla_cycles {
            Some(sla) => arrival.saturating_add(sla),
            None => u64::MAX,
        }
    }
}

/// One scheduled hot model-swap in kernel units: at `at_cycle` the
/// tenant's replacement cost model becomes eligible, and the cutover
/// lands at the first processed cycle where the tenant has no batch in
/// flight (running or preempted) — batches formed before the cutover
/// keep their admission-time layers, so no work is ever re-costed
/// mid-batch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapSim {
    /// Tenant index into the lineup.
    pub tenant: usize,
    /// Cycle the swap request lands.
    pub at_cycle: u64,
    /// Replacement batch cost profiles (same shape as
    /// [`TenantSim::profiles`]).
    pub profiles: Vec<Vec<u64>>,
}

/// One applied swap as both kernels must report it — part of the
/// bit-compared [`SimOutcome`] surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapOutcome {
    /// Tenant index.
    pub tenant: usize,
    /// Cycle the swap was requested.
    pub requested: u64,
    /// Cycle the cutover actually landed.
    pub cutover: u64,
}

/// The complete, self-contained input of one serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// Master seed.
    pub seed: u64,
    /// Scheduling policy.
    pub scheduler: Scheduler,
    /// Identical NPU replicas drained from one queue.
    pub replicas: u32,
    /// Largest same-tenant batch dispatched at once.
    pub max_batch: u32,
    /// Tenant lineup.
    pub tenants: Vec<TenantSim>,
    /// Arrival process.
    pub arrival: ArrivalSim,
    /// Scheduled hot model-swaps, in declaration order.
    pub swaps: Vec<SwapSim>,
}

impl SimSpec {
    /// Tenant weights in lineup order (the weighted-pick table).
    pub fn weights(&self) -> Vec<u64> {
        self.tenants.iter().map(|t| t.weight).collect()
    }
}

/// One completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Issue-order request id.
    pub id: u64,
    /// Tenant index.
    pub tenant: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// Cycle the request's batch finished its last layer.
    pub completion: u64,
}

/// Everything a kernel reports — the surface the differential oracle
/// compares bit-for-bit between the event-driven and time-stepped
/// kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Completions in recording order (NPU index order within a cycle,
    /// request id order within a batch).
    pub completions: Vec<Completion>,
    /// `(cycle, queued requests)` after each active cycle — a cycle
    /// that processed at least one arrival or layer-done event.
    pub queue_trace: Vec<(u64, u64)>,
    /// Per-tenant latency histograms (cycles, arrival → completion).
    pub tenant_latency: Vec<HistogramSnapshot>,
    /// Per-tenant queue-depth histograms sampled at active cycles.
    pub tenant_queue_depth: Vec<HistogramSnapshot>,
    /// Busy cycles per replica.
    pub busy_cycles: Vec<u64>,
    /// Cycle of the last completion (0 when nothing completed).
    pub end_cycle: u64,
    /// Arrival, layer-done, and swap-due events processed.
    pub events: u64,
    /// Applied swaps in cutover order.
    pub swaps: Vec<SwapOutcome>,
}

/// One tenant's sealed weights: an independent key/version-number space
/// built over the [`ProtectedImage`] machinery, proving per-tenant
/// isolation (distinct keys, independent tamper blast radius).
#[derive(Debug, Clone)]
pub struct TenantSeal {
    /// Tenant name.
    pub name: String,
    /// Public key fingerprint (derived from its own stream, never from
    /// the key bytes).
    pub key_id: u64,
    /// The sealed off-chip image.
    pub image: ProtectedImage,
    /// The plaintext payloads written per layer region (for tests).
    pub payloads: Vec<Vec<u8>>,
}

/// One swap's replacement image, provisioned through the `seda-stream`
/// chunked encrypt-then-MAC pipeline rather than sealed at rest: the
/// grounding step seals the replacement weights into an authenticated
/// stream and unseals it frame-by-frame into the [`ProtectedImage`] —
/// the same path a line-rate provisioning NIC would drive. Index-aligned
/// with [`SimSpec::swaps`].
#[derive(Debug, Clone)]
pub struct SwapSeal {
    /// Tenant index into the lineup.
    pub tenant: usize,
    /// Fresh key fingerprint the tenant reports after cutover.
    pub key_id: u64,
    /// The streamed-in replacement image (fresh key, next key epoch).
    pub image: ProtectedImage,
    /// Protection blocks the stream carried.
    pub blocks: u64,
}

/// A scenario's serving block grounded into an executable simulation:
/// the [`SimSpec`], the clock that converts its cycles back to
/// milliseconds, and each tenant's sealed image.
#[derive(Debug, Clone)]
pub struct ServeSetup {
    /// Scenario name (snapshot key).
    pub scenario: String,
    /// The executable spec.
    pub spec: SimSpec,
    /// Accelerator clock in Hz (cycle → ms conversions).
    pub clock_hz: f64,
    /// NPU configuration name.
    pub npu: String,
    /// Per-tenant sealed images, in lineup order.
    pub seals: Vec<TenantSeal>,
    /// Streamed replacement images, index-aligned with `spec.swaps`.
    pub swaps: Vec<SwapSeal>,
}

impl ServeSetup {
    /// Converts a cycle count to simulated milliseconds.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 * 1000.0 / self.clock_hz
    }
}

fn bad(reason: String) -> SedaError {
    SedaError::Scenario(ScenarioError::BadSpec { reason })
}

/// Region lengths for a tenant's sealed image — the shared
/// [`seda_stream::model_lens`] geometry, so at-rest tenant seals and
/// streamed swap images agree on layout.
fn seal_lens(model: &seda_models::Model) -> Vec<usize> {
    seda_stream::model_lens(model)
}

fn seal_tenant(
    seed: u64,
    index: usize,
    model: &seda_models::Model,
) -> Result<TenantSeal, SedaError> {
    let mut key_rng = Rng::for_stream(seed, STREAM_KEYS + index as u64);
    let enc_key = key_rng.block();
    let mac_key = key_rng.block();
    let key_id = Rng::for_stream(seed, STREAM_KEY_IDS + index as u64).next_u64();
    // Index 2 of the detection matrix is the full SeDA configuration:
    // layer-granularity MACs, position-bound binding, per-model pads,
    // and the on-chip model root.
    let config = ProtectConfig::matrix()[2];
    let lens = seal_lens(model);
    let mut image = ProtectedImage::new(config, &lens, enc_key, mac_key)?;
    let mut payload_rng = Rng::for_stream(seed, STREAM_PAYLOADS + index as u64);
    let mut payloads = Vec::with_capacity(lens.len());
    for (layer, len) in lens.iter().enumerate() {
        let mut data = vec![0u8; *len];
        for chunk in data.chunks_mut(8) {
            let w = payload_rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        image.write_layer(layer, &data)?;
        payloads.push(data);
    }
    Ok(TenantSeal {
        name: model.name().to_owned(),
        key_id,
        image,
        payloads,
    })
}

/// Seals swap `index`'s replacement weights *through the provisioning
/// stream*: the plaintext is sealed into a chunked encrypt-then-MAC
/// stream under fresh keys at the next key epoch, then unsealed
/// frame-by-frame into the installed [`ProtectedImage`] — the exact
/// path a hot swap takes under serving traffic.
fn seal_swap(
    seed: u64,
    index: usize,
    tenant: usize,
    model: &seda_models::Model,
) -> Result<SwapSeal, SedaError> {
    let mut key_rng = Rng::for_stream(seed, STREAM_SWAP_KEYS + index as u64);
    let key_id = Rng::for_stream(seed, STREAM_SWAP_KEY_IDS + index as u64).next_u64();
    let stream_spec = seda_stream::StreamSpec {
        stream_id: key_id,
        // Tenants seal at epoch 1; a swap provisions at the next epoch,
        // so a replayed pre-swap stream is typed stale, not accepted.
        key_epoch: 2,
        config: ProtectConfig::matrix()[2],
        lens: seal_lens(model),
        enc_key: key_rng.block(),
        mac_key: key_rng.block(),
        transport_key: key_rng.block(),
    };
    let mut payload_rng = Rng::for_stream(seed, STREAM_SWAP_PAYLOADS + index as u64);
    let payloads: Vec<Vec<u8>> = stream_spec
        .lens
        .iter()
        .map(|&len| {
            let mut data = vec![0u8; len];
            for chunk in data.chunks_mut(8) {
                let w = payload_rng.next_u64().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
            data
        })
        .collect();
    let stream = seda_stream::seal(&stream_spec, &payloads)?;
    let image = seda_stream::unseal(&stream_spec, stream.bytes())?;
    seda_telemetry::counter_add("serve.swaps_streamed", 1);
    Ok(SwapSeal {
        tenant,
        key_id,
        image,
        blocks: stream_spec.total_blocks(),
    })
}

fn arrival_sim(serving: &ServingSpec, clock_hz: f64) -> ArrivalSim {
    let cycles_per_ms = clock_hz / 1000.0;
    match &serving.arrival {
        ArrivalSpec::OpenLoop {
            rate_rps,
            requests,
            burst,
            diurnal,
        } => ArrivalSim::OpenLoop {
            mean_cycles: clock_hz / rate_rps,
            requests: *requests,
            burst: burst.as_ref().map(|b| BurstSim {
                period_cycles: b.period_ms * cycles_per_ms,
                duty_pct: b.duty_pct,
                factor: b.factor,
            }),
            diurnal: diurnal.as_ref().map(|d| DiurnalSim {
                period_cycles: d.period_ms * cycles_per_ms,
                amplitude: d.amplitude,
            }),
        },
        ArrivalSpec::ClosedLoop {
            clients,
            think_ms,
            requests,
        } => ArrivalSim::ClosedLoop {
            clients: *clients,
            think_cycles: think_ms * cycles_per_ms,
            requests: *requests,
        },
    }
}

/// Grounds a scenario's `"serving"` block into a [`ServeSetup`].
///
/// Per-tenant service times come from the real pipeline: each tenant's
/// model runs `max_batch` back-to-back inferences under its own freshly
/// instantiated protection scheme (scenario DRAM override and verifier
/// model included), and the per-layer cycle lists become the tenant's
/// batch cost model. Tenant weights are sealed into independent
/// [`ProtectedImage`] key spaces as a side effect.
///
/// # Errors
///
/// Returns a scenario error when the scenario has no serving block or
/// fails validation, and propagates any pipeline failure.
pub fn build(scenario: &Scenario) -> Result<ServeSetup, SedaError> {
    scenario.validate()?;
    let serving = scenario
        .serving
        .as_ref()
        .ok_or_else(|| bad(format!("scenario {:?} has no serving block", scenario.name)))?;
    let npu = seda::scenario::npu_by_name(&scenario.npus[0])?;
    let max_batch = serving.max_batch.unwrap_or(1);
    let scheduler = match serving.scheduler_name().as_str() {
        "fcfs" => Scheduler::Fcfs,
        "rr" => Scheduler::Rr,
        _ => Scheduler::Edf {
            preempt: serving.preempt.unwrap_or(false),
        },
    };
    let verifier = scenario
        .verifier
        .as_ref()
        .map(|v| HashEngine::new(v.bytes_per_cycle, v.latency_cycles));
    let cycles_per_ms = npu.clock_hz / 1000.0;
    let cache = TraceCache::new();
    let dram_cfg = match &scenario.dram {
        Some(d) => d.apply(dram_config_for(&npu)),
        None => dram_config_for(&npu),
    };
    let profiles_for = |model: &seda_models::Model,
                        scheme_spec: &seda::scenario::SchemeSpec|
     -> Result<Vec<Vec<u64>>, SedaError> {
        let trace = cache.get_or_simulate(&npu, model);
        let mut scheme = scheme_spec.instantiate()?;
        let runs = try_run_trace_with_dram(
            &trace,
            &npu,
            scheme.as_mut(),
            verifier.as_ref(),
            max_batch,
            dram_cfg.clone(),
        )?;
        Ok(runs
            .iter()
            .map(|r| r.layers.iter().map(|l| l.cycles.max(1)).collect())
            .collect())
    };
    let mut tenants = Vec::with_capacity(serving.tenants.len());
    let mut seals = Vec::with_capacity(serving.tenants.len());
    for (index, t) in serving.tenants.iter().enumerate() {
        let model = t.workload.resolve()?;
        let profiles = profiles_for(&model, &t.scheme)?;
        let mut seal = seal_tenant(serving.seed, index, &model)?;
        seal.name.clone_from(&t.name);
        seals.push(seal);
        tenants.push(TenantSim {
            name: t.name.clone(),
            profiles,
            sla_cycles: t
                .sla_ms
                .map(|ms| (ms * cycles_per_ms).round().max(1.0) as u64),
            weight: t.weight.unwrap_or(1),
        });
        seda_telemetry::counter_add("serve.tenants_built", 1);
    }
    let mut swaps = Vec::new();
    let mut swap_seals = Vec::new();
    for (index, s) in serving.swaps.as_deref().unwrap_or(&[]).iter().enumerate() {
        let tenant = serving
            .tenants
            .iter()
            .position(|t| t.name.eq_ignore_ascii_case(&s.tenant))
            .ok_or_else(|| bad(format!("swap tenant {:?} not in lineup", s.tenant)))?;
        let model = match &s.workload {
            Some(w) => w.resolve()?,
            None => serving.tenants[tenant].workload.resolve()?,
        };
        // The replacement runs under the tenant's own protection scheme.
        let profiles = profiles_for(&model, &serving.tenants[tenant].scheme)?;
        swap_seals.push(seal_swap(serving.seed, index, tenant, &model)?);
        swaps.push(SwapSim {
            tenant,
            at_cycle: (s.at_ms * cycles_per_ms).round().max(1.0) as u64,
            profiles,
        });
    }
    Ok(ServeSetup {
        scenario: scenario.name.clone(),
        spec: SimSpec {
            seed: serving.seed,
            scheduler,
            replicas: serving.replicas.unwrap_or(1),
            max_batch,
            tenants,
            arrival: arrival_sim(serving, npu.clock_hz),
            swaps,
        },
        clock_hz: npu.clock_hz,
        npu: npu.name.clone(),
        seals,
        swaps: swap_seals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_models::zoo;

    #[test]
    fn seal_lens_are_block_aligned_and_bounded() {
        let model = zoo::lenet();
        let lens = seal_lens(&model);
        assert_eq!(lens.len(), model.layers().len());
        for len in lens {
            assert!((64..=4096 + 63).contains(&len), "{len}");
            assert_eq!(len % 64, 0);
        }
    }

    #[test]
    fn tenants_get_distinct_keys_and_isolated_images() {
        let model = zoo::lenet();
        let a = seal_tenant(7, 0, &model).expect("seal a");
        let b = seal_tenant(7, 1, &model).expect("seal b");
        assert_ne!(a.key_id, b.key_id, "key fingerprints must differ");
        // Same plaintext region lengths, different keys ⇒ different
        // ciphertext images.
        assert_eq!(a.image.total_len(), b.image.total_len());
        for layer in 0..a.image.layer_count() {
            assert_eq!(
                a.image.read_layer(layer).expect("a verifies"),
                a.payloads[layer]
            );
            assert_eq!(
                b.image.read_layer(layer).expect("b verifies"),
                b.payloads[layer]
            );
        }
    }

    #[test]
    fn sealed_payloads_differ_across_tenant_streams() {
        let model = zoo::lenet();
        let a = seal_tenant(7, 0, &model).expect("seal a");
        let b = seal_tenant(7, 1, &model).expect("seal b");
        assert_ne!(a.payloads[0], b.payloads[0]);
    }

    #[test]
    fn swap_seals_stream_in_under_fresh_keys() {
        let model = zoo::lenet();
        let tenant = seal_tenant(7, 0, &model).expect("tenant seal");
        let swap = seal_swap(7, 0, 0, &model).expect("swap seal");
        assert_ne!(
            swap.key_id, tenant.key_id,
            "the replacement must not reuse the tenant's key fingerprint"
        );
        // Same geometry, different keys: the streamed-in replacement is
        // a full image in its own key space and verifies end to end.
        assert_eq!(swap.image.total_len(), tenant.image.total_len());
        assert_eq!(swap.blocks as usize, swap.image.total_len() / 64);
        swap.image.read_model().expect("streamed image verifies");
        assert_ne!(
            swap.image.offchip_bytes(),
            tenant.image.offchip_bytes(),
            "fresh keys must change the ciphertext"
        );
    }
}
