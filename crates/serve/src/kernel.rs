//! The event-driven simulation kernel.
//!
//! A monotone virtual clock and a binary-heap event queue ordered by
//! `(time, rank, tie, seq)` — rank 0 layer-done events tie-broken by
//! NPU index, rank 1 arrivals tie-broken by issue id, rank 2 swap-due
//! events tie-broken by declaration index — so popping one cycle's
//! events yields exactly the shared phase order of
//! [`sched`](crate::sched). No wall clock appears anywhere; identical
//! specs produce identical outcomes on any machine, thread count, or
//! re-run.

use crate::arrivals::{open_loop_trace, Arrival};
use crate::sched::{Batch, Clients, Metrics, QueuedReq, SchedState};
use crate::spec::{ArrivalSim, Scheduler, SimOutcome, SimSpec};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled event. `Ord` is the heap contract: time, then rank
/// (layer-done before arrival), then tie (NPU index or issue id), then
/// seq — a total order, so heap pops are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    rank: u8,
    tie: u64,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// The running batch on this NPU finishes its current layer.
    LayerDone { npu: usize },
    /// A request arrives.
    Arrival { tenant: usize, client: Option<u32> },
    /// A scheduled hot model-swap becomes due.
    SwapDue { swap: usize },
}

/// The simulation engine state.
struct Engine<'a> {
    spec: &'a SimSpec,
    heap: BinaryHeap<Reverse<Event>>,
    npus: Vec<Option<Batch>>,
    state: SchedState,
    metrics: Metrics,
    clients: Option<Clients>,
    completed: u64,
    total: u64,
    /// Per-swap: the request has been processed and awaits cutover.
    swap_pending: Vec<bool>,
    /// Per-swap: the cutover has landed.
    swap_done: Vec<bool>,
}

impl Engine<'_> {
    fn push_arrival(&mut self, a: Arrival) {
        self.heap.push(Reverse(Event {
            time: a.cycle,
            rank: 1,
            tie: a.id,
            seq: a.id,
            kind: EventKind::Arrival {
                tenant: a.tenant,
                client: a.client,
            },
        }));
    }

    fn push_layer_done(&mut self, npu: usize, at: u64) {
        self.heap.push(Reverse(Event {
            time: at,
            rank: 0,
            tie: npu as u64,
            seq: 0,
            kind: EventKind::LayerDone { npu },
        }));
    }

    /// Phase-A handling of one layer boundary on `npu` at cycle `now`.
    fn layer_done(&mut self, npu: usize, now: u64) {
        self.metrics.event();
        let mut batch = self.npus[npu].take().expect("layer-done on an idle NPU");
        self.metrics.busy(npu, batch.current_layer());
        batch.next_layer += 1;
        if batch.done() {
            self.completed += batch.reqs.len() as u64;
            for req in &batch.reqs {
                self.metrics.complete(req, batch.tenant, now);
            }
            // Closed-loop re-issues happen in completion order; the
            // arrivals land strictly after `now`, so they cannot join
            // this cycle's already-popped arrival phase.
            if let Some(clients) = &mut self.clients {
                let next: Vec<Arrival> = batch
                    .reqs
                    .iter()
                    .filter_map(|req| clients.on_complete(req.client, now))
                    .collect();
                for a in next {
                    self.push_arrival(a);
                }
            }
        } else if matches!(self.spec.scheduler, Scheduler::Edf { preempt: true })
            && self.state.should_preempt(&batch)
        {
            self.state.park(batch);
        } else {
            let at = now + batch.current_layer();
            self.npus[npu] = Some(batch);
            self.push_layer_done(npu, at);
        }
    }

    /// Phase-B handling of one arrival at cycle `now`.
    fn arrive(&mut self, tenant: usize, id: u64, client: Option<u32>, now: u64) {
        self.metrics.event();
        let deadline = self.spec.tenants[tenant].deadline(now);
        self.state.enqueue(
            tenant,
            QueuedReq {
                id,
                arrival: now,
                deadline,
                client,
            },
        );
    }

    /// Whether the tenant has a batch in flight: running on any NPU or
    /// parked in the preemption pool.
    fn tenant_in_flight(&self, tenant: usize) -> bool {
        self.npus.iter().flatten().any(|b| b.tenant == tenant)
            || self.state.preempted.iter().any(|b| b.tenant == tenant)
    }

    /// Swap-phase cutover: every pending swap whose tenant has drained
    /// cuts over now, in declaration order — before this cycle's
    /// dispatch, so fresh batches already use the replacement profiles.
    fn cutover(&mut self, now: u64) {
        for i in 0..self.spec.swaps.len() {
            if !self.swap_pending[i] || self.swap_done[i] {
                continue;
            }
            let swap = &self.spec.swaps[i];
            if self.tenant_in_flight(swap.tenant) {
                continue;
            }
            self.state.swap_profiles(swap.tenant, swap.profiles.clone());
            self.metrics.swap(swap.tenant, swap.at_cycle, now);
            self.swap_done[i] = true;
        }
    }

    /// Phase-C dispatch over idle NPUs in index order.
    fn dispatch(&mut self, now: u64) {
        for npu in 0..self.npus.len() {
            if self.npus[npu].is_some() {
                continue;
            }
            let Some(batch) = self.state.dispatch(self.spec) else {
                break;
            };
            let at = now + batch.current_layer();
            self.npus[npu] = Some(batch);
            self.push_layer_done(npu, at);
        }
    }

    fn run(mut self) -> SimOutcome {
        while self.completed < self.total {
            let Some(&Reverse(first)) = self.heap.peek() else {
                // Nothing can make progress; only reachable through a
                // spec whose arrival process issues fewer requests than
                // `total`, which the generators rule out.
                break;
            };
            let now = first.time;
            // Pop the whole cycle: events emerge already phase-ordered
            // (layer-dones by NPU index, then arrivals by issue id), and
            // everything pushed during processing lands strictly later.
            while let Some(&Reverse(ev)) = self.heap.peek() {
                if ev.time != now {
                    break;
                }
                let Some(Reverse(ev)) = self.heap.pop() else {
                    break;
                };
                match ev.kind {
                    EventKind::LayerDone { npu } => self.layer_done(npu, now),
                    EventKind::Arrival { tenant, client } => {
                        self.arrive(tenant, ev.seq, client, now);
                    }
                    EventKind::SwapDue { swap } => {
                        self.metrics.event();
                        self.swap_pending[swap] = true;
                    }
                }
            }
            self.cutover(now);
            self.dispatch(now);
            self.metrics.sample(now, &self.state);
        }
        self.metrics.finish()
    }
}

/// Runs the event-driven kernel over a spec.
///
/// # Panics
///
/// Panics on structurally invalid specs (zero replicas or tenants, an
/// empty layer profile) — [`build`](crate::spec::build) and the oracle
/// generators never produce those.
pub fn simulate(spec: &SimSpec) -> SimOutcome {
    assert!(spec.replicas > 0, "need at least one replica");
    assert!(spec.max_batch > 0, "need a positive batch limit");
    assert!(!spec.tenants.is_empty(), "need at least one tenant");
    let mut engine = Engine {
        spec,
        heap: BinaryHeap::new(),
        npus: (0..spec.replicas).map(|_| None).collect(),
        state: SchedState::new(spec),
        metrics: Metrics::new(spec.tenants.len(), spec.replicas as usize),
        clients: None,
        completed: 0,
        total: spec.arrival.requests(),
        swap_pending: vec![false; spec.swaps.len()],
        swap_done: vec![false; spec.swaps.len()],
    };
    for (i, s) in spec.swaps.iter().enumerate() {
        engine.heap.push(Reverse(Event {
            time: s.at_cycle,
            rank: 2,
            tie: i as u64,
            seq: i as u64,
            kind: EventKind::SwapDue { swap: i },
        }));
    }
    match spec.arrival {
        ArrivalSim::OpenLoop { .. } => {
            for a in open_loop_trace(spec) {
                engine.push_arrival(a);
            }
        }
        ArrivalSim::ClosedLoop { .. } => {
            let (clients, initial) = Clients::new(spec);
            engine.clients = Some(clients);
            for a in initial {
                engine.push_arrival(a);
            }
        }
    }
    let outcome = engine.run();
    seda_telemetry::counter_add("serve.simulations", 1);
    seda_telemetry::record("serve.events_per_run", outcome.events);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TenantSim;

    fn tenant(name: &str, layers: Vec<u64>, sla: Option<u64>, weight: u64) -> TenantSim {
        TenantSim {
            name: name.to_owned(),
            profiles: vec![layers],
            sla_cycles: sla,
            weight,
        }
    }

    #[test]
    fn single_tenant_fcfs_completes_everything() {
        let spec = SimSpec {
            seed: 1,
            scheduler: Scheduler::Fcfs,
            replicas: 1,
            max_batch: 1,
            tenants: vec![tenant("a", vec![10, 10], None, 1)],
            arrival: ArrivalSim::OpenLoop {
                mean_cycles: 30.0,
                requests: 200,
                burst: None,
                diurnal: None,
            },
            swaps: vec![],
        };
        let out = simulate(&spec);
        assert_eq!(out.completions.len(), 200);
        assert_eq!(out.tenant_latency[0].count, 200);
        assert!(out.end_cycle > 0);
        // One replica serving 20-cycle jobs: busy time is exactly 20
        // cycles per request.
        assert_eq!(out.busy_cycles[0], 200 * 20);
        for w in out.completions.windows(2) {
            assert!(w[0].completion <= w[1].completion);
        }
    }

    #[test]
    fn closed_loop_caps_in_flight_at_clients() {
        let spec = SimSpec {
            seed: 5,
            scheduler: Scheduler::Fcfs,
            replicas: 2,
            max_batch: 1,
            tenants: vec![tenant("a", vec![50], None, 1)],
            arrival: ArrivalSim::ClosedLoop {
                clients: 3,
                think_cycles: 10.0,
                requests: 120,
            },
            swaps: vec![],
        };
        let out = simulate(&spec);
        assert_eq!(out.completions.len(), 120);
        // With 3 clients, the queue can never hold more than 3 requests.
        for &(_, depth) in &out.queue_trace {
            assert!(depth <= 3, "queue depth {depth} exceeds client count");
        }
    }

    #[test]
    fn edf_prefers_the_tight_sla_tenant() {
        // Both tenants flood the queue; tenant 0 has a tight SLA, so its
        // latency distribution must dominate tenant 1's.
        let spec = SimSpec {
            seed: 9,
            scheduler: Scheduler::Edf { preempt: false },
            replicas: 1,
            max_batch: 1,
            tenants: vec![
                tenant("tight", vec![40], Some(100), 1),
                tenant("loose", vec![40], None, 1),
            ],
            arrival: ArrivalSim::OpenLoop {
                mean_cycles: 30.0,
                requests: 400,
                burst: None,
                diurnal: None,
            },
            swaps: vec![],
        };
        let out = simulate(&spec);
        let tight = &out.tenant_latency[0];
        let loose = &out.tenant_latency[1];
        assert!(tight.count > 0 && loose.count > 0);
        assert!(
            tight.mean() < loose.mean(),
            "EDF must favour the SLA tenant: tight {} vs loose {}",
            tight.mean(),
            loose.mean()
        );
    }

    #[test]
    fn batching_reduces_total_busy_time() {
        let mk = |max_batch| SimSpec {
            seed: 3,
            scheduler: Scheduler::Fcfs,
            replicas: 1,
            max_batch,
            tenants: vec![TenantSim {
                name: "a".to_owned(),
                // Cold inference costs 100, steady-state repeats cost 10.
                profiles: vec![vec![100], vec![10], vec![10], vec![10]],
                sla_cycles: None,
                weight: 1,
            }],
            arrival: ArrivalSim::OpenLoop {
                mean_cycles: 5.0,
                requests: 300,
                burst: None,
                diurnal: None,
            },
            swaps: vec![],
        };
        let solo = simulate(&mk(1));
        let batched = simulate(&mk(4));
        assert_eq!(solo.completions.len(), 300);
        assert_eq!(batched.completions.len(), 300);
        assert!(
            batched.busy_cycles[0] < solo.busy_cycles[0],
            "batching amortizes the cold cost: {} vs {}",
            batched.busy_cycles[0],
            solo.busy_cycles[0]
        );
        assert!(
            batched.end_cycle < solo.end_cycle,
            "an overloaded queue drains faster with batching"
        );
    }

    #[test]
    fn swap_cuts_over_at_a_drained_boundary_and_reshapes_costs() {
        use crate::spec::SwapSim;
        // One tenant, 20-cycle jobs arriving sparsely; at cycle 1000 a
        // swap to 5-cycle jobs is requested. Every post-cutover batch
        // must run the replacement profile, in-flight work keeps its
        // admission-time cost, and the outcome records the cutover.
        let mk = |swaps: Vec<SwapSim>| SimSpec {
            seed: 11,
            scheduler: Scheduler::Fcfs,
            replicas: 1,
            max_batch: 1,
            tenants: vec![tenant("a", vec![20], None, 1)],
            arrival: ArrivalSim::OpenLoop {
                mean_cycles: 60.0,
                requests: 100,
                burst: None,
                diurnal: None,
            },
            swaps,
        };
        let plain = simulate(&mk(vec![]));
        let swapped = simulate(&mk(vec![SwapSim {
            tenant: 0,
            at_cycle: 1000,
            profiles: vec![vec![5]],
        }]));
        assert!(plain.swaps.is_empty());
        assert_eq!(swapped.swaps.len(), 1, "the swap must land");
        let cut = swapped.swaps[0];
        assert_eq!(cut.tenant, 0);
        assert_eq!(cut.requested, 1000);
        assert!(cut.cutover >= 1000, "cutover cannot precede the request");
        assert_eq!(swapped.completions.len(), 100);
        // Busy time shrinks: post-cutover requests cost 5, not 20.
        assert!(
            swapped.busy_cycles[0] < plain.busy_cycles[0],
            "replacement profile must be cheaper: {} vs {}",
            swapped.busy_cycles[0],
            plain.busy_cycles[0]
        );
        assert_eq!(swapped.events, plain.events + 1, "one swap-due event");
    }

    #[test]
    fn swap_waits_for_the_tenants_batches_to_drain() {
        use crate::spec::SwapSim;
        // Saturating arrivals: the single tenant always has a batch in
        // flight when the swap lands, so the cutover must wait for a
        // completion boundary — strictly after the request cycle.
        let spec = SimSpec {
            seed: 3,
            scheduler: Scheduler::Fcfs,
            replicas: 1,
            max_batch: 1,
            tenants: vec![tenant("a", vec![50], None, 1)],
            arrival: ArrivalSim::OpenLoop {
                mean_cycles: 10.0,
                requests: 200,
                burst: None,
                diurnal: None,
            },
            swaps: vec![SwapSim {
                tenant: 0,
                at_cycle: 999,
                profiles: vec![vec![10]],
            }],
        };
        let out = simulate(&spec);
        assert_eq!(out.swaps.len(), 1);
        assert!(
            out.swaps[0].cutover > 999,
            "a busy tenant defers the cutover, got {}",
            out.swaps[0].cutover
        );
    }

    #[test]
    fn preemption_only_changes_edf_runs_with_slack() {
        let mk = |preempt| SimSpec {
            seed: 21,
            scheduler: Scheduler::Edf { preempt },
            replicas: 1,
            max_batch: 2,
            tenants: vec![
                tenant("slow", vec![60, 60, 60], None, 2),
                tenant("fast", vec![15], Some(120), 1),
            ],
            arrival: ArrivalSim::OpenLoop {
                mean_cycles: 45.0,
                requests: 300,
                burst: None,
                diurnal: None,
            },
            swaps: vec![],
        };
        let plain = simulate(&mk(false));
        let preemptive = simulate(&mk(true));
        assert_eq!(plain.completions.len(), 300);
        assert_eq!(preemptive.completions.len(), 300);
        // Preemption lets the SLA tenant cut in at layer boundaries, so
        // its mean latency must not get worse.
        assert!(
            preemptive.tenant_latency[1].mean() <= plain.tenant_latency[1].mean(),
            "preemption must help the deadline tenant: {} vs {}",
            preemptive.tenant_latency[1].mean(),
            plain.tenant_latency[1].mean()
        );
    }
}
