//! Seeded SplitMix64 streams for the serving simulator.
//!
//! Same generator as the validation harness (reproducibility over
//! statistical quality), extended with the uniform-(0,1] and
//! exponential draws the arrival processes need. Every stream derives
//! from `(master seed, stream tag)` so arrival draws, per-client think
//! times, and tenant sealing keys never share state — the determinism
//! contract requires each consumer to advance its own stream only.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The derived sub-seed for `stream` under `seed` — one SplitMix64
    /// step over the combined value, so neighbouring streams are
    /// uncorrelated.
    pub fn sub_seed(seed: u64, stream: u64) -> u64 {
        let mut probe = Rng::new(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        probe.next_u64()
    }

    /// A generator for one derived stream.
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        Self::new(Self::sub_seed(seed, stream))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Modulo bias is irrelevant at these bounds (all ≪ 2^32).
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in the half-open interval `(0, 1]` — never zero, so
    /// it is safe under `ln()`.
    pub fn unit_open(&mut self) -> f64 {
        // 53 mantissa bits, shifted into (0, 1] by the +1.
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// One exponential draw with the given mean (inverse-CDF over
    /// [`unit_open`](Self::unit_open)), in the mean's unit.
    pub fn exp(&mut self, mean: f64) -> f64 {
        -self.unit_open().ln() * mean
    }

    /// A random 16-byte block (AES key material for tenant sealing).
    pub fn block(&mut self) -> [u8; 16] {
        let a = self.next_u64().to_le_bytes();
        let b = self.next_u64().to_le_bytes();
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&a);
        out[8..].copy_from_slice(&b);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_distinct() {
        let seeds: Vec<u64> = (0..64).map(|s| Rng::sub_seed(1, s)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn unit_open_stays_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let u = rng.unit_open();
            assert!(u > 0.0 && u <= 1.0, "{u}");
        }
    }

    #[test]
    fn exponential_draws_are_positive() {
        let mut rng = Rng::new(9);
        for _ in 0..10_000 {
            assert!(rng.exp(25.0) >= 0.0);
        }
    }
}
