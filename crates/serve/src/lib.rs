//! Deterministic multi-tenant NPU serving simulator.
//!
//! This crate answers the serving-side question the per-inference
//! pipeline cannot: what latency do tenants actually see when their
//! SeDA-protected models share an NPU fleet under load? It is a
//! discrete-event simulation with a monotone virtual clock — no wall
//! clock, no OS randomness — so a `(scenario, seed)` pair produces the
//! same outcome byte-for-byte on any machine, thread count, or re-run.
//!
//! The moving parts:
//!
//! - [`spec::build`] grounds a scenario's `"serving"` block: each
//!   tenant's per-layer service times come from the real
//!   [`pipeline`](seda::pipeline) simulator under the tenant's own
//!   protection scheme, and each tenant's weights are sealed into an
//!   independent [`ProtectedImage`](seda_adversary::ProtectedImage)
//!   key/version-number space.
//! - [`arrivals`] generates seeded open-loop Poisson traffic (with
//!   deterministic burst/diurnal modulation) or closed-loop client
//!   populations with exponential think times.
//! - [`kernel::simulate`] is the event-driven kernel: a binary-heap
//!   event queue with stable tie-breaking executes the shared
//!   three-phase cycle contract of [`sched`].
//! - [`reference::simulate_stepped`] is the brute-force 1-cycle
//!   time-stepped kernel the differential serving oracle replays the
//!   same specs through, requiring bit-identical [`SimOutcome`]s.
//! - [`report::ServeReport`] turns an outcome into per-tenant
//!   p50/p95/p99 latency, SLA violations, and utilization, renders the
//!   human capacity report, and emits the stable `seda-serve/v1`
//!   snapshot that golden scenarios pin.
//!
//! ```no_run
//! let scenario = seda::scenario::load("serve_mix").unwrap();
//! let run = seda_serve::serve_scenario(&scenario).unwrap();
//! assert_eq!(run.report.completed, run.report.requests);
//! ```

pub mod arrivals;
pub mod kernel;
pub mod reference;
pub mod report;
pub mod rng;
pub mod sched;
pub mod spec;

pub use arrivals::{open_loop_trace, Arrival};
pub use kernel::simulate;
pub use reference::simulate_stepped;
pub use report::{NpuReport, ServeFailure, ServeReport, SwapReport, TenantReport, SCHEMA};
pub use rng::Rng;
pub use spec::{
    build, ArrivalSim, BurstSim, Completion, DiurnalSim, Scheduler, ServeSetup, SimOutcome,
    SimSpec, SwapOutcome, SwapSeal, SwapSim, TenantSeal, TenantSim,
};

use seda::scenario::Scenario;
use seda::SedaError;

/// A fully executed serving run: the grounded setup, the raw kernel
/// outcome, and the summarized report.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// The grounded simulation input.
    pub setup: ServeSetup,
    /// The raw kernel outcome (the oracle-comparable surface).
    pub outcome: SimOutcome,
    /// The summarized, human- and snapshot-facing report.
    pub report: ServeReport,
}

impl ServeRun {
    /// Violated `expect` entries from the scenario's serving block, in
    /// declaration order; empty when the scenario declares none.
    pub fn failures(&self, scenario: &Scenario) -> Vec<ServeFailure> {
        scenario
            .serving
            .as_ref()
            .and_then(|s| s.expect.as_deref())
            .map(|e| self.report.check_expectations(e))
            .unwrap_or_default()
    }
}

/// Grounds and executes a scenario's serving block through the
/// event-driven kernel.
///
/// # Errors
///
/// Returns a scenario error when the scenario has no serving block or
/// fails validation, and propagates any pipeline failure from grounding.
pub fn serve_scenario(scenario: &Scenario) -> Result<ServeRun, SedaError> {
    let setup = build(scenario)?;
    let outcome = simulate(&setup.spec);
    let report = ServeReport::new(&setup, &outcome);
    Ok(ServeRun {
        setup,
        outcome,
        report,
    })
}
