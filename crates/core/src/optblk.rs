//! SecureLoop-style search for the optimal authentication-block size
//! (*optBlk*, paper §III-C).
//!
//! For each layer the search scores candidate granularities against the
//! layer's tile geometry:
//!
//! * **redundant authentication** — halo rows shared by neighbouring
//!   strips are re-verified on each strip; coarse blocks round that halo
//!   up to whole blocks (intra-layer tiling overlap cost);
//! * **alignment overfetch** — runs that start or end inside a block drag
//!   the rest of the block through the verifier (inter-layer pattern
//!   cost); and
//! * **tag bookkeeping** — one tag fold per block, so tiny blocks cost
//!   hash-engine work.
//!
//! The granularity minimizing the sum is the layer's optBlk. SeDA's layer
//! MAC then folds those block tags, so the choice never adds off-chip
//! traffic; the cost function measures on-chip verifier work plus the
//! bytes a block-granular verifier would have to touch.

use seda_models::Layer;
use seda_protect::layout::MAC_BYTES;
use seda_scalesim::{plan_layer, LayerGeometry, NpuConfig, TilePlan};
use serde::{Deserialize, Serialize};

/// Candidate granularities the search sweeps.
pub const CANDIDATES: [u64; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// Cost decomposition of one candidate granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GranularityCost {
    /// Candidate block size in bytes.
    pub granularity: u64,
    /// Bytes re-verified due to strip-halo overlap.
    pub redundant_auth: u64,
    /// Bytes dragged in by run/block misalignment.
    pub overfetch: u64,
    /// Tag bookkeeping bytes (8 B per block hashed).
    pub tag_cost: u64,
}

impl GranularityCost {
    /// Total cost in byte-equivalents.
    pub fn total(&self) -> u64 {
        self.redundant_auth + self.overfetch + self.tag_cost
    }
}

/// The search result for one layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptBlkChoice {
    /// Layer name.
    pub layer: String,
    /// The winning granularity.
    pub granularity: u64,
    /// Cost of every candidate, in sweep order.
    pub candidates: Vec<GranularityCost>,
}

impl OptBlkChoice {
    /// Cost of the winning candidate.
    pub fn best_cost(&self) -> u64 {
        // Infallible: `search_layer` picks `granularity` out of
        // `candidates`, so the winner is always present.
        #[allow(clippy::expect_used)]
        let cost = self
            .candidates
            .iter()
            .find(|c| c.granularity == self.granularity)
            .map(GranularityCost::total)
            .expect("winner is among candidates");
        cost
    }
}

/// Average extra bytes a run of `len` drags in at granularity `g`, with
/// the run's phase uniform on the 64 B grid (`g − 64` in expectation).
fn run_overfetch(g: u64) -> u64 {
    g.saturating_sub(64)
}

/// Scores one candidate granularity against a layer's tile plan.
pub fn score(geometry: &LayerGeometry, plan: &TilePlan, g: u64) -> GranularityCost {
    // Halo bytes shared between consecutive strips, re-verified per strip.
    let halo_rows = geometry
        .in_rows_for(plan.out_rows_per_strip)
        .saturating_sub(plan.out_rows_per_strip * geometry.stride);
    let halo_bytes = halo_rows * geometry.in_row_bytes;
    let redundant_auth = plan.strips.saturating_sub(1) * halo_bytes.div_ceil(g) * g;

    // Run census: ifmap strips, filter chunks, ofmap runs.
    let ifmap_runs = plan.strips
        * match plan.schedule {
            seda_scalesim::Schedule::IfmapResident => 1,
            _ => plan.chunks,
        };
    let filter_runs = plan.chunks
        * match plan.schedule {
            seda_scalesim::Schedule::IfmapResident | seda_scalesim::Schedule::OutputResident => {
                plan.strips
            }
            seda_scalesim::Schedule::FilterResident => 1,
        };
    let ofmap_runs = if plan.chunk_channels == geometry.out_channels {
        plan.strips
    } else {
        geometry.out_rows * geometry.out_row_pixels * plan.chunks
    };
    let runs = ifmap_runs + filter_runs + ofmap_runs;
    let overfetch = runs * run_overfetch(g);

    // Hash-engine bookkeeping: one 8 B tag folded per block of traffic.
    let traffic = plan.traffic.total();
    let tag_cost = traffic.div_ceil(g) * MAC_BYTES;

    GranularityCost {
        granularity: g,
        redundant_auth,
        overfetch,
        tag_cost,
    }
}

/// Runs the optBlk search for one layer on `cfg`.
pub fn search_layer(cfg: &NpuConfig, layer: &Layer) -> OptBlkChoice {
    let plan = plan_layer(cfg, layer);
    let geometry = LayerGeometry::of(layer);
    let candidates: Vec<GranularityCost> = CANDIDATES
        .iter()
        .map(|&g| score(&geometry, &plan, g))
        .collect();
    // Infallible: `candidates` maps over the non-empty `CANDIDATES` const.
    #[allow(clippy::expect_used)]
    let granularity = candidates
        .iter()
        .min_by_key(|c| (c.total(), c.granularity))
        .expect("non-empty candidates")
        .granularity;
    OptBlkChoice {
        layer: layer.name.clone(),
        granularity,
        candidates,
    }
}

/// Runs the search for every layer of a model.
pub fn search_model(cfg: &NpuConfig, model: &seda_models::Model) -> Vec<OptBlkChoice> {
    model
        .layers()
        .iter()
        .map(|l| search_layer(cfg, l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_models::zoo;

    #[test]
    fn search_explores_all_candidates() {
        let cfg = NpuConfig::edge();
        let layer = &zoo::alexnet().layers()[0].clone();
        let choice = search_layer(&cfg, layer);
        assert_eq!(choice.candidates.len(), CANDIDATES.len());
        assert!(CANDIDATES.contains(&choice.granularity));
    }

    #[test]
    fn winner_minimizes_total_cost() {
        let cfg = NpuConfig::edge();
        for layer in zoo::resnet18().layers() {
            let choice = search_layer(&cfg, layer);
            let best = choice.best_cost();
            for c in &choice.candidates {
                assert!(best <= c.total(), "{}: {:?}", layer.name, c);
            }
        }
    }

    #[test]
    fn tag_cost_decreases_with_granularity() {
        let cfg = NpuConfig::edge();
        let layer = &zoo::yolo_tiny().layers()[1].clone();
        let choice = search_layer(&cfg, layer);
        for w in choice.candidates.windows(2) {
            assert!(w[1].tag_cost <= w[0].tag_cost);
            assert!(w[1].overfetch >= w[0].overfetch);
        }
    }

    #[test]
    fn streaming_layers_prefer_coarse_blocks() {
        // AlexNet's fc6 weights stream as a handful of giant runs: the tag
        // bookkeeping dominates and coarse blocks win.
        let cfg = NpuConfig::server();
        let layer = zoo::alexnet()
            .layers()
            .iter()
            .find(|l| l.name == "fc6")
            .cloned()
            .expect("fc6 exists");
        let choice = search_layer(&cfg, &layer);
        assert!(
            choice.granularity >= 512,
            "streaming layer picked {}",
            choice.granularity
        );
    }

    #[test]
    fn tiny_layers_prefer_fine_blocks() {
        // LeNet's first conv moves a few KB in three runs: overfetch
        // dominates and the finest candidate wins.
        let cfg = NpuConfig::server();
        let layer = &zoo::lenet().layers()[0].clone();
        let choice = search_layer(&cfg, layer);
        assert!(choice.granularity <= 128, "picked {}", choice.granularity);
    }

    #[test]
    fn model_search_covers_every_layer() {
        let cfg = NpuConfig::edge();
        let m = zoo::mobilenet();
        let choices = search_model(&cfg, &m);
        assert_eq!(choices.len(), m.layers().len());
    }
}
