//! The paper's headline experiments: normalized memory traffic (Fig. 5)
//! and normalized performance (Fig. 6) across the 13 workloads and the
//! five protection schemes, on both NPUs.

use crate::pipeline::RunResult;
use crate::sweep::{Sweep, SweepResults, SweepStats};
use seda_dram::DramConfig;
use seda_models::{zoo, Model};
use seda_scalesim::NpuConfig;
use serde::{Deserialize, Serialize};

/// The scheme lineup of Figs. 5-6, baseline first.
pub fn scheme_names() -> Vec<&'static str> {
    vec![
        "baseline", "SGX-64B", "SGX-512B", "MGX-64B", "MGX-512B", "SeDA",
    ]
}

/// One scheme's outcome on one workload, normalized to the baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeOutcome {
    /// Scheme label.
    pub scheme: String,
    /// Total traffic relative to the unprotected baseline (Fig. 5 y-axis).
    pub traffic_norm: f64,
    /// Runtime relative to the unprotected baseline (Fig. 6 y-axis,
    /// expressed as slowdown: 1.0 = baseline speed).
    pub perf_norm: f64,
    /// Raw run result.
    pub run: RunResult,
}

/// All schemes' outcomes on one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadEval {
    /// Workload label (paper's short name).
    pub workload: String,
    /// Outcomes in lineup order (baseline first).
    pub outcomes: Vec<SchemeOutcome>,
}

/// A full Fig. 5/6 evaluation on one NPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluation {
    /// NPU configuration name.
    pub npu: String,
    /// Per-workload results.
    pub workloads: Vec<WorkloadEval>,
}

impl Evaluation {
    /// Arithmetic-mean normalized traffic per scheme (the "avg" bar group
    /// of Fig. 5).
    pub fn mean_traffic(&self) -> Vec<(String, f64)> {
        self.mean_of(|o| o.traffic_norm)
    }

    /// Arithmetic-mean normalized runtime per scheme (Fig. 6's average).
    pub fn mean_perf(&self) -> Vec<(String, f64)> {
        self.mean_of(|o| o.perf_norm)
    }

    fn mean_of(&self, f: impl Fn(&SchemeOutcome) -> f64) -> Vec<(String, f64)> {
        // Label-driven, not pinned to the Fig. 5/6 lineup: custom scheme
        // sets (scenario files, granularity ablations) average the same
        // way. Workloads in one evaluation share a scheme axis, so the
        // first workload's outcome labels are the evaluation's labels.
        let n = self.workloads.len() as f64;
        let Some(first) = self.workloads.first() else {
            return Vec::new();
        };
        first
            .outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let sum: f64 = self.workloads.iter().map(|w| f(&w.outcomes[i])).sum();
                (o.scheme.clone(), sum / n)
            })
            .collect()
    }
}

/// Evaluates `models` under the full scheme lineup on `npu`.
///
/// Runs on the [`Sweep`] engine: each (NPU, model) trace is simulated
/// exactly once and shared across all six schemes, and points execute in
/// parallel with results in deterministic lineup order.
pub fn evaluate(npu: &NpuConfig, models: &[Model]) -> Evaluation {
    evaluate_with_stats(npu, models).0
}

/// [`evaluate`], additionally reporting trace-cache statistics — the
/// number of `simulate_model` calls the sweep actually performed.
pub fn evaluate_with_stats(npu: &NpuConfig, models: &[Model]) -> (Evaluation, SweepStats) {
    let results = lineup_sweep(std::slice::from_ref(npu), models).run();
    (evaluation_of(&results, 0), results.stats)
}

/// Evaluates `models` under the full lineup on several NPUs as *one*
/// parallel sweep — all points share a thread pool and a trace cache, so
/// this is the fastest way to produce the paper's two-NPU headline data.
/// Returns one [`Evaluation`] per NPU, in input order.
pub fn evaluate_suites(npus: &[NpuConfig], models: &[Model]) -> Vec<Evaluation> {
    evaluate_suites_with_stats(npus, models).0
}

/// [`evaluate_suites`], additionally reporting trace-cache statistics for
/// the whole multi-NPU sweep — the counters `sweep_bench` records in
/// `BENCH_sweep.json` to track the engine's reuse rate PR over PR.
pub fn evaluate_suites_with_stats(
    npus: &[NpuConfig],
    models: &[Model],
) -> (Vec<Evaluation>, SweepStats) {
    let results = lineup_sweep(npus, models).run();
    let evals = evaluations_of(&results);
    (evals, results.stats)
}

/// [`evaluate_suites`] with a per-NPU DRAM configuration override — the
/// full lineup evaluated on a perturbed memory system. The golden-figure
/// sensitivity self-tests use this to show that a one-cycle DRAM timing
/// change is visible in the pinned Fig. 5/6 aggregates.
pub fn evaluate_suites_dram_mapped(
    npus: &[NpuConfig],
    models: &[Model],
    map: impl Fn(&NpuConfig) -> DramConfig + Send + Sync + 'static,
) -> Vec<Evaluation> {
    let results = lineup_sweep(npus, models).dram_map(map).run();
    evaluations_of(&results)
}

/// Normalizes a completed [`SweepResults`] into one [`Evaluation`] per
/// NPU, taking all labels from the sweep itself.
///
/// This is the generic form behind [`evaluate_suites`]: it works for any
/// scheme set (the declarative scenario engine routes custom lineups and
/// cache-varied schemes through it), with the sweep's **first scheme** as
/// the normalization baseline. For the standard lineup the output is
/// bit-identical to [`evaluate_suites`].
///
/// # Panics
///
/// Panics if the sweep has a failed point or an empty scheme axis; check
/// [`SweepResults::failures`] first for fault-tolerant handling.
pub fn evaluations_of(results: &SweepResults) -> Vec<Evaluation> {
    let (n_npus, _, _) = results.shape();
    (0..n_npus).map(|ni| evaluation_of(results, ni)).collect()
}

/// Like [`evaluations_of`], but tolerant of failed points: a workload is
/// included only when *every* scheme point for it on that NPU succeeded
/// (normalization needs the baseline, and the mean helpers need the
/// rectangular all-schemes-per-workload invariant). An NPU whose
/// workloads all failed yields an evaluation with an empty `workloads`
/// list — callers render what survived and report the rest through the
/// sweep's [`FailureReport`](crate::resilience::FailureReport).
pub fn partial_evaluations_of(results: &SweepResults) -> Vec<Evaluation> {
    let (n_npus, n_models, n_schemes) = results.shape();
    (0..n_npus)
        .map(|ni| Evaluation {
            npu: results.npu_labels()[ni].clone(),
            workloads: (0..n_models)
                .filter(|&mi| (0..n_schemes).all(|si| results.outcome(ni, mi, si).is_ok()))
                .map(|mi| workload_eval(results, ni, mi))
                .collect(),
        })
        .collect()
}

fn lineup_sweep(npus: &[NpuConfig], models: &[Model]) -> Sweep {
    Sweep::new()
        .npus(npus.iter().cloned())
        .models(models.iter().cloned())
        .schemes(scheme_names())
}

fn workload_eval(results: &SweepResults, ni: usize, mi: usize) -> WorkloadEval {
    let (_, _, n_schemes) = results.shape();
    let base = results.at(ni, mi, 0);
    let (t0, c0) = (base.traffic.total() as f64, base.total_cycles as f64);
    let outcomes = (0..n_schemes)
        .map(|si| {
            let run = results.at(ni, mi, si);
            SchemeOutcome {
                scheme: results.scheme_labels()[si].clone(),
                traffic_norm: run.traffic.total() as f64 / t0,
                perf_norm: run.total_cycles as f64 / c0,
                run: run.clone(),
            }
        })
        .collect();
    WorkloadEval {
        workload: results.model_labels()[mi].clone(),
        outcomes,
    }
}

fn evaluation_of(results: &SweepResults, ni: usize) -> Evaluation {
    let (_, n_models, n_schemes) = results.shape();
    assert!(n_schemes > 0, "an evaluation needs at least one scheme");
    Evaluation {
        npu: results.npu_labels()[ni].clone(),
        workloads: (0..n_models)
            .map(|mi| workload_eval(results, ni, mi))
            .collect(),
    }
}

/// Evaluates the paper's full 13-workload suite on `npu` (Figs. 5-6).
pub fn evaluate_paper_suite(npu: &NpuConfig) -> Evaluation {
    evaluate(npu, &zoo::all_models())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_evaluations_drop_only_the_poisoned_workloads() {
        use crate::resilience::PointContext;
        use crate::sweep::Sweep;
        use std::sync::Arc;
        // Fail exactly LeNet's SeDA point: LeNet loses its scheme row
        // and drops out of the means; DLRM survives untouched.
        let results = Sweep::new()
            .npu(NpuConfig::edge())
            .models([zoo::lenet(), zoo::dlrm()])
            .schemes(["baseline", "SeDA"])
            .fault_hook(Arc::new(|ctx: &PointContext| {
                if ctx.model == "let" && ctx.scheme == "SeDA" {
                    Err(crate::error::SedaError::InvalidSpec {
                        reason: "injected".to_owned(),
                    })
                } else {
                    Ok(())
                }
            }))
            .run();
        let evals = partial_evaluations_of(&results);
        assert_eq!(evals.len(), 1);
        assert_eq!(evals[0].workloads.len(), 1, "lenet must drop out");
        assert_eq!(evals[0].workloads[0].workload, "dlrm");
        assert_eq!(evals[0].workloads[0].outcomes.len(), 2, "full scheme row");
        // On a green sweep, partial and strict evaluations agree.
        let green = Sweep::new()
            .npu(NpuConfig::edge())
            .models([zoo::lenet(), zoo::dlrm()])
            .schemes(["baseline", "SeDA"])
            .run();
        let partial = partial_evaluations_of(&green);
        let strict = evaluations_of(&green);
        assert_eq!(partial.len(), strict.len());
        for (p, s) in partial.iter().zip(&strict) {
            assert_eq!(p.workloads.len(), s.workloads.len());
            for (pw, sw) in p.workloads.iter().zip(&s.workloads) {
                assert_eq!(pw.workload, sw.workload);
                for (po, so) in pw.outcomes.iter().zip(&sw.outcomes) {
                    assert_eq!(po.scheme, so.scheme);
                    assert_eq!(po.run, so.run, "partial must not perturb results");
                }
            }
        }
    }

    #[test]
    fn small_suite_orders_schemes_correctly() {
        // LeNet + DLRM keep the test fast while exercising conv and GEMM.
        let models = vec![zoo::lenet(), zoo::dlrm()];
        let eval = evaluate(&NpuConfig::edge(), &models);
        for w in &eval.workloads {
            let get = |name: &str| {
                w.outcomes
                    .iter()
                    .find(|o| o.scheme == name)
                    .map(|o| o.traffic_norm)
                    .expect("scheme present")
            };
            assert_eq!(get("baseline"), 1.0);
            assert!(get("SGX-64B") > get("MGX-64B"), "{}", w.workload);
            assert!(get("MGX-64B") > get("SeDA"), "{}", w.workload);
            assert!(get("SeDA") < 1.01, "{}", w.workload);
        }
    }

    #[test]
    fn means_cover_all_schemes() {
        let eval = evaluate(&NpuConfig::edge(), &[zoo::lenet()]);
        assert_eq!(eval.mean_traffic().len(), 6);
        assert_eq!(eval.mean_perf().len(), 6);
    }

    #[test]
    fn evaluate_simulates_each_workload_exactly_once() {
        // The Fig. 5/6 path must run tiling + burst generation once per
        // distinct (NPU, model) pair, not once per scheme.
        let models = vec![zoo::lenet(), zoo::dlrm()];
        let (_, stats) = evaluate_with_stats(&NpuConfig::edge(), &models);
        assert_eq!(stats.trace_misses, models.len() as u64);
        assert_eq!(
            stats.trace_hits,
            (models.len() * (scheme_names().len() - 1)) as u64
        );
    }

    #[test]
    fn evaluations_of_uses_sweep_labels_for_custom_schemes() {
        // Cache-varied BlockMac instances all *name* themselves
        // "SGX-64B"; the evaluation must carry the sweep labels instead,
        // or custom lineups would collapse into indistinguishable columns.
        use seda_protect::{BlockMacKind, BlockMacScheme, PROTECTED_BYTES};
        let results = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .scheme("baseline")
            .scheme_with("SGX-64B+tiny", || {
                Box::new(BlockMacScheme::with_caches(
                    BlockMacKind::Sgx,
                    64,
                    PROTECTED_BYTES,
                    2 << 10,
                    4 << 10,
                ))
            })
            .run();
        let evals = evaluations_of(&results);
        assert_eq!(evals.len(), 1);
        let outcomes = &evals[0].workloads[0].outcomes;
        assert_eq!(outcomes[0].scheme, "baseline");
        assert_eq!(outcomes[1].scheme, "SGX-64B+tiny");
        assert_eq!(outcomes[0].traffic_norm, 1.0);
        let means = evals[0].mean_traffic();
        assert_eq!(means[1].0, "SGX-64B+tiny");
    }

    #[test]
    fn every_lineup_name_resolves_in_the_registry() {
        for name in scheme_names() {
            let scheme = seda_protect::scheme_by_name(name)
                .unwrap_or_else(|| panic!("{name} missing from registry"));
            assert_eq!(scheme.name(), name, "registry must echo the lineup name");
        }
    }
}
