//! The two-time-pad attack that version-number management exists to
//! prevent.
//!
//! CTR-mode security collapses if a `(PA, VN)` pair repeats under one key:
//! the two ciphertexts share a pad, so `C₁ ⊕ C₂ = P₁ ⊕ P₂` — and with
//! sparse DNN tensors (many zero bytes), `P₁ ⊕ P₂` directly *is* the other
//! plaintext wherever either byte is zero. This module demonstrates the
//! break against a buggy VN manager that reuses a version after rollover,
//! and shows that [`seda_protect::OnChipVn`]'s monotone epoch counter
//! never produces the colliding pair.
//!
//! The quantitative defense margin: a 56-bit VN at one write per block per
//! layer per inference outlives any realistic deployment (see
//! [`inferences_until_overflow`]).

use seda_crypto::ctr::CounterSeed;
use seda_crypto::otp::{BandwidthAwareOtp, OtpStrategy};

/// Outcome of mounting the two-time-pad attack.
#[derive(Debug, Clone, PartialEq)]
pub struct PadReuseOutcome {
    /// XOR of the two observed ciphertexts (`= P₁ ⊕ P₂` on pad reuse).
    pub xor_of_plaintexts: Vec<u8>,
    /// Bytes of the second plaintext recovered via zero bytes in the first.
    pub recovered_bytes: usize,
    /// Fraction of the second plaintext recovered correctly.
    pub accuracy: f64,
    /// Whether the pads actually collided.
    pub success: bool,
}

/// Mounts the attack: encrypt `p1` and `p2` to the same address under
/// `vn1`/`vn2`, XOR the ciphertexts, and use `p1`'s known-zero positions
/// to read `p2`.
pub fn mount_pad_reuse(
    key: [u8; 16],
    pa: u64,
    vn1: u64,
    vn2: u64,
    p1: &[u8],
    p2: &[u8],
) -> PadReuseOutcome {
    assert_eq!(p1.len(), p2.len(), "plaintexts must match in length");
    let enc = BandwidthAwareOtp::new(key);
    let mut c1 = p1.to_vec();
    enc.apply(CounterSeed::new(pa, vn1), &mut c1);
    let mut c2 = p2.to_vec();
    enc.apply(CounterSeed::new(pa, vn2), &mut c2);

    let xor_of_plaintexts: Vec<u8> = c1.iter().zip(c2.iter()).map(|(a, b)| a ^ b).collect();
    // Where the attacker knows p1 is zero (sparse weights), the XOR leaks
    // p2 directly.
    let mut recovered_bytes = 0usize;
    let mut correct = 0usize;
    for ((&x, &a), &b) in xor_of_plaintexts.iter().zip(p1.iter()).zip(p2.iter()) {
        if a == 0 {
            recovered_bytes += 1;
            if x == b {
                correct += 1;
            }
        }
    }
    let accuracy = if recovered_bytes == 0 {
        0.0
    } else {
        correct as f64 / recovered_bytes as f64
    };
    PadReuseOutcome {
        xor_of_plaintexts,
        recovered_bytes,
        accuracy,
        success: recovered_bytes > 0 && accuracy > 0.99,
    }
}

/// Number of complete inferences a `vn_bits`-wide activation counter
/// supports before overflow, for a model of `layers` layers (one buffer
/// write per layer per inference, as `seda_protect::OnChipVn` assigns them).
pub fn inferences_until_overflow(vn_bits: u32, layers: u32) -> u64 {
    let max = if vn_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << vn_bits) - 1
    };
    max / u64::from(layers.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sealing::synthetic_weights;
    use seda_protect::OnChipVn;

    #[test]
    fn reused_vn_leaks_sparse_plaintext() {
        let p1 = synthetic_weights(1, 512); // ~30% zero bytes
        let p2 = synthetic_weights(2, 512);
        let out = mount_pad_reuse([9; 16], 0x4000, 7, 7, &p1, &p2);
        assert!(out.success, "identical VNs must leak");
        assert!(out.recovered_bytes > 100);
        assert!((out.accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_vns_leak_nothing() {
        let p1 = synthetic_weights(1, 512);
        let p2 = synthetic_weights(2, 512);
        let out = mount_pad_reuse([9; 16], 0x4000, 7, 8, &p1, &p2);
        assert!(!out.success, "fresh VN must not leak: {}", out.accuracy);
        assert!(out.accuracy < 0.05);
    }

    #[test]
    fn onchip_vn_never_produces_the_colliding_pair() {
        // Sweep many inferences; the activation VN for a fixed buffer slot
        // is strictly increasing, so the attack precondition never holds.
        let mut gen = OnChipVn::new(12, 1);
        let mut last = 0u64;
        for _ in 0..1000 {
            gen.begin_inference();
            let vn = gen.activation_vn(4);
            assert!(vn > last, "VN must be strictly monotone");
            last = vn;
        }
    }

    #[test]
    fn fifty_six_bit_counters_outlive_deployments() {
        // ResNet-18 at 1000 inferences/second: > 100k years to overflow.
        let inferences = inferences_until_overflow(56, 18);
        let seconds = inferences / 1000;
        let years = seconds / (365 * 24 * 3600);
        assert!(years > 100_000, "56-bit VN lasts {years} years");
    }

    #[test]
    fn tiny_counters_do_overflow() {
        // An 8-bit counter on a 16-layer model dies after 15 inferences —
        // why real schemes carry wide counters or re-encrypt on rollover.
        assert_eq!(inferences_until_overflow(8, 16), 15);
    }
}
