//! The Re-Permutation Attack (RePA) on XOR-folded layer MACs and SeDA's
//! position-binding defense (paper Algorithm 2).
//!
//! XOR-MACs are commutative: a layer MAC built by XOR-folding per-block
//! MACs is invariant under any reordering of the blocks. An attacker who
//! shuffles a layer's ciphertext blocks (together with their stored block
//! MACs) passes a layer-level check whose block MACs hash only the
//! ciphertext — while CTR decryption, which is address-bound, now produces
//! garbage activations. Binding `layer_id`, `fmap_idx`, and `blk_idx` into
//! each block MAC (Algorithm 2 lines 7-8) makes the fold order-sensitive
//! in effect, because a moved block's recomputed MAC no longer matches the
//! stored one.

use seda_crypto::ctr::{AesCtr, CounterSeed};
use seda_crypto::mac::{xor_fold, BlockPosition, MacTag, PositionBoundMac, PositionlessMac};

/// How block MACs are keyed to their location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacBinding {
    /// Hash of the ciphertext only — vulnerable to RePA.
    CiphertextOnly,
    /// SeDA's defense: ciphertext, address, version, and position fields.
    PositionBound,
}

/// A protected layer image: encrypted blocks plus the stored layer MAC.
#[derive(Debug, Clone)]
pub struct ProtectedLayer {
    /// Block size in bytes.
    pub block_bytes: usize,
    /// Encrypted blocks in order.
    pub blocks: Vec<Vec<u8>>,
    /// XOR-fold of all block MACs at write time.
    pub layer_mac: MacTag,
    binding: MacBinding,
    layer_id: u32,
    base_pa: u64,
}

const ENC_KEY: [u8; 16] = [0x5e; 16];
const MAC_KEY: [u8; 16] = [0xda; 16];

fn block_tag(binding: MacBinding, blk: &[u8], pa: u64, layer_id: u32, idx: u32) -> MacTag {
    match binding {
        MacBinding::CiphertextOnly => PositionlessMac::new(MAC_KEY).tag(blk, 0, 0),
        MacBinding::PositionBound => {
            PositionBoundMac::new(MAC_KEY).tag(blk, pa, 0, BlockPosition::new(layer_id, 0, idx))
        }
    }
}

impl ProtectedLayer {
    /// Encrypts `plaintext` into `block_bytes` blocks at base address
    /// `base_pa` and stores the XOR-folded layer MAC.
    ///
    /// # Panics
    ///
    /// Panics if `plaintext` is not a non-empty multiple of `block_bytes`.
    pub fn seal(
        plaintext: &[u8],
        block_bytes: usize,
        base_pa: u64,
        layer_id: u32,
        binding: MacBinding,
    ) -> Self {
        assert!(
            block_bytes > 0 && !plaintext.is_empty() && plaintext.len().is_multiple_of(block_bytes),
            "plaintext must be whole blocks"
        );
        let ctr = AesCtr::new(ENC_KEY);
        let mut blocks = Vec::new();
        let mut tags = Vec::new();
        for (i, chunk) in plaintext.chunks(block_bytes).enumerate() {
            let pa = base_pa + (i * block_bytes) as u64;
            let mut blk = chunk.to_vec();
            ctr.encrypt(CounterSeed::new(pa, 0), &mut blk);
            tags.push(block_tag(binding, &blk, pa, layer_id, i as u32));
            blocks.push(blk);
        }
        Self {
            block_bytes,
            blocks,
            layer_mac: xor_fold(tags),
            binding,
            layer_id,
            base_pa,
        }
    }

    /// Verifier's read path: recompute each resident block's MAC from its
    /// *current* location, XOR-fold, and compare with the stored layer MAC.
    pub fn verify(&self) -> bool {
        let tags = self.blocks.iter().enumerate().map(|(i, blk)| {
            let pa = self.base_pa + (i * self.block_bytes) as u64;
            block_tag(self.binding, blk, pa, self.layer_id, i as u32)
        });
        xor_fold(tags) == self.layer_mac
    }

    /// Decrypts the resident blocks with the address-bound CTR pads.
    pub fn decrypt(&self) -> Vec<u8> {
        let ctr = AesCtr::new(ENC_KEY);
        let mut out = Vec::with_capacity(self.blocks.len() * self.block_bytes);
        for (i, blk) in self.blocks.iter().enumerate() {
            let pa = self.base_pa + (i * self.block_bytes) as u64;
            let mut plain = blk.clone();
            ctr.decrypt(CounterSeed::new(pa, 0), &mut plain);
            out.extend_from_slice(&plain);
        }
        out
    }
}

/// Outcome of mounting RePA against a protected layer.
#[derive(Debug, Clone, PartialEq)]
pub struct RepaOutcome {
    /// Whether the shuffled layer still passes integrity verification.
    pub verification_passed: bool,
    /// Fraction of decrypted bytes that still match the original data.
    pub decryption_accuracy: f64,
    /// The attack succeeds if tampering passes verification while
    /// corrupting the decrypted data.
    pub success: bool,
}

/// Algorithm 2 lines 1-6: SHUFFLEORDER the layer's blocks and test whether
/// the XOR-folded layer MAC still verifies.
///
/// `swap` picks the deterministic permutation: pairs `(2i, 2i+1)` are
/// exchanged, which reorders every block while keeping the multiset.
pub fn mount_repa(layer: &mut ProtectedLayer, original_plaintext: &[u8]) -> RepaOutcome {
    for pair in layer.blocks.chunks_mut(2) {
        if pair.len() == 2 {
            pair.swap(0, 1);
        }
    }
    let verification_passed = layer.verify();
    let decrypted = layer.decrypt();
    let correct = decrypted
        .iter()
        .zip(original_plaintext.iter())
        .filter(|(a, b)| a == b)
        .count();
    let decryption_accuracy = correct as f64 / original_plaintext.len() as f64;
    RepaOutcome {
        verification_passed,
        decryption_accuracy,
        success: verification_passed && decryption_accuracy < 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plaintext(blocks: usize, block_bytes: usize) -> Vec<u8> {
        (0..blocks * block_bytes)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(7))
            .collect()
    }

    #[test]
    fn sealed_layer_verifies_and_decrypts() {
        for binding in [MacBinding::CiphertextOnly, MacBinding::PositionBound] {
            let pt = plaintext(8, 64);
            let layer = ProtectedLayer::seal(&pt, 64, 0x4000, 3, binding);
            assert!(layer.verify());
            assert_eq!(layer.decrypt(), pt);
        }
    }

    #[test]
    fn repa_breaks_ciphertext_only_macs() {
        let pt = plaintext(8, 64);
        let mut layer = ProtectedLayer::seal(&pt, 64, 0x4000, 3, MacBinding::CiphertextOnly);
        let out = mount_repa(&mut layer, &pt);
        assert!(out.verification_passed, "XOR fold is order-insensitive");
        assert!(out.decryption_accuracy < 0.2, "CTR pads are address-bound");
        assert!(out.success);
    }

    #[test]
    fn position_binding_defeats_repa() {
        let pt = plaintext(8, 64);
        let mut layer = ProtectedLayer::seal(&pt, 64, 0x4000, 3, MacBinding::PositionBound);
        let out = mount_repa(&mut layer, &pt);
        assert!(!out.verification_passed, "moved blocks must be detected");
        assert!(!out.success);
    }

    #[test]
    fn untampered_position_bound_layer_still_passes() {
        let pt = plaintext(6, 128);
        let layer = ProtectedLayer::seal(&pt, 128, 0x8000, 1, MacBinding::PositionBound);
        assert!(layer.verify(), "defense must not break honest reads");
    }

    #[test]
    fn single_block_layer_is_trivially_shuffle_proof() {
        let pt = plaintext(1, 64);
        let mut layer = ProtectedLayer::seal(&pt, 64, 0, 0, MacBinding::CiphertextOnly);
        let out = mount_repa(&mut layer, &pt);
        assert!(out.verification_passed);
        assert!((out.decryption_accuracy - 1.0).abs() < 1e-9);
        assert!(!out.success, "nothing moved, nothing broken");
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn ragged_layer_rejected() {
        let _ = ProtectedLayer::seal(&[0u8; 100], 64, 0, 0, MacBinding::PositionBound);
    }
}
