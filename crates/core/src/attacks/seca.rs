//! The Single-Element Collision Attack (SECA) and SeDA's defense
//! (paper Algorithm 1).
//!
//! When every 128-bit segment of a protected block shares one one-time
//! pad, an attacker who can guess the block's most common plaintext value
//! (DNN tensors are full of zeros) recovers the pad from the most frequent
//! ciphertext segment and decrypts the entire block. B-AES gives every
//! segment a distinct pad derived from the AES key schedule, collapsing
//! the attack to (at best) the guessed segments themselves.

use seda_crypto::ctr::CounterSeed;
use seda_crypto::otp::OtpStrategy;
use std::collections::HashMap;

/// AES segment width the attack operates at.
pub const SEGMENT: usize = 16;

/// Outcome of mounting SECA against one encrypted block.
#[derive(Debug, Clone, PartialEq)]
pub struct SecaOutcome {
    /// The attacker's plaintext guess for the whole block.
    pub recovered: Vec<u8>,
    /// Fraction of bytes recovered correctly.
    pub accuracy: f64,
    /// Whether the attack is considered successful (substantially more
    /// than the guessed-segment floor was recovered).
    pub success: bool,
}

/// Algorithm 1 lines 1-4: recovers a block encrypted under a shared OTP.
///
/// `ciphertext` is the encrypted block; `most_value_p` is the attacker's
/// guess for the block's most common 16 B plaintext (e.g. all zeros).
///
/// # Panics
///
/// Panics if `ciphertext` is not a non-empty multiple of 16 B.
pub fn seca_attack(ciphertext: &[u8], most_value_p: [u8; SEGMENT]) -> Vec<u8> {
    assert!(
        !ciphertext.is_empty() && ciphertext.len().is_multiple_of(SEGMENT),
        "ciphertext must be whole 16 B segments"
    );
    // CALCFREQVALUE: most frequent ciphertext segment.
    let mut freq: HashMap<&[u8], usize> = HashMap::new();
    for seg in ciphertext.chunks(SEGMENT) {
        *freq.entry(seg).or_insert(0) += 1;
    }
    // Infallible: the assert above rejects empty ciphertext, so at least
    // one segment reached the frequency map.
    #[allow(clippy::expect_used)]
    let most_value_c = freq
        .into_iter()
        .max_by_key(|&(seg, count)| (count, seg.to_vec()))
        .map(|(seg, _)| seg)
        .expect("non-empty ciphertext");

    // OTP = most_value_p ⊕ most_value_c.
    let mut otp = [0u8; SEGMENT];
    for i in 0..SEGMENT {
        otp[i] = most_value_p[i] ^ most_value_c[i];
    }

    // Decrypt every segment with the recovered pad.
    ciphertext
        .iter()
        .enumerate()
        .map(|(i, &c)| c ^ otp[i % SEGMENT])
        .collect()
}

/// Mounts SECA against `plaintext` encrypted with `strategy` and grades
/// the result.
///
/// The plaintext should contain a dominant repeated 16 B value for the
/// attack's frequency analysis (pass it as `most_value_p`).
pub fn mount_seca<S: OtpStrategy>(
    strategy: &S,
    seed: CounterSeed,
    plaintext: &[u8],
    most_value_p: [u8; SEGMENT],
) -> SecaOutcome {
    let mut block = plaintext.to_vec();
    strategy.apply(seed, &mut block); // encrypt
    let recovered = seca_attack(&block, most_value_p);
    let correct = recovered
        .iter()
        .zip(plaintext.iter())
        .filter(|(a, b)| a == b)
        .count();
    let accuracy = correct as f64 / plaintext.len() as f64;
    // Floor: the attacker always "recovers" the segments that equal the
    // guess. Success means decrypting meaningfully beyond that floor.
    let guessed_floor = plaintext
        .chunks(SEGMENT)
        .filter(|seg| *seg == most_value_p)
        .count() as f64
        * SEGMENT as f64
        / plaintext.len() as f64;
    SecaOutcome {
        recovered,
        accuracy,
        success: accuracy > guessed_floor + 0.10,
    }
}

/// A synthetic sparse DNN weight block: `zero_fraction` of the 16 B
/// segments are zero (the attacker's guess), the rest pseudo-random.
pub fn sparse_block(segments: usize, zero_fraction: f64, seed: u64) -> Vec<u8> {
    assert!((0.0..=1.0).contains(&zero_fraction));
    let mut out = vec![0u8; segments * SEGMENT];
    let mut state = seed | 1;
    let zero_segments = (segments as f64 * zero_fraction) as usize;
    for s in zero_segments..segments {
        for b in out[s * SEGMENT..(s + 1) * SEGMENT].iter_mut() {
            // xorshift64 keeps the crate dependency-free here.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *b = state as u8;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_crypto::otp::{BandwidthAwareOtp, SharedOtp, TraditionalOtp};

    fn seed() -> CounterSeed {
        CounterSeed::new(0x9000, 4)
    }

    #[test]
    fn shared_otp_falls_to_seca() {
        let strategy = SharedOtp::new([0x13; 16]);
        let pt = sparse_block(32, 0.6, 42);
        let out = mount_seca(&strategy, seed(), &pt, [0u8; 16]);
        assert!(out.success, "SECA must break shared-OTP blocks");
        assert!(
            (out.accuracy - 1.0).abs() < 1e-9,
            "full recovery expected, got {}",
            out.accuracy
        );
    }

    #[test]
    fn baes_defeats_seca() {
        let strategy = BandwidthAwareOtp::new([0x13; 16]);
        let pt = sparse_block(32, 0.6, 42);
        let out = mount_seca(&strategy, seed(), &pt, [0u8; 16]);
        assert!(!out.success, "B-AES must defeat SECA: {}", out.accuracy);
    }

    #[test]
    fn taes_also_defeats_seca() {
        let strategy = TraditionalOtp::new([0x13; 16]);
        let pt = sparse_block(32, 0.6, 42);
        let out = mount_seca(&strategy, seed(), &pt, [0u8; 16]);
        assert!(!out.success);
    }

    #[test]
    fn attack_handles_uniform_block() {
        // All-zero plaintext: trivially fully recovered under shared OTP,
        // but that is exactly the guessed floor — not graded a success.
        let strategy = SharedOtp::new([7u8; 16]);
        let pt = vec![0u8; 16 * 8];
        let out = mount_seca(&strategy, seed(), &pt, [0u8; 16]);
        assert!((out.accuracy - 1.0).abs() < 1e-9);
        assert!(!out.success, "recovering only the guess is not a break");
    }

    #[test]
    #[should_panic(expected = "whole 16 B segments")]
    fn ragged_ciphertext_rejected() {
        let _ = seca_attack(&[0u8; 17], [0u8; 16]);
    }

    #[test]
    fn sparse_block_fraction_respected() {
        let b = sparse_block(100, 0.7, 1);
        let zeros = b
            .chunks(SEGMENT)
            .filter(|s| s.iter().all(|&x| x == 0))
            .count();
        assert_eq!(zeros, 70);
    }
}
