//! Attack/defense demonstrations from the paper's algorithms.
//!
//! * [`seca`] — Algorithm 1: the Single-Element Collision Attack on
//!   shared one-time pads, defeated by B-AES per-segment pads.
//! * [`repa`] — Algorithm 2: the Re-Permutation Attack on XOR-folded
//!   layer MACs, defeated by position-bound block MACs.
//! * [`vn_replay`] — the two-time-pad break that version-number reuse
//!   causes, defeated by monotone on-chip VN generation.

pub mod repa;
pub mod seca;
pub mod vn_replay;
