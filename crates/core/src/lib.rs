//! # SeDA: Secure and Efficient DNN Accelerators with Hardware/Software Synergy
//!
//! A full-system reproduction of the DAC 2025 paper. The crate wires the
//! substrates together and implements the paper's own contributions:
//!
//! * **Bandwidth-aware encryption (B-AES)** — [`seda_crypto::otp`] derives
//!   per-segment one-time pads from a single AES engine's key schedule;
//!   [`attacks::seca`] demonstrates the attack it defends against and
//!   [`seda_hw`] models its area/power advantage (Fig. 4).
//! * **Multi-level integrity verification** — [`seda_protect::seda`]
//!   models optBlk/layer/model MACs with near-zero off-chip traffic;
//!   [`optblk`] implements the SecureLoop-style granularity search and
//!   [`attacks::repa`] the re-permutation attack/defense (Algorithm 2).
//! * **Evaluation pipeline** — [`pipeline`] runs a workload through the
//!   SCALE-Sim-style accelerator model ([`seda_scalesim`]), a protection
//!   scheme ([`seda_protect`]), and the DRAM timing simulator
//!   ([`seda_dram`]); [`experiment`] sweeps the paper's 13 workloads ×
//!   5 schemes × 2 NPUs and [`report`] renders every table and figure.
//!
//! # Examples
//!
//! ```
//! use seda::pipeline::run_model;
//! use seda_models::zoo;
//! use seda_protect::{LayerMacStore, SedaScheme, Unprotected};
//! use seda_scalesim::NpuConfig;
//!
//! let npu = NpuConfig::edge();
//! let model = zoo::lenet();
//! let base = run_model(&npu, &model, &mut Unprotected::new());
//! let seda = run_model(&npu, &model, &mut SedaScheme::new(LayerMacStore::OffChip, 16 << 30));
//! let slowdown = seda.total_cycles as f64 / base.total_cycles as f64;
//! // LeNet is degenerately small (a whole inference is ~20k cycles), so a
//! // single extra metadata line is visible; on the paper's suite SeDA's
//! // slowdown is <1%. See `experiment::evaluate_paper_suite`.
//! assert!(slowdown < 1.15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod error;
pub mod experiment;
pub mod functional;
pub mod optblk;
pub mod pipeline;
pub mod report;
pub mod resilience;
pub mod scenario;
pub mod sealing;
pub mod sweep;

pub use error::SedaError;
pub use experiment::{
    evaluate, evaluate_paper_suite, evaluate_suites, evaluate_suites_dram_mapped,
    evaluate_with_stats, evaluations_of, partial_evaluations_of, Evaluation,
};
pub use functional::{run_protected, run_reference, IntegrityViolation, SecureMemory};
pub use pipeline::{
    dram_config_for, run_model, run_model_repeated, run_model_repeated_with_verifier,
    run_model_with_verifier, run_spec, run_trace, try_run_trace, try_run_trace_with_dram,
    LoweredTrace, RunResult, RunSpec,
};
pub use resilience::{
    load_journal, FailurePolicy, FailureReport, FaultHook, JournalContents, JournalHeader,
    JournalWriter, PointContext, PointFailure, PointReport, CHECKPOINT_SCHEMA,
};
pub use scenario::{Scenario, ScenarioError, ScenarioRun};
pub use sealing::{seal_model, unseal_layer, verify_model, SealedModel, SealingKeys};
pub use sweep::{Sweep, SweepResults, SweepStats};

// Re-export the substrate crates under one roof for downstream users.
pub use seda_crypto as crypto;
pub use seda_dram as dram;
pub use seda_hw as hw;
pub use seda_models as models;
pub use seda_protect as protect;
pub use seda_scalesim as scalesim;
pub use seda_telemetry as telemetry;
