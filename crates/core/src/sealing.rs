//! Model sealing: the full write-path of SeDA's multi-level integrity
//! mechanism over a real model's weights.
//!
//! Weights are encrypted block-by-block with B-AES pads, each optBlk gets
//! a position-bound MAC, block MACs XOR-fold into per-layer MACs, and
//! layer MACs fold into the single on-chip **model MAC** (Table I's
//! coarsest level — one tag for the entire model, verified at the end of
//! inference). Synthetic weight bytes are generated deterministically from
//! the layer shapes, standing in for trained parameters the paper's
//! artifact would load from disk.

use seda_crypto::ctr::CounterSeed;
use seda_crypto::mac::{xor_fold, BlockPosition, MacTag, PositionBoundMac, XorAccumulator};
use seda_crypto::otp::{BandwidthAwareOtp, OtpStrategy};
use seda_models::Model;
use seda_scalesim::AddressMap;

/// optBlk size used when sealing weights (one protection run per block).
pub const SEAL_BLOCK: usize = 256;

/// A sealed model image: encrypted weights plus the MAC hierarchy.
#[derive(Debug, Clone)]
pub struct SealedModel {
    /// Model name.
    pub name: String,
    /// Encrypted weight bytes per layer.
    pub layers: Vec<SealedLayer>,
    /// The on-chip model MAC: XOR-fold of all layer MACs.
    pub model_mac: MacTag,
}

/// One layer's sealed weights.
#[derive(Debug, Clone)]
pub struct SealedLayer {
    /// Layer name.
    pub name: String,
    /// Base physical address of the weights.
    pub base_pa: u64,
    /// Encrypted weight bytes.
    pub ciphertext: Vec<u8>,
    /// XOR-fold of the layer's optBlk MACs.
    pub layer_mac: MacTag,
}

/// Deterministic synthetic weights for layer `layer_idx` of a model
/// (xorshift64-star over the layer index; ~30% exact zeros to mimic
/// pruned-network sparsity, which is what makes SECA dangerous).
pub fn synthetic_weights(layer_idx: u32, bytes: u64) -> Vec<u8> {
    let mut state = (u64::from(layer_idx) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut out = Vec::with_capacity(bytes as usize);
    for _ in 0..bytes {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let b = (state >> 32) as u8;
        out.push(if b < 77 { 0 } else { b });
    }
    out
}

/// Keys used by the sealing flow (a real deployment provisions these into
/// the accelerator's secure key store).
#[derive(Debug, Clone)]
pub struct SealingKeys {
    enc: BandwidthAwareOtp,
    mac: PositionBoundMac,
}

impl SealingKeys {
    /// Creates the key material from an encryption and a MAC key.
    pub fn new(enc_key: [u8; 16], mac_key: [u8; 16]) -> Self {
        Self {
            enc: BandwidthAwareOtp::new(enc_key),
            mac: PositionBoundMac::new(mac_key),
        }
    }
}

fn layer_block_tags(
    keys: &SealingKeys,
    layer_idx: u32,
    base_pa: u64,
    ciphertext: &[u8],
) -> Vec<MacTag> {
    ciphertext
        .chunks(SEAL_BLOCK)
        .enumerate()
        .map(|(i, blk)| {
            let pa = base_pa + (i * SEAL_BLOCK) as u64;
            keys.mac.tag(
                blk,
                pa,
                0,
                BlockPosition::new(
                    layer_idx,
                    seda_scalesim::TensorKind::Filter.fmap_idx(),
                    i as u32,
                ),
            )
        })
        .collect()
}

/// Seals every layer's weights of `model`, producing the encrypted image
/// and the MAC hierarchy.
pub fn seal_model(keys: &SealingKeys, model: &Model) -> SealedModel {
    let map = AddressMap::new(model);
    let mut layers = Vec::with_capacity(model.layers().len());
    let mut model_mac = XorAccumulator::new();
    for (idx, layer) in model.layers().iter().enumerate() {
        let base_pa = map.weights(idx);
        let mut data = synthetic_weights(idx as u32, layer.filter_bytes());
        for (i, chunk) in data.chunks_mut(SEAL_BLOCK).enumerate() {
            let pa = base_pa + (i * SEAL_BLOCK) as u64;
            keys.enc.apply(CounterSeed::new(pa, 0), chunk);
        }
        let layer_mac = xor_fold(layer_block_tags(keys, idx as u32, base_pa, &data));
        model_mac.add(layer_mac);
        layers.push(SealedLayer {
            name: layer.name.clone(),
            base_pa,
            ciphertext: data,
            layer_mac,
        });
    }
    SealedModel {
        name: model.name().to_owned(),
        layers,
        model_mac: model_mac.value(),
    }
}

/// Verifies a sealed model against its model MAC, recomputing every
/// optBlk MAC from the (possibly tampered) ciphertext. Returns the names
/// of layers whose layer MAC no longer matches, so callers can both do the
/// cheap whole-model check and localize a failure.
pub fn verify_model(keys: &SealingKeys, sealed: &SealedModel) -> Result<(), Vec<String>> {
    let mut model_mac = XorAccumulator::new();
    let mut bad = Vec::new();
    for (idx, layer) in sealed.layers.iter().enumerate() {
        let recomputed = xor_fold(layer_block_tags(
            keys,
            idx as u32,
            layer.base_pa,
            &layer.ciphertext,
        ));
        if recomputed != layer.layer_mac {
            bad.push(layer.name.clone());
        }
        model_mac.add(recomputed);
    }
    if bad.is_empty() && model_mac.verify(sealed.model_mac) {
        Ok(())
    } else {
        Err(bad)
    }
}

/// Decrypts one sealed layer back to plaintext weights.
pub fn unseal_layer(keys: &SealingKeys, layer: &SealedLayer) -> Vec<u8> {
    let mut data = layer.ciphertext.clone();
    for (i, chunk) in data.chunks_mut(SEAL_BLOCK).enumerate() {
        let pa = layer.base_pa + (i * SEAL_BLOCK) as u64;
        keys.enc.apply(CounterSeed::new(pa, 0), chunk);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_models::zoo;

    fn keys() -> SealingKeys {
        SealingKeys::new([0x2b; 16], [0x7e; 16])
    }

    #[test]
    fn sealed_lenet_verifies_and_unseals() {
        let model = zoo::lenet();
        let sealed = seal_model(&keys(), &model);
        assert!(verify_model(&keys(), &sealed).is_ok());
        for (idx, layer) in sealed.layers.iter().enumerate() {
            let plain = unseal_layer(&keys(), layer);
            assert_eq!(plain, synthetic_weights(idx as u32, plain.len() as u64));
        }
    }

    #[test]
    fn model_mac_localizes_tampering() {
        let model = zoo::lenet();
        let mut sealed = seal_model(&keys(), &model);
        sealed.layers[2].ciphertext[17] ^= 0x80;
        let err = verify_model(&keys(), &sealed).expect_err("tamper must be caught");
        assert_eq!(err, vec![sealed.layers[2].name.clone()]);
    }

    #[test]
    fn swapping_two_layers_is_detected() {
        // A whole-layer transplant preserves every block's data but moves
        // it to another layer's addresses and position fields.
        let model = zoo::lenet();
        let mut sealed = seal_model(&keys(), &model);
        let (a, b) = (1, 2);
        let tmp = sealed.layers[a].ciphertext.clone();
        sealed.layers[a].ciphertext = sealed.layers[b].ciphertext.clone();
        sealed.layers[b].ciphertext = tmp;
        assert!(verify_model(&keys(), &sealed).is_err());
    }

    #[test]
    fn wrong_keys_fail_verification() {
        let model = zoo::lenet();
        let sealed = seal_model(&keys(), &model);
        let other = SealingKeys::new([0x2b; 16], [0x00; 16]);
        assert!(verify_model(&other, &sealed).is_err());
    }

    #[test]
    fn synthetic_weights_are_sparse_and_deterministic() {
        let w = synthetic_weights(5, 10_000);
        assert_eq!(w, synthetic_weights(5, 10_000));
        let zeros = w.iter().filter(|&&b| b == 0).count();
        assert!(zeros > 2_000 && zeros < 4_500, "zeros: {zeros}");
        assert_ne!(w, synthetic_weights(6, 10_000));
    }

    #[test]
    fn model_mac_differs_across_models() {
        let a = seal_model(&keys(), &zoo::lenet());
        let b = seal_model(&keys(), &zoo::ncf());
        assert_ne!(a.model_mac, b.model_mac);
    }
}
