//! Text rendering of the paper's tables and figure data.

use crate::experiment::Evaluation;
use seda_protect::SchemeInfo;
use seda_scalesim::NpuConfig;
use std::fmt::Write as _;

/// Renders Table I: the qualitative comparison of SeDA's three MAC
/// granularities.
pub fn table1() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table I: Multi-level integrity verification granularity");
    let _ = writeln!(
        s,
        "{:<10} {:<12} {:<26} {:<12}",
        "Granularity", "Flexibility", "Off-chip access overhead", "Storage"
    );
    let _ = writeln!(
        s,
        "{:<10} {:<12} {:<26} {:<12}",
        "optBlk", "high", "per-block MAC if stored", "Off-chip"
    );
    let _ = writeln!(
        s,
        "{:<10} {:<12} {:<26} {:<12}",
        "layer", "medium", "0 (folded on-chip)", "Off/On-chip"
    );
    let _ = writeln!(
        s,
        "{:<10} {:<12} {:<26} {:<12}",
        "model", "low", "0", "On-chip"
    );
    s
}

/// Renders Table II from the two NPU configurations.
pub fn table2(configs: &[NpuConfig]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table II: DNN simulation configurations");
    let mut header = format!("{:<12}", "Metric");
    for c in configs {
        let _ = write!(header, "{:<28}", c.name);
    }
    let _ = writeln!(s, "{header}");
    let row = |label: &str, f: &dyn Fn(&NpuConfig) -> String| {
        let mut r = format!("{label:<12}");
        for c in configs {
            let _ = write!(r, "{:<28}", f(c));
        }
        r
    };
    let _ = writeln!(
        s,
        "{}",
        row("PE", &|c| format!("{} x {} systolic array", c.rows, c.cols))
    );
    let _ = writeln!(
        s,
        "{}",
        row("Bandwidth", &|c| format!(
            "{:.0} GB/s with {} channels",
            c.dram_bandwidth / 1e9,
            c.dram_channels
        ))
    );
    let _ = writeln!(
        s,
        "{}",
        row("Frequency", &|c| format!("{:.2} GHz", c.clock_hz / 1e9))
    );
    let _ = writeln!(
        s,
        "{}",
        row("SRAM", &|c| if c.sram_bytes >= 1 << 20 {
            format!("{} MB", c.sram_bytes >> 20)
        } else {
            format!("{} KB", c.sram_bytes >> 10)
        })
    );
    let _ = writeln!(s, "{}", row("Precision", &|_| "1-B per element".to_owned()));
    s
}

/// Renders Table III from scheme descriptors.
pub fn table3(schemes: &[SchemeInfo]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table III: Comparison of memory protection schemes");
    let _ = writeln!(
        s,
        "{:<10} {:<26} {:<34} {:<24} {:<8} {:<8}",
        "Scheme",
        "Encryption granularity",
        "Integrity granularity",
        "Off-chip access",
        "Tiling",
        "Scalable"
    );
    for i in schemes {
        let _ = writeln!(
            s,
            "{:<10} {:<26} {:<34} {:<24} {:<8} {:<8}",
            i.name,
            i.encryption_granularity,
            i.integrity_granularity,
            i.offchip_metadata,
            if i.tiling_aware { "yes" } else { "no" },
            if i.encryption_scalable { "yes" } else { "no" },
        );
    }
    s
}

/// Renders a Fig. 5-style table: normalized traffic per workload/scheme.
pub fn figure5(eval: &Evaluation) -> String {
    figure(eval, "Fig. 5: normalized memory traffic", |o| {
        o.traffic_norm
    })
}

/// Renders a Fig. 6-style table: normalized runtime per workload/scheme.
pub fn figure6(eval: &Evaluation) -> String {
    figure(eval, "Fig. 6: normalized performance (runtime)", |o| {
        o.perf_norm
    })
}

fn figure(
    eval: &Evaluation,
    title: &str,
    f: impl Fn(&crate::experiment::SchemeOutcome) -> f64,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title} — {} NPU", eval.npu);
    let mut header = format!("{:<10}", "workload");
    if let Some(w) = eval.workloads.first() {
        for o in &w.outcomes {
            let _ = write!(header, "{:>10}", o.scheme);
        }
    }
    let _ = writeln!(s, "{header}");
    for w in &eval.workloads {
        let mut row = format!("{:<10}", w.workload);
        for o in &w.outcomes {
            let _ = write!(row, "{:>10.4}", f(o));
        }
        let _ = writeln!(s, "{row}");
    }
    // Average row, as in the figures.
    let n = eval.workloads.len() as f64;
    let mut row = format!("{:<10}", "avg");
    if let Some(w0) = eval.workloads.first() {
        for i in 0..w0.outcomes.len() {
            let sum: f64 = eval.workloads.iter().map(|w| f(&w.outcomes[i])).sum();
            let _ = write!(row, "{:>10.4}", sum / n);
        }
    }
    let _ = writeln!(s, "{row}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::evaluate;
    use seda_models::zoo;
    use seda_protect::paper_lineup;

    #[test]
    fn tables_render_nonempty() {
        assert!(table1().contains("optBlk"));
        let t2 = table2(&[NpuConfig::server(), NpuConfig::edge()]);
        assert!(t2.contains("256 x 256"));
        assert!(t2.contains("480 KB"));
        let infos: Vec<_> = paper_lineup().iter().map(|s| s.info()).collect();
        let t3 = table3(&infos);
        assert!(t3.contains("SGX-64B"));
        assert!(t3.contains("SeDA"));
    }

    #[test]
    fn figure_tables_include_average() {
        let eval = evaluate(&NpuConfig::edge(), &[zoo::lenet()]);
        let f5 = figure5(&eval);
        assert!(f5.contains("avg"));
        assert!(f5.contains("let"));
        let f6 = figure6(&eval);
        assert!(f6.contains("baseline"));
    }
}

/// Renders a horizontal ASCII bar chart of labelled values (used by the
/// figure binaries to visualize scheme means in the terminal).
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let max = rows.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    if rows.is_empty() || max <= 0.0 || max.is_nan() {
        let _ = writeln!(s, "  (no data)");
        return s;
    }
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let bars = ((value / max) * width as f64).round() as usize;
        let _ = writeln!(
            s,
            "  {label:<label_w$} {:<width$} {value:.4}",
            "#".repeat(bars.max(1))
        );
    }
    s
}

#[cfg(test)]
mod bar_tests {
    use super::*;

    #[test]
    fn bars_scale_with_values() {
        let rows = vec![("a".to_owned(), 1.0), ("b".to_owned(), 2.0)];
        let chart = bar_chart("t", &rows, 20);
        let lines: Vec<&str> = chart.lines().collect();
        let count = |s: &str| s.matches('#').count();
        assert_eq!(count(lines[2]), 20, "max value fills the width");
        assert_eq!(count(lines[1]), 10);
    }

    #[test]
    fn empty_chart_is_graceful() {
        assert!(bar_chart("t", &[], 10).contains("no data"));
    }

    #[test]
    fn tiny_values_still_visible() {
        let rows = vec![("x".to_owned(), 0.0001), ("y".to_owned(), 1.0)];
        let chart = bar_chart("t", &rows, 30);
        assert!(chart.lines().nth(1).unwrap().contains('#'));
    }
}
