//! Functional secure inference: execute a quantized DNN whose tensors
//! live *encrypted* in untrusted memory, decrypting and verifying tiles
//! on-chip — the end-to-end behaviour the timing pipeline abstracts.
//!
//! The accelerator-side arithmetic is plain int8 × int8 → int32 with a
//! fixed right-shift requantization; the security side is the real SeDA
//! stack: B-AES pads keyed by `(PA, VN)`, position-bound optBlk MACs
//! XOR-folded into per-layer MACs, and MGX-style on-chip version numbers.
//! The headline property, pinned by tests: **protected inference produces
//! bit-identical outputs to unprotected inference, and any off-chip
//! tampering is detected before results are consumed.**

use crate::error::SedaError;
use crate::sealing::synthetic_weights;
use seda_crypto::ctr::CounterSeed;
use seda_crypto::mac::{BlockPosition, MacTag, PositionBoundMac, XorAccumulator};
use seda_crypto::otp::{BandwidthAwareOtp, OtpStrategy};
use seda_models::{Layer, LayerKind, Model};
use seda_protect::OnChipVn;
use seda_scalesim::{AddressMap, TensorKind};

/// Protection block size of the functional memory (one optBlk).
const BLOCK: usize = 64;

/// Requantization shift applied to every accumulator.
const REQUANT_SHIFT: i32 = 7;

/// Error raised when a read fails integrity verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityViolation {
    /// Layer whose data failed the check.
    pub layer: u32,
    /// Tensor kind that failed.
    pub tensor: TensorKind,
    /// Index of the failing block within the region, when the check is
    /// block-granular; `None` for aggregate (layer-fold) checks, which
    /// cannot localize below the region.
    pub block: Option<u32>,
    /// Base physical address of the failing block (or region, for
    /// aggregate checks).
    pub pa: u64,
}

impl core::fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "integrity violation in layer {} ({:?}) at PA {:#x}",
            self.layer, self.tensor, self.pa
        )?;
        match self.block {
            Some(b) => write!(f, ", block {b}"),
            None => write!(f, " (aggregate layer check)"),
        }
    }
}

impl std::error::Error for IntegrityViolation {}

/// Untrusted off-chip memory: stores only ciphertext.
///
/// The trusted side (this struct's methods, standing in for the on-chip
/// protection engine) encrypts on write, folding block MACs into a layer
/// accumulator, and decrypts on read, re-folding and comparing.
#[derive(Debug)]
pub struct SecureMemory {
    bytes: Vec<u8>,
    enc: BandwidthAwareOtp,
    mac: PositionBoundMac,
}

impl SecureMemory {
    /// Creates a memory of `size` bytes under fresh keys.
    pub fn new(size: usize, enc_key: [u8; 16], mac_key: [u8; 16]) -> Self {
        Self {
            bytes: vec![0; size],
            enc: BandwidthAwareOtp::new(enc_key),
            mac: PositionBoundMac::new(mac_key),
        }
    }

    /// Raw ciphertext access for tamper injection in tests/demos.
    pub fn raw_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Bounds check shared by reads and writes: the whole `[pa, pa + len)`
    /// span must lie inside the image. A truncated or relocated request
    /// surfaces as a typed error, never a slice panic.
    fn check_bounds(&self, pa: u64, len: usize) -> Result<(), SedaError> {
        let end = (pa as usize).checked_add(len);
        if pa as usize > self.bytes.len() || end.is_none_or(|e| e > self.bytes.len()) {
            return Err(SedaError::OutOfBounds {
                pa,
                len,
                size: self.bytes.len(),
            });
        }
        Ok(())
    }

    /// Encrypts `data` to `pa` under `vn`, returning the region's folded
    /// MAC (which the caller keeps on-chip).
    ///
    /// # Errors
    ///
    /// Returns [`SedaError::OutOfBounds`] if the region escapes the image.
    pub fn write_region(
        &mut self,
        pa: u64,
        vn: u64,
        layer: u32,
        tensor: TensorKind,
        data: &[u8],
    ) -> Result<u64, SedaError> {
        self.check_bounds(pa, data.len())?;
        let mut fold = XorAccumulator::new();
        for (i, chunk) in data.chunks(BLOCK).enumerate() {
            let block_pa = pa + (i * BLOCK) as u64;
            let mut buf = chunk.to_vec();
            self.enc.apply(CounterSeed::new(block_pa, vn), &mut buf);
            let tag = self.mac.tag(
                &buf,
                block_pa,
                vn,
                BlockPosition::new(layer, tensor.fmap_idx(), i as u32),
            );
            fold.add(tag);
            let at = block_pa as usize;
            self.bytes[at..at + buf.len()].copy_from_slice(&buf);
        }
        Ok(fold.value().0)
    }

    /// Decrypts `len` bytes from `pa`, verifying the folded MAC against
    /// the caller's on-chip `expected` value (constant-time comparison).
    ///
    /// # Errors
    ///
    /// Returns [`SedaError::Integrity`] if the recomputed layer MAC
    /// differs, or [`SedaError::OutOfBounds`] if the region escapes the
    /// image.
    pub fn read_region(
        &self,
        pa: u64,
        vn: u64,
        layer: u32,
        tensor: TensorKind,
        len: usize,
        expected: u64,
    ) -> Result<Vec<u8>, SedaError> {
        self.check_bounds(pa, len)?;
        let mut fold = XorAccumulator::new();
        let mut out = Vec::with_capacity(len);
        let mut i = 0usize;
        while i * BLOCK < len {
            let block_pa = pa + (i * BLOCK) as u64;
            let chunk_len = BLOCK.min(len - i * BLOCK);
            let at = block_pa as usize;
            let mut buf = self.bytes[at..at + chunk_len].to_vec();
            let tag = self.mac.tag(
                &buf,
                block_pa,
                vn,
                BlockPosition::new(layer, tensor.fmap_idx(), i as u32),
            );
            fold.add(tag);
            self.enc.apply(CounterSeed::new(block_pa, vn), &mut buf);
            out.extend_from_slice(&buf);
            i += 1;
        }
        if fold.value().ct_eq(MacTag(expected)) {
            Ok(out)
        } else {
            seda_telemetry::counter_add("functional.verification_failures", 1);
            Err(SedaError::Integrity(IntegrityViolation {
                layer,
                tensor,
                block: None,
                pa,
            }))
        }
    }
}

fn requantize(acc: i32) -> i8 {
    (acc >> REQUANT_SHIFT).clamp(i8::MIN as i32, i8::MAX as i32) as i8
}

/// Reference (unprotected) execution of one layer over plaintext bytes.
///
/// Tensors are interpreted as `i8`; layouts match the timing simulator's:
/// ifmap `[y][x][c]`, conv weights `[m][r][s][c]`, GEMM weights `[n][k]`,
/// ofmap `[y][x][m]`.
pub fn execute_layer(layer: &Layer, ifmap: &[u8], weights: &[u8]) -> Vec<u8> {
    let as_i8 = |b: u8| b as i8;
    match layer.kind {
        LayerKind::Conv {
            iw,
            r,
            s,
            c,
            m,
            stride,
            ..
        } => {
            let (oh, ow) = layer.ofmap_dims();
            let (iw, r, s, c, m, stride) = (
                iw as usize,
                r as usize,
                s as usize,
                c as usize,
                m as usize,
                stride as usize,
            );
            let mut out = vec![0u8; (oh * ow) as usize * m];
            for oy in 0..oh as usize {
                for ox in 0..ow as usize {
                    for om in 0..m {
                        let mut acc: i32 = 0;
                        for ky in 0..r {
                            for kx in 0..s {
                                for kc in 0..c {
                                    let iy = oy * stride + ky;
                                    let ix = ox * stride + kx;
                                    let iv = as_i8(ifmap[(iy * iw + ix) * c + kc]) as i32;
                                    let wv =
                                        as_i8(weights[((om * r + ky) * s + kx) * c + kc]) as i32;
                                    acc += iv * wv;
                                }
                            }
                        }
                        out[(oy * ow as usize + ox) * m + om] = requantize(acc) as u8;
                    }
                }
            }
            out
        }
        LayerKind::DepthwiseConv {
            iw,
            r,
            s,
            c,
            stride,
            ..
        } => {
            let (oh, ow) = layer.ofmap_dims();
            let (iw, r, s, c, stride) = (
                iw as usize,
                r as usize,
                s as usize,
                c as usize,
                stride as usize,
            );
            let mut out = vec![0u8; (oh * ow) as usize * c];
            for oy in 0..oh as usize {
                for ox in 0..ow as usize {
                    for ch in 0..c {
                        let mut acc: i32 = 0;
                        for ky in 0..r {
                            for kx in 0..s {
                                let iy = oy * stride + ky;
                                let ix = ox * stride + kx;
                                let iv = as_i8(ifmap[(iy * iw + ix) * c + ch]) as i32;
                                let wv = as_i8(weights[(ch * r + ky) * s + kx]) as i32;
                                acc += iv * wv;
                            }
                        }
                        out[(oy * ow as usize + ox) * c + ch] = requantize(acc) as u8;
                    }
                }
            }
            out
        }
        LayerKind::Gemm { m, k, n } => {
            let (m, k, n) = (m as usize, k as usize, n as usize);
            let mut out = vec![0u8; m * n];
            for row in 0..m {
                for col in 0..n {
                    let mut acc: i32 = 0;
                    for kk in 0..k {
                        acc +=
                            as_i8(ifmap[row * k + kk]) as i32 * as_i8(weights[col * k + kk]) as i32;
                    }
                    out[row * n + col] = requantize(acc) as u8;
                }
            }
            out
        }
    }
}

/// Runs a whole model unprotected (the reference the secure path must
/// match bit-for-bit). Weights are [`synthetic_weights`]; the input is the
/// caller's.
pub fn run_reference(model: &Model, input: &[u8]) -> Vec<u8> {
    let mut act = input.to_vec();
    for (idx, layer) in model.layers().iter().enumerate() {
        let weights = synthetic_weights(idx as u32, layer.filter_bytes());
        act = execute_layer(layer, &act, &weights);
    }
    act
}

/// Runs a whole model with every tensor encrypted and verified in
/// untrusted memory.
///
/// # Errors
///
/// Returns [`SedaError::Integrity`] if any read fails verification (e.g.
/// after `tamper` flips ciphertext bits via [`SecureMemory::raw_mut`]),
/// or [`SedaError::OutOfBounds`] if a tensor escapes the image.
pub fn run_protected(
    model: &Model,
    input: &[u8],
    tamper: impl FnOnce(&mut SecureMemory),
) -> Result<Vec<u8>, SedaError> {
    let map = AddressMap::new(model);
    let mut mem = SecureMemory::new(map.total_bytes() as usize, [0x2b; 16], [0x7e; 16]);
    let mut vn_gen = OnChipVn::new(model.layers().len() as u32, 1);
    let epoch = vn_gen.begin_inference();

    // Provision weights (VN = model version) and the input activation.
    let mut weight_macs = Vec::new();
    for (idx, layer) in model.layers().iter().enumerate() {
        let weights = synthetic_weights(idx as u32, layer.filter_bytes());
        weight_macs.push(mem.write_region(
            map.weights(idx),
            vn_gen.weight_vn(),
            idx as u32,
            TensorKind::Filter,
            &weights,
        )?);
    }
    let input_vn = epoch * model.layers().len() as u64;
    let mut act_mac = mem.write_region(map.ifmap(0), input_vn, 0, TensorKind::Ifmap, input)?;
    let mut act_len = input.len();

    tamper(&mut mem);

    for (idx, layer) in model.layers().iter().enumerate() {
        let idx_u = idx as u32;
        // The reader uses the VN its producer wrote (on-chip state).
        let read_vn = vn_gen.ifmap_vn(idx_u);
        let produced_by = if idx == 0 { 0 } else { idx_u - 1 };
        let ifmap = mem.read_region(
            map.ifmap(idx),
            read_vn,
            produced_by,
            if idx == 0 {
                TensorKind::Ifmap
            } else {
                TensorKind::Ofmap
            },
            act_len,
            act_mac,
        )?;
        let weights = mem.read_region(
            map.weights(idx),
            vn_gen.weight_vn(),
            idx_u,
            TensorKind::Filter,
            layer.filter_bytes() as usize,
            weight_macs[idx],
        )?;
        let ofmap = execute_layer(layer, &ifmap, &weights);
        act_mac = mem.write_region(
            map.ofmap(idx),
            vn_gen.activation_vn(idx_u),
            idx_u,
            TensorKind::Ofmap,
            &ofmap,
        )?;
        act_len = ofmap.len();
    }

    // Read the final activations back (one last verification).
    let last = (model.layers().len() - 1) as u32;
    mem.read_region(
        map.ofmap(last as usize),
        vn_gen.activation_vn(last),
        last,
        TensorKind::Ofmap,
        act_len,
        act_mac,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_models::zoo;

    fn lenet_input() -> Vec<u8> {
        (0..32 * 32).map(|i| (i % 23) as u8).collect()
    }

    #[test]
    fn protected_inference_matches_reference_bit_for_bit() {
        let model = zoo::lenet();
        let input = lenet_input();
        let reference = run_reference(&model, &input);
        let protected = run_protected(&model, &input, |_| {}).expect("honest run verifies");
        assert_eq!(protected, reference);
        assert_eq!(protected.len(), 10, "LeNet emits 10 logits");
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let model = zoo::lenet();
        let map = AddressMap::new(&model);
        let mut mem = SecureMemory::new(map.total_bytes() as usize, [1; 16], [2; 16]);
        let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
        mem.write_region(0, 0, 0, TensorKind::Ifmap, &data)
            .expect("region fits");
        assert_ne!(
            &mem.raw_mut()[..256],
            &data[..],
            "memory must hold ciphertext"
        );
    }

    #[test]
    fn tampered_weights_are_detected() {
        let model = zoo::lenet();
        let map = AddressMap::new(&model);
        let weight_addr = map.weights(1) as usize;
        let err = run_protected(&model, &lenet_input(), |mem| {
            mem.raw_mut()[weight_addr + 5] ^= 0x01;
        })
        .expect_err("flipped weight bit must be caught");
        let v = err.integrity().expect("tamper surfaces as Integrity");
        assert_eq!(v.layer, 1);
        assert_eq!(v.tensor, TensorKind::Filter);
        assert_eq!(v.pa, map.weights(1));
    }

    #[test]
    fn tampered_input_activations_are_detected() {
        let model = zoo::lenet();
        let map = AddressMap::new(&model);
        let addr = map.ifmap(0) as usize;
        let err = run_protected(&model, &lenet_input(), |mem| {
            mem.raw_mut()[addr] ^= 0x80;
        })
        .expect_err("tampered input must be caught");
        let v = err.integrity().expect("tamper surfaces as Integrity");
        assert_eq!(v.tensor, TensorKind::Ifmap);
    }

    #[test]
    fn gemm_layer_executes_correctly() {
        // 1x2 · 2x2 with known int8 values: out = requant([a·w]).
        let layer = Layer::gemm("g", 1, 2, 2);
        let ifmap = [10u8, 20u8];
        // weights [n][k]: n0 = [1, 2], n1 = [3, 4]
        let weights = [1u8, 2, 3, 4];
        let out = execute_layer(&layer, &ifmap, &weights);
        // n0: 10*1 + 20*2 = 50 >> 7 = 0; n1: 10*3 + 20*4 = 110 >> 7 = 0
        assert_eq!(out, vec![0, 0]);
        let big = [100u8, 100u8];
        let out2 = execute_layer(&layer, &big, &weights);
        // n0: 100+200=300>>7=2; n1: 300+400=700>>7=5
        assert_eq!(out2, vec![2, 5]);
    }

    #[test]
    fn conv_layer_matches_hand_computation() {
        // 3x3x1 input, 2x2 filter, stride 1 → 2x2 output.
        let layer = Layer::conv("c", 3, 3, 2, 2, 1, 1, 1);
        let ifmap = [1u8, 2, 3, 4, 5, 6, 7, 8, 9].map(|v| v * 10);
        let weights = [1u8, 1, 1, 1];
        let out = execute_layer(&layer, &ifmap, &weights);
        // Window sums: (10+20+40+50)=120, (20+30+50+60)=160,
        //              (40+50+70+80)=240, (50+60+80+90)=280; >>7.
        assert_eq!(out, vec![0, 1, 1, 2]);
    }

    #[test]
    fn negative_values_round_toward_negative_infinity() {
        // i8 semantics: 0x80 = -128; -128 >> 7 = -1 → 0xff.
        let layer = Layer::gemm("g", 1, 1, 1);
        let out = execute_layer(&layer, &[0x80], &[1]);
        assert_eq!(out, vec![0xff]);
    }

    #[test]
    fn out_of_bounds_access_is_a_typed_error() {
        let mut mem = SecureMemory::new(128, [1; 16], [2; 16]);
        let err = mem
            .write_region(96, 0, 0, TensorKind::Ifmap, &[0u8; 64])
            .expect_err("write past the image end");
        assert!(matches!(err, SedaError::OutOfBounds { size: 128, .. }));
        let err = mem
            .read_region(u64::MAX - 8, 0, 0, TensorKind::Ifmap, 64, 0)
            .expect_err("overflowing PA must not wrap");
        assert!(matches!(err, SedaError::OutOfBounds { .. }));
    }

    #[test]
    fn replayed_stale_activations_are_rejected() {
        // Write twice to the same buffer with bumped VN, then restore the
        // old ciphertext: the reader (holding the new VN and MAC) rejects.
        let mut mem = SecureMemory::new(4096, [7; 16], [8; 16]);
        let old: Vec<u8> = vec![1; 256];
        let new: Vec<u8> = vec![2; 256];
        mem.write_region(0, 10, 0, TensorKind::Ofmap, &old)
            .expect("region fits");
        let stale: Vec<u8> = mem.raw_mut()[..256].to_vec();
        let new_mac = mem
            .write_region(0, 11, 0, TensorKind::Ofmap, &new)
            .expect("region fits");
        mem.raw_mut()[..256].copy_from_slice(&stale); // replay!
        let err = mem.read_region(0, 11, 0, TensorKind::Ofmap, 256, new_mac);
        assert!(err.is_err(), "replayed ciphertext must fail verification");
    }
}
