//! Parallel model × scheme × NPU sweep engine.
//!
//! The paper's evaluation is a cross-product: every workload under every
//! protection scheme on every NPU (Figs. 5-6 alone are 13 × 6 × 2 = 156
//! pipeline runs). [`Sweep`] expands that cross-product once, shares one
//! accelerator simulation per distinct (NPU, model) pair through a
//! [`TraceCache`], and executes the points on a scoped thread pool.
//!
//! Three properties make the parallelism safe and the results exact:
//!
//! * **Traces are immutable.** `simulate_model` output never changes
//!   after construction, so points share it behind an `Arc`.
//! * **Scheme state is per-point.** A [`ProtectionScheme`] is stateful
//!   (metadata caches, traffic tallies), so each point constructs a fresh
//!   instance from its factory; nothing scheme-mutable crosses threads.
//! * **Results are slotted, not streamed.** Each point writes into its
//!   own pre-assigned slot, so the output order is the deterministic
//!   npu-major → model → scheme cross-product order regardless of thread
//!   interleaving, and parallel results are bit-identical to serial ones.
//!
//! # Examples
//!
//! ```
//! use seda::sweep::Sweep;
//! use seda_models::zoo;
//! use seda_scalesim::NpuConfig;
//!
//! let results = Sweep::new()
//!     .npu(NpuConfig::edge())
//!     .model(zoo::lenet())
//!     .schemes(["baseline", "SeDA"])
//!     .run();
//! let base = results.at(0, 0, 0);
//! let seda = results.at(0, 0, 1);
//! assert!(seda.traffic.total() >= base.traffic.total());
//! ```

use crate::error::SedaError;
use crate::pipeline::{dram_config_for, try_run_trace_with_dram_sim, RunResult};
use crate::resilience::{
    AttemptRecord, FailurePolicy, FailureReport, FaultHook, PointContext, PointFailure,
    PointReport, PointSink,
};
use seda_dram::{DramConfig, DramSim};
use seda_models::Model;
use seda_protect::{HashEngine, ProtectionScheme};
use seda_scalesim::{NpuConfig, TraceCache};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Factory producing a fresh scheme instance for one sweep point.
/// `Arc`, not `Box`: watchdog-budgeted attempts run on detached worker
/// threads that need their own handle to the factory.
type SchemeFactory = Arc<dyn Fn() -> Box<dyn ProtectionScheme> + Send + Sync>;

/// Per-NPU DRAM configuration override for memory-system ablations.
type DramMap = Box<dyn Fn(&NpuConfig) -> DramConfig + Send + Sync>;

struct SchemeSpec {
    label: String,
    build: SchemeFactory,
}

/// Converts a captured panic payload into the typed per-point error.
fn panic_to_error(point: String, payload: Box<dyn std::any::Any + Send>) -> SedaError {
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned());
    SedaError::PointPanicked { point, message }
}

/// Trace-cache statistics for one sweep execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Lookups served from the cache (no simulation ran).
    pub trace_hits: u64,
    /// Lookups that ran `simulate_model` — one per distinct (NPU, model).
    pub trace_misses: u64,
}

/// Results of a [`Sweep`] in deterministic cross-product order.
///
/// Each point carries either its per-inference runs or the [`SedaError`]
/// that poisoned it — a failing point (even one that *panicked* inside a
/// scheme) never takes down the other points. The panicking accessors
/// ([`at`](Self::at), [`runs_at`](Self::runs_at)) keep the ergonomic
/// all-green contract; fault-tolerant callers use
/// [`outcome`](Self::outcome) and [`failures`](Self::failures).
pub struct SweepResults {
    npus: Vec<String>,
    models: Vec<String>,
    schemes: Vec<String>,
    /// One entry per point (npu-major → model → scheme); each successful
    /// entry holds one [`RunResult`] per inference.
    points: Vec<Result<Vec<RunResult>, SedaError>>,
    /// Per-point execution accounting, index-aligned with `points`.
    reports: Vec<PointReport>,
    /// Trace-cache activity during this execution only.
    pub stats: SweepStats,
}

impl SweepResults {
    /// Sweep shape as `(npus, models, schemes)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.npus.len(), self.models.len(), self.schemes.len())
    }

    fn index(&self, npu: usize, model: usize, scheme: usize) -> usize {
        assert!(npu < self.npus.len(), "npu index {npu} out of range");
        assert!(
            model < self.models.len(),
            "model index {model} out of range"
        );
        assert!(
            scheme < self.schemes.len(),
            "scheme index {scheme} out of range"
        );
        (npu * self.models.len() + model) * self.schemes.len() + scheme
    }

    /// The completed run (including the final metadata drain) at a point.
    /// With `repeats = 1` — the default — this is the point's only run.
    ///
    /// # Panics
    ///
    /// Panics if the point failed; see [`outcome`](Self::outcome) for the
    /// fault-tolerant form.
    pub fn at(&self, npu: usize, model: usize, scheme: usize) -> &RunResult {
        // Invariant: the kernel returns one result per inference and
        // `repeats >= 1`, so a successful point is never empty.
        #[allow(clippy::expect_used)]
        let last = self
            .runs_at(npu, model, scheme)
            .last()
            .expect("every point has at least one inference");
        last
    }

    /// All per-inference runs at a point, in inference order.
    ///
    /// # Panics
    ///
    /// Panics if the point failed; see [`outcome`](Self::outcome) for the
    /// fault-tolerant form.
    pub fn runs_at(&self, npu: usize, model: usize, scheme: usize) -> &[RunResult] {
        match &self.points[self.index(npu, model, scheme)] {
            Ok(runs) => runs,
            Err(e) => panic!("sweep point failed: {e}"),
        }
    }

    /// The outcome of one point: its runs, or the error that poisoned it.
    pub fn outcome(
        &self,
        npu: usize,
        model: usize,
        scheme: usize,
    ) -> Result<&[RunResult], &SedaError> {
        match &self.points[self.index(npu, model, scheme)] {
            Ok(runs) => Ok(runs),
            Err(e) => Err(e),
        }
    }

    /// Labels and errors of every failed point, in deterministic order.
    /// Empty for an all-green sweep.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &str, &str, &SedaError)> {
        self.points.iter().enumerate().filter_map(move |(i, p)| {
            let s = self.schemes.len();
            let m = self.models.len();
            p.as_ref().err().map(|e| {
                (
                    self.npus[i / (s * m)].as_str(),
                    self.models[(i / s) % m].as_str(),
                    self.schemes[i % s].as_str(),
                    e,
                )
            })
        })
    }

    /// Iterates all points in deterministic order with their labels.
    ///
    /// # Panics
    ///
    /// Panics when reaching a failed point; fault-tolerant callers should
    /// use [`failures`](Self::failures) plus [`outcome`](Self::outcome).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &str, &[RunResult])> {
        self.points.iter().enumerate().map(move |(i, point)| {
            let s = self.schemes.len();
            let m = self.models.len();
            let runs = match point {
                Ok(runs) => runs.as_slice(),
                Err(e) => panic!("sweep point failed: {e}"),
            };
            (
                self.npus[i / (s * m)].as_str(),
                self.models[(i / s) % m].as_str(),
                self.schemes[i % s].as_str(),
                runs,
            )
        })
    }

    /// Per-point execution reports (attempts, retries, resume and
    /// cancellation flags), in deterministic cross-product order.
    pub fn reports(&self) -> &[PointReport] {
        &self.reports
    }

    /// The execution report of one point.
    pub fn report_at(&self, npu: usize, model: usize, scheme: usize) -> &PointReport {
        &self.reports[self.index(npu, model, scheme)]
    }

    /// Number of points replayed from a checkpoint journal instead of
    /// executed.
    pub fn resumed_count(&self) -> usize {
        self.reports.iter().filter(|r| r.resumed).count()
    }

    /// Structured digest of every failed point (labels, attempts, final
    /// error), in deterministic order. Empty for an all-green sweep.
    pub fn failure_report(&self) -> FailureReport {
        let s = self.schemes.len();
        let m = self.models.len();
        FailureReport {
            failures: self
                .points
                .iter()
                .enumerate()
                .filter_map(|(i, p)| {
                    p.as_ref().err().map(|e| PointFailure {
                        npu: self.npus[i / (s * m)].clone(),
                        model: self.models[(i / s) % m].clone(),
                        scheme: self.schemes[i % s].clone(),
                        attempts: self.reports[i].attempts_made(),
                        error: e.clone(),
                    })
                })
                .collect(),
        }
    }

    /// Scheme labels in sweep order.
    pub fn scheme_labels(&self) -> &[String] {
        &self.schemes
    }

    /// NPU labels in sweep order.
    pub fn npu_labels(&self) -> &[String] {
        &self.npus
    }

    /// Model labels in sweep order.
    pub fn model_labels(&self) -> &[String] {
        &self.models
    }
}

/// Builder for a parallel model × scheme × NPU evaluation.
///
/// Add axes with [`npu`](Self::npu)/[`model`](Self::model)/
/// [`scheme`](Self::scheme) (or their plural forms), optionally set a
/// verifier, repeat count, or thread count, then [`run`](Self::run).
/// Points execute in parallel via `std::thread::scope`; results come back
/// in the deterministic npu-major → model → scheme order and are
/// bit-identical to a serial execution.
///
/// # Examples
///
/// ```
/// use seda::sweep::Sweep;
/// use seda_models::zoo;
/// use seda_scalesim::NpuConfig;
///
/// let results = Sweep::new()
///     .npu(NpuConfig::edge())
///     .model(zoo::lenet())
///     .schemes(["baseline", "SGX-64B"])
///     .serial()
///     .run();
/// assert_eq!(results.shape(), (1, 1, 2));
/// assert!(results.at(0, 0, 1).total_cycles >= results.at(0, 0, 0).total_cycles);
/// ```
#[derive(Default)]
pub struct Sweep {
    npus: Vec<NpuConfig>,
    models: Vec<Model>,
    schemes: Vec<SchemeSpec>,
    verifier: Option<HashEngine>,
    repeats: u32,
    threads: Option<usize>,
    dram_map: Option<DramMap>,
    dram_replay_threads: Option<usize>,
    policy: FailurePolicy,
    point_budget_ms: Option<u64>,
    fault_hook: Option<FaultHook>,
    resume_from: Option<Vec<Option<Vec<RunResult>>>>,
    stream_to: Option<PointSink>,
}

impl Sweep {
    /// An empty sweep (one inference per point, auto thread count).
    pub fn new() -> Self {
        Self {
            repeats: 1,
            ..Self::default()
        }
    }

    /// Adds one NPU configuration.
    pub fn npu(mut self, npu: NpuConfig) -> Self {
        self.npus.push(npu);
        self
    }

    /// Adds several NPU configurations.
    pub fn npus(mut self, npus: impl IntoIterator<Item = NpuConfig>) -> Self {
        self.npus.extend(npus);
        self
    }

    /// Adds one workload.
    pub fn model(mut self, model: Model) -> Self {
        self.models.push(model);
        self
    }

    /// Adds several workloads.
    pub fn models(mut self, models: impl IntoIterator<Item = Model>) -> Self {
        self.models.extend(models);
        self
    }

    /// Adds a scheme from the [`seda_protect`] registry by name.
    ///
    /// The name is validated eagerly against
    /// [`seda_protect::scheme_by_name`]; each sweep point constructs its
    /// own fresh instance at execution time (schemes are stateful).
    ///
    /// # Panics
    ///
    /// Panics if the registry does not know `name`.
    pub fn scheme(mut self, name: &str) -> Self {
        assert!(
            seda_protect::scheme_by_name(name).is_some(),
            "unknown protection scheme {name:?}"
        );
        let owned = name.to_owned();
        self.schemes.push(SchemeSpec {
            label: owned.clone(),
            build: Arc::new(move || {
                seda_protect::scheme_by_name(&owned).expect("validated at build time")
            }),
        });
        self
    }

    /// Adds several registry schemes by name.
    pub fn schemes<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for name in names {
            self = self.scheme(name.as_ref());
        }
        self
    }

    /// Adds a custom scheme under `label`, built per point by `factory`
    /// (for configurations outside the registry, e.g. granularity
    /// ablations).
    pub fn scheme_with(
        mut self,
        label: &str,
        factory: impl Fn() -> Box<dyn ProtectionScheme> + Send + Sync + 'static,
    ) -> Self {
        self.schemes.push(SchemeSpec {
            label: label.to_owned(),
            build: Arc::new(factory),
        });
        self
    }

    /// Models the integrity-verification engine at every point.
    pub fn verifier(mut self, engine: HashEngine) -> Self {
        self.verifier = Some(engine);
        self
    }

    /// Runs `n` back-to-back inferences per point (steady state).
    pub fn repeats(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one inference");
        self.repeats = n;
        self
    }

    /// Caps the worker thread count (`1` forces serial execution).
    /// Defaults to the machine's available parallelism.
    ///
    /// `0` is clamped to `1` (serial): a thread cap of zero can only mean
    /// "as serial as possible", and the former `assert!` here was the one
    /// panic left in an otherwise typed-error builder pipeline. Callers
    /// that want a zero cap rejected loudly use [`Sweep::try_threads`].
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Fallible form of [`Sweep::threads`]: rejects a zero thread cap
    /// with a typed error instead of clamping.
    ///
    /// # Errors
    ///
    /// Returns [`SedaError::InvalidSpec`] when `n == 0`.
    pub fn try_threads(self, n: usize) -> Result<Self, SedaError> {
        if n == 0 {
            return Err(SedaError::InvalidSpec {
                reason: "need at least one sweep worker thread (threads == 0)".to_owned(),
            });
        }
        Ok(self.threads(n))
    }

    /// Caps the worker threads the DRAM simulator may shard each point's
    /// batched replay across ([`DramSim::set_replay_threads`]); `1`
    /// forces serial replay, `0` is clamped to `1`. Defaults to the
    /// simulator's automatic sizing. Replay results are bit-identical at
    /// any setting, so this is purely a host-resource knob — useful to
    /// keep a parallel sweep from oversubscribing cores with per-point
    /// replay workers.
    pub fn dram_replay_threads(mut self, n: usize) -> Self {
        self.dram_replay_threads = Some(n.max(1));
        self
    }

    /// Forces serial in-order execution on the calling thread.
    pub fn serial(self) -> Self {
        self.threads(1)
    }

    /// Sets what happens when a point fails. The default is
    /// [`FailurePolicy::Skip`]: record the failure, keep going.
    pub fn on_failure(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Caps each point *attempt* to a wall-clock budget. A hung attempt
    /// is abandoned and surfaces as [`SedaError::PointTimedOut`]; under a
    /// retry policy the next attempt starts immediately.
    ///
    /// Budgeted attempts run on detached watchdog threads (a scoped pool
    /// would have to join the hung worker, re-introducing the hang), so
    /// an abandoned attempt's thread leaks until it finishes on its own.
    /// That is the deliberate trade: the sweep makes progress, the OS
    /// reclaims the stragglers at process exit. `0` is clamped to 1 ms.
    pub fn point_budget_ms(mut self, budget_ms: u64) -> Self {
        self.point_budget_ms = Some(budget_ms.max(1));
        self
    }

    /// Installs a fault-injection hook, called at the start of every
    /// attempt inside the point's panic isolation — the chaos harness's
    /// entry point (`seda-adversary`). Production sweeps leave this
    /// unset; it costs nothing when absent.
    pub fn fault_hook(mut self, hook: FaultHook) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Pre-fills points from a checkpoint journal: `Some(runs)` slots are
    /// replayed bit-identically without executing, `None` slots run
    /// normally. The vector must be index-aligned with this sweep's
    /// cross-product (see [`load_journal`](crate::resilience::load_journal)).
    ///
    /// # Panics
    ///
    /// `run` panics if the snapshot length differs from the sweep's
    /// point count — the journal describes a different sweep.
    pub fn resume_from(mut self, points: Vec<Option<Vec<RunResult>>>) -> Self {
        self.resume_from = Some(points);
        self
    }

    /// Streams every freshly-executed successful point (index + runs) to
    /// `sink` as it completes — the checkpoint journal's feed. Resumed
    /// points are not re-streamed (their journal entries already exist).
    /// The sink is called from worker threads and must not panic.
    pub fn stream_to(mut self, sink: impl Fn(usize, &[RunResult]) + Send + Sync + 'static) -> Self {
        self.stream_to = Some(Box::new(sink));
        self
    }

    /// Overrides the per-NPU DRAM configuration. By default every point
    /// uses [`dram_config_for`]; `map` receives each point's NPU and
    /// returns the memory system to simulate instead — the injection
    /// point for timing ablations (e.g. the golden-figure sensitivity
    /// tests, which perturb `t_bl` by one cycle).
    pub fn dram_map(
        mut self,
        map: impl Fn(&NpuConfig) -> DramConfig + Send + Sync + 'static,
    ) -> Self {
        self.dram_map = Some(Box::new(map));
        self
    }

    fn point_count(&self) -> usize {
        self.npus.len() * self.models.len() * self.schemes.len()
    }

    /// `npu/model/scheme` label of the point at flat index `idx`.
    fn point_label(&self, idx: usize) -> String {
        let s = self.schemes.len();
        let m = self.models.len();
        format!(
            "{}/{}/{}",
            self.npus[idx / (s * m)].name,
            self.models[(idx / s) % m].name(),
            self.schemes[idx % s].label
        )
    }

    fn point_context(&self, idx: usize, attempt: u32) -> PointContext {
        let s = self.schemes.len();
        let m = self.models.len();
        PointContext {
            index: idx,
            attempt,
            npu: self.npus[idx / (s * m)].name.clone(),
            model: self.models[(idx / s) % m].name().to_owned(),
            scheme: self.schemes[idx % s].label.clone(),
        }
    }

    /// Runs one point under the active [`FailurePolicy`]: up to
    /// `max_attempts` attempts, each individually panic-isolated and
    /// (when a budget is set) watchdog-bounded, with the deterministic
    /// backoff account recorded between failed attempts.
    fn run_point(
        &self,
        idx: usize,
        cache: &TraceCache,
    ) -> (Result<Vec<RunResult>, SedaError>, PointReport) {
        let max = self.policy.max_attempts();
        let mut report = PointReport::default();
        let mut last_err: Option<SedaError> = None;
        for attempt in 1..=max {
            let _span = seda_telemetry::Span::start("sweep.point_ns");
            let started = Instant::now();
            let outcome = self.run_attempt(idx, attempt, cache);
            seda_telemetry::record("sweep.attempt_ms", started.elapsed().as_millis() as u64);
            match outcome {
                Ok(runs) => {
                    report.attempts.push(AttemptRecord {
                        attempt,
                        error: None,
                        backoff_ms: 0,
                    });
                    seda_telemetry::counter_add("sweep.points.ok", 1);
                    return (Ok(runs), report);
                }
                Err(e) => {
                    if matches!(e, SedaError::PointTimedOut { .. }) {
                        seda_telemetry::counter_add("sweep.points.timed_out", 1);
                    }
                    report.attempts.push(AttemptRecord {
                        attempt,
                        error: Some(e.to_string()),
                        backoff_ms: self.policy.backoff_ms(attempt),
                    });
                    if attempt < max {
                        seda_telemetry::counter_add("sweep.points.retried", 1);
                    }
                    last_err = Some(e);
                }
            }
        }
        seda_telemetry::counter_add("sweep.points.failed", 1);
        // Invariant: `max >= 1`, so the loop recorded at least one error.
        #[allow(clippy::expect_used)]
        let err = last_err.expect("at least one attempt executed");
        (Err(err), report)
    }

    fn run_attempt(
        &self,
        idx: usize,
        attempt: u32,
        cache: &TraceCache,
    ) -> Result<Vec<RunResult>, SedaError> {
        match self.point_budget_ms {
            Some(budget_ms) => self.run_attempt_watchdog(idx, attempt, budget_ms, cache),
            None => self.run_attempt_inline(idx, attempt, cache),
        }
    }

    /// Unbudgeted attempt on the calling thread.
    ///
    /// Fault isolation: a panic anywhere inside one attempt — a buggy
    /// scheme factory, a scheme transform, the kernel itself, an injected
    /// chaos fault — is contained to that attempt and surfaces as a typed
    /// error; every other point still completes. The closure only touches
    /// the immutable trace cache and per-point scheme state, so resuming
    /// after an unwind cannot observe a broken invariant.
    fn run_attempt_inline(
        &self,
        idx: usize,
        attempt: u32,
        cache: &TraceCache,
    ) -> Result<Vec<RunResult>, SedaError> {
        let s = self.schemes.len();
        let m = self.models.len();
        let npu = &self.npus[idx / (s * m)];
        let model = &self.models[(idx / s) % m];
        catch_unwind(AssertUnwindSafe(|| {
            if let Some(hook) = &self.fault_hook {
                hook(&self.point_context(idx, attempt))?;
            }
            let sim = cache.get_or_simulate(npu, model);
            let mut scheme = (self.schemes[idx % s].build)();
            let dram_cfg = match &self.dram_map {
                Some(map) => map(npu),
                None => dram_config_for(npu),
            };
            let mut dram = DramSim::new(dram_cfg);
            if let Some(n) = self.dram_replay_threads {
                dram.set_replay_threads(n);
            }
            try_run_trace_with_dram_sim(
                &sim,
                npu,
                scheme.as_mut(),
                self.verifier.as_ref(),
                self.repeats,
                dram,
            )
        }))
        .unwrap_or_else(|payload| Err(panic_to_error(self.point_label(idx), payload)))
    }

    /// Budgeted attempt on a detached watchdog thread. The trace is
    /// fetched (and cached) on the calling thread first — simulation is
    /// deterministic and shared across schemes, so it is not what a
    /// watchdog is for — then the scheme + replay kernel runs on a
    /// worker the watchdog can abandon if it exceeds the budget.
    fn run_attempt_watchdog(
        &self,
        idx: usize,
        attempt: u32,
        budget_ms: u64,
        cache: &TraceCache,
    ) -> Result<Vec<RunResult>, SedaError> {
        let s = self.schemes.len();
        let m = self.models.len();
        let npu = &self.npus[idx / (s * m)];
        let model = &self.models[(idx / s) % m];
        let point = self.point_label(idx);

        // Everything the detached worker needs, prepared under the same
        // panic isolation the inline path has.
        let prep = catch_unwind(AssertUnwindSafe(|| {
            let sim = cache.get_or_simulate(npu, model);
            let dram_cfg = match &self.dram_map {
                Some(map) => map(npu),
                None => dram_config_for(npu),
            };
            (sim, dram_cfg)
        }));
        let (sim, dram_cfg) = match prep {
            Ok(prepared) => prepared,
            Err(payload) => return Err(panic_to_error(point, payload)),
        };

        let build = Arc::clone(&self.schemes[idx % s].build);
        let hook = self.fault_hook.clone();
        let ctx = self.point_context(idx, attempt);
        let verifier = self.verifier;
        let repeats = self.repeats;
        let replay_threads = self.dram_replay_threads;
        let npu = npu.clone();
        let worker_point = point.clone();
        let (tx, rx) = mpsc::sync_channel(1);
        let spawned = std::thread::Builder::new()
            .name(format!("seda-watchdog-{idx}-a{attempt}"))
            .spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(hook) = &hook {
                        hook(&ctx)?;
                    }
                    let mut scheme = build();
                    let mut dram = DramSim::new(dram_cfg);
                    if let Some(n) = replay_threads {
                        dram.set_replay_threads(n);
                    }
                    try_run_trace_with_dram_sim(
                        &sim,
                        &npu,
                        scheme.as_mut(),
                        verifier.as_ref(),
                        repeats,
                        dram,
                    )
                }))
                .unwrap_or_else(|payload| Err(panic_to_error(worker_point, payload)));
                // The watchdog may have given up on us; a dead receiver
                // is fine — the result is simply discarded.
                let _ = tx.send(outcome);
            });
        match spawned {
            Err(e) => Err(SedaError::InvalidSpec {
                reason: format!("cannot spawn watchdog worker for {point}: {e}"),
            }),
            // Dropping the JoinHandle detaches the worker: on timeout it
            // keeps running (and leaks until it finishes on its own), but
            // the sweep moves on — that is the watchdog contract.
            Ok(_detached) => match rx.recv_timeout(Duration::from_millis(budget_ms)) {
                Ok(outcome) => outcome,
                Err(_) => Err(SedaError::PointTimedOut { point, budget_ms }),
            },
        }
    }

    /// Executes the sweep with a private trace cache.
    pub fn run(&self) -> SweepResults {
        self.run_with_cache(&TraceCache::new())
    }

    /// Executes one point end to end under the resilience machinery:
    /// checkpoint replay, fail-fast cancellation, the retry loop, and
    /// journal streaming.
    fn execute_point(
        &self,
        idx: usize,
        cache: &TraceCache,
        aborted: &AtomicBool,
    ) -> (Result<Vec<RunResult>, SedaError>, PointReport) {
        if let Some(runs) = self.resume_from.as_ref().and_then(|r| r[idx].clone()) {
            seda_telemetry::counter_add("sweep.points.resumed", 1);
            return (
                Ok(runs),
                PointReport {
                    attempts: Vec::new(),
                    resumed: true,
                    cancelled: false,
                },
            );
        }
        if self.policy == FailurePolicy::FailFast && aborted.load(Ordering::SeqCst) {
            seda_telemetry::counter_add("sweep.points.cancelled", 1);
            return (
                Err(SedaError::PointCancelled {
                    point: self.point_label(idx),
                }),
                PointReport {
                    attempts: Vec::new(),
                    resumed: false,
                    cancelled: true,
                },
            );
        }
        let (outcome, report) = self.run_point(idx, cache);
        match &outcome {
            Ok(runs) => {
                if let Some(sink) = &self.stream_to {
                    sink(idx, runs);
                }
            }
            Err(_) => aborted.store(true, Ordering::SeqCst),
        }
        (outcome, report)
    }

    /// Executes the sweep against a caller-owned [`TraceCache`], so
    /// several sweeps (or repeated invocations) share simulations.
    /// Reported [`SweepStats`] cover this execution only.
    ///
    /// # Panics
    ///
    /// Panics if a [`resume_from`](Self::resume_from) snapshot was set
    /// whose length differs from this sweep's point count.
    pub fn run_with_cache(&self, cache: &TraceCache) -> SweepResults {
        let total = self.point_count();
        if let Some(resume) = &self.resume_from {
            assert_eq!(
                resume.len(),
                total,
                "resume snapshot has {} slots but the sweep has {total} points \
                 — the journal describes a different sweep",
                resume.len()
            );
        }
        let (hits0, misses0) = (cache.hits(), cache.misses());
        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(total.max(1));

        type Slot = Option<(Result<Vec<RunResult>, SedaError>, PointReport)>;
        let mut slots: Vec<Slot> = Vec::new();
        slots.resize_with(total, || None);
        // Fail-fast latch: once set, workers stop claiming fresh points.
        // Cancellation is cooperative — points already in flight finish —
        // so the exact cancelled set is deterministic only under serial
        // execution.
        let aborted = AtomicBool::new(false);

        if threads <= 1 {
            for (idx, slot) in slots.iter_mut().enumerate() {
                *slot = Some(self.execute_point(idx, cache, &aborted));
            }
        } else {
            let next = AtomicUsize::new(0);
            let out = Mutex::new(&mut slots);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= total {
                            break;
                        }
                        let point = self.execute_point(idx, cache, &aborted);
                        // Invariant: workers never panic while holding the
                        // lock (execute_point catches unwinds), so the
                        // mutex cannot be poisoned.
                        #[allow(clippy::expect_used)]
                        let mut guard = out.lock().expect("sweep results poisoned");
                        guard[idx] = Some(point);
                    });
                }
            });
        }

        let mut points = Vec::with_capacity(total);
        let mut reports = Vec::with_capacity(total);
        for slot in slots {
            // Invariant: the work loop above assigns every index in
            // `0..total` exactly once before the scope joins.
            #[allow(clippy::expect_used)]
            let (outcome, report) = slot.expect("every point executed");
            points.push(outcome);
            reports.push(report);
        }

        SweepResults {
            npus: self.npus.iter().map(|n| n.name.clone()).collect(),
            models: self.models.iter().map(|m| m.name().to_owned()).collect(),
            schemes: self.schemes.iter().map(|s| s.label.clone()).collect(),
            points,
            reports,
            stats: SweepStats {
                trace_hits: cache.hits() - hits0,
                trace_misses: cache.misses() - misses0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_models::zoo;
    use seda_protect::{BlockMacKind, BlockMacScheme, PROTECTED_BYTES};

    fn headline_sweep() -> Sweep {
        Sweep::new()
            .npus([NpuConfig::edge(), NpuConfig::server()])
            .models([zoo::lenet(), zoo::dlrm()])
            .schemes(crate::experiment::scheme_names())
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let par = headline_sweep().threads(4).run();
        let ser = headline_sweep().serial().run();
        assert_eq!(par.shape(), ser.shape());
        for (p, s) in par.iter().zip(ser.iter()) {
            assert_eq!(p.0, s.0, "npu order must match");
            assert_eq!(p.1, s.1, "model order must match");
            assert_eq!(p.2, s.2, "scheme order must match");
            for (pr, sr) in p.3.iter().zip(s.3.iter()) {
                assert_eq!(pr.total_cycles, sr.total_cycles);
                assert_eq!(pr.traffic, sr.traffic);
                assert_eq!(
                    pr.layers.iter().map(|l| l.cycles).collect::<Vec<_>>(),
                    sr.layers.iter().map(|l| l.cycles).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn one_simulation_per_distinct_npu_model_pair() {
        let results = headline_sweep().run();
        // 2 NPUs × 2 models = 4 distinct traces; 6 schemes each.
        assert_eq!(results.stats.trace_misses, 4);
        assert_eq!(results.stats.trace_hits, 4 * 6 - 4);
    }

    #[test]
    fn shared_cache_reuses_traces_across_sweeps() {
        let cache = seda_scalesim::TraceCache::new();
        let first = headline_sweep().run_with_cache(&cache);
        let second = headline_sweep().run_with_cache(&cache);
        assert_eq!(first.stats.trace_misses, 4);
        assert_eq!(second.stats.trace_misses, 0, "second sweep is all hits");
    }

    #[test]
    fn custom_scheme_factories_run_per_point() {
        let results = Sweep::new()
            .npu(NpuConfig::edge())
            .models([zoo::lenet(), zoo::dlrm()])
            .scheme("baseline")
            .scheme_with("MGX-128B", || {
                Box::new(BlockMacScheme::new(BlockMacKind::Mgx, 128, PROTECTED_BYTES))
            })
            .run();
        assert_eq!(results.shape(), (1, 2, 2));
        assert_eq!(results.scheme_labels()[1], "MGX-128B");
        for mi in 0..2 {
            let base = results.at(0, mi, 0);
            let mgx = results.at(0, mi, 1);
            assert!(
                mgx.traffic.total() > base.traffic.total(),
                "fresh per-point scheme state must accumulate traffic \
                 independently per workload"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown protection scheme")]
    fn unknown_scheme_names_fail_eagerly() {
        let _ = Sweep::new().scheme("definitely-not-a-scheme");
    }

    #[test]
    fn poisoned_point_does_not_take_down_the_sweep() {
        use crate::error::SedaError;
        let results = Sweep::new()
            .npu(NpuConfig::edge())
            .models([zoo::lenet(), zoo::dlrm()])
            .scheme("baseline")
            .scheme_with("poison", || panic!("injected factory failure"))
            .run();
        assert_eq!(results.shape(), (1, 2, 2));
        for mi in 0..2 {
            let healthy = results.outcome(0, mi, 0).expect("baseline still runs");
            assert!(!healthy.is_empty());
            let err = results.outcome(0, mi, 1).expect_err("poisoned point fails");
            assert!(matches!(err, SedaError::PointPanicked { .. }));
            assert!(
                err.to_string().contains("injected factory failure"),
                "panic payload must be captured: {err}"
            );
        }
        let fails: Vec<_> = results.failures().collect();
        assert_eq!(fails.len(), 2, "exactly the poisoned scheme's points");
        assert!(fails.iter().all(|(_, _, scheme, _)| *scheme == "poison"));
    }

    #[test]
    #[should_panic(expected = "sweep point failed")]
    fn panicking_accessor_reports_poisoned_points() {
        let results = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .scheme_with("poison", || panic!("injected factory failure"))
            .run();
        let _ = results.at(0, 0, 0);
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        // Regression: `threads(0)` used to hit a bare `assert!`. The
        // documented contract is a clamp to 1, so a zero cap must run and
        // produce results bit-identical to an explicit serial sweep.
        let base = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .scheme("baseline");
        assert_eq!(base.threads, None);
        let clamped = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .scheme("baseline")
            .threads(0);
        assert_eq!(clamped.threads, Some(1));
        let zero = clamped.run();
        let serial = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .scheme("baseline")
            .serial()
            .run();
        assert_eq!(
            zero.at(0, 0, 0).total_cycles,
            serial.at(0, 0, 0).total_cycles
        );
    }

    #[test]
    fn try_threads_rejects_zero_with_a_typed_error() {
        let err = Sweep::new()
            .try_threads(0)
            .map(|_| ())
            .expect_err("zero worker threads is malformed");
        assert!(matches!(err, SedaError::InvalidSpec { .. }));
        assert!(err.to_string().contains("thread"), "{err}");
        let ok = Sweep::new().try_threads(3).expect("positive cap is fine");
        assert_eq!(ok.threads, Some(3));
    }

    #[test]
    fn failure_ordering_is_deterministic_under_parallel_execution() {
        let build = || {
            Sweep::new()
                .npus([NpuConfig::edge(), NpuConfig::server()])
                .models([zoo::lenet(), zoo::dlrm()])
                .scheme("baseline")
                .scheme_with("poison-a", || panic!("a down"))
                .scheme_with("poison-b", || panic!("b down"))
        };
        let order = |r: &SweepResults| {
            r.failures()
                .map(|(n, m, s, _)| (n.to_owned(), m.to_owned(), s.to_owned()))
                .collect::<Vec<_>>()
        };
        let serial = order(&build().serial().run());
        assert_eq!(serial.len(), 2 * 2 * 2, "both poisoned schemes, all pairs");
        for round in 0..3 {
            let parallel = order(&build().threads(4).run());
            assert_eq!(
                parallel, serial,
                "failure order must not depend on thread interleaving (round {round})"
            );
        }
    }

    #[test]
    fn outcome_surfaces_every_point_when_all_fail() {
        let results = Sweep::new()
            .npu(NpuConfig::edge())
            .models([zoo::lenet(), zoo::dlrm()])
            .scheme_with("poison-a", || panic!("a down"))
            .scheme_with("poison-b", || panic!("b down"))
            .run();
        let (n, m, s) = results.shape();
        for ni in 0..n {
            for mi in 0..m {
                for si in 0..s {
                    let err = results
                        .outcome(ni, mi, si)
                        .expect_err("every point must fail");
                    assert!(matches!(err, SedaError::PointPanicked { .. }), "{err}");
                }
            }
        }
        assert_eq!(results.failures().count(), n * m * s);
        let report = results.failure_report();
        assert_eq!(report.len(), n * m * s);
        let text = report.render();
        assert!(text.contains("a down") && text.contains("b down"), "{text}");
    }

    #[test]
    fn retry_policy_recovers_transient_faults_bit_identically() {
        use crate::resilience::PointContext;
        let clean = headline_sweep().serial().run();
        let flaky = headline_sweep()
            .serial()
            .fault_hook(Arc::new(|ctx: &PointContext| {
                // Deterministic transient fault on every third point,
                // first attempt only.
                if ctx.index.is_multiple_of(3) && ctx.attempt == 1 {
                    Err(SedaError::InvalidSpec {
                        reason: format!("transient fault at {}", ctx.label()),
                    })
                } else {
                    Ok(())
                }
            }))
            .on_failure(FailurePolicy::Retry {
                max_attempts: 3,
                base_backoff_ms: 5,
            })
            .run();
        assert!(
            flaky.failure_report().is_empty(),
            "all faults are transient"
        );
        for (c, f) in clean.iter().zip(flaky.iter()) {
            assert_eq!((c.0, c.1, c.2), (f.0, f.1, f.2));
            assert_eq!(c.3, f.3, "retried results must be bit-identical");
        }
        for (i, r) in flaky.reports().iter().enumerate() {
            let expected = if i.is_multiple_of(3) { 2 } else { 1 };
            assert_eq!(r.attempts_made(), expected, "point {i}");
            if i.is_multiple_of(3) {
                assert_eq!(r.attempts[0].backoff_ms, 5, "jitter-free base backoff");
                assert!(r.attempts[0]
                    .error
                    .as_deref()
                    .is_some_and(|e| e.contains("transient fault")));
            }
        }
    }

    #[test]
    fn watchdog_converts_stalls_into_typed_timeouts_and_retries_recover() {
        use crate::resilience::PointContext;
        let results = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .scheme("baseline")
            .serial()
            .fault_hook(Arc::new(|ctx: &PointContext| {
                if ctx.attempt == 1 {
                    // Hang well past the budget; the second attempt is
                    // stall-free and must succeed within it.
                    std::thread::sleep(Duration::from_millis(4000));
                }
                Ok(())
            }))
            .point_budget_ms(500)
            .on_failure(FailurePolicy::Retry {
                max_attempts: 2,
                base_backoff_ms: 7,
            })
            .run();
        assert!(results.outcome(0, 0, 0).is_ok(), "retry recovers the stall");
        let report = results.report_at(0, 0, 0);
        assert_eq!(report.attempts_made(), 2);
        assert!(
            report.attempts[0]
                .error
                .as_deref()
                .is_some_and(|e| e.contains("watchdog")),
            "{report:?}"
        );
        assert_eq!(report.attempts[0].backoff_ms, 7);
        assert_eq!(report.total_backoff_ms(), 7);
    }

    #[test]
    fn fail_fast_cancels_the_remaining_points_serially() {
        let results = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .scheme_with("poison", || panic!("down"))
            .scheme("baseline")
            .scheme("SeDA")
            .serial()
            .on_failure(FailurePolicy::FailFast)
            .run();
        assert!(matches!(
            results.outcome(0, 0, 0),
            Err(SedaError::PointPanicked { .. })
        ));
        for si in 1..3 {
            let err = results.outcome(0, 0, si).expect_err("cancelled");
            assert!(matches!(err, SedaError::PointCancelled { .. }), "{err}");
            assert!(results.report_at(0, 0, si).cancelled);
        }
        let report = results.failure_report();
        assert_eq!(report.len(), 3, "cancelled points appear in the report");
        assert_eq!(report.failures[0].attempts, 1);
        assert_eq!(report.failures[1].attempts, 0, "never started");
    }

    #[test]
    fn resume_prefill_replays_checkpointed_points_and_streams_the_rest() {
        let clean = headline_sweep().serial().run();
        let total = 2 * 2 * 6;
        // Checkpoint every even point; the resumed sweep must execute
        // only the odd ones, and the combined result must be
        // bit-identical to the clean run.
        let prefill: Vec<Option<Vec<RunResult>>> = (0..total)
            .map(|i: usize| {
                (i.is_multiple_of(2)).then(|| clean.points[i].as_ref().expect("clean run").clone())
            })
            .collect();
        let streamed = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&streamed);
        let resumed = headline_sweep()
            .serial()
            .resume_from(prefill)
            .stream_to(move |i, _runs| sink.lock().expect("sink lock").push(i))
            .run();
        assert_eq!(resumed.resumed_count(), total / 2);
        for i in 0..total {
            assert_eq!(
                resumed.points[i].as_ref().expect("all green"),
                clean.points[i].as_ref().expect("all green"),
                "point {i}"
            );
        }
        let mut got = streamed.lock().expect("sink lock").clone();
        got.sort_unstable();
        let expected: Vec<usize> = (0..total).filter(|i| i % 2 == 1).collect();
        assert_eq!(got, expected, "only freshly-executed points stream");
    }

    #[test]
    #[should_panic(expected = "different sweep")]
    fn mismatched_resume_snapshot_is_rejected() {
        let _ = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .scheme("baseline")
            .resume_from(vec![None, None])
            .run();
    }

    #[test]
    fn dram_replay_thread_cap_is_bit_identical() {
        // The replay worker cap is a host-resource knob, not a model
        // parameter: any setting (including the 0 -> 1 clamp) must leave
        // every result bit-identical.
        let base = headline_sweep().serial().run();
        for cap in [0usize, 1, 4] {
            let capped = headline_sweep().serial().dram_replay_threads(cap).run();
            for (b, c) in base.iter().zip(capped.iter()) {
                for (br, cr) in b.3.iter().zip(c.3.iter()) {
                    assert_eq!(br.total_cycles, cr.total_cycles, "cap={cap}");
                    assert_eq!(br.dram, cr.dram, "cap={cap}");
                }
            }
        }
    }
}
