//! Parallel model × scheme × NPU sweep engine.
//!
//! The paper's evaluation is a cross-product: every workload under every
//! protection scheme on every NPU (Figs. 5-6 alone are 13 × 6 × 2 = 156
//! pipeline runs). [`Sweep`] expands that cross-product once, shares one
//! accelerator simulation per distinct (NPU, model) pair through a
//! [`TraceCache`], and executes the points on a scoped thread pool.
//!
//! Three properties make the parallelism safe and the results exact:
//!
//! * **Traces are immutable.** `simulate_model` output never changes
//!   after construction, so points share it behind an `Arc`.
//! * **Scheme state is per-point.** A [`ProtectionScheme`] is stateful
//!   (metadata caches, traffic tallies), so each point constructs a fresh
//!   instance from its factory; nothing scheme-mutable crosses threads.
//! * **Results are slotted, not streamed.** Each point writes into its
//!   own pre-assigned slot, so the output order is the deterministic
//!   npu-major → model → scheme cross-product order regardless of thread
//!   interleaving, and parallel results are bit-identical to serial ones.
//!
//! # Examples
//!
//! ```
//! use seda::sweep::Sweep;
//! use seda_models::zoo;
//! use seda_scalesim::NpuConfig;
//!
//! let results = Sweep::new()
//!     .npu(NpuConfig::edge())
//!     .model(zoo::lenet())
//!     .schemes(["baseline", "SeDA"])
//!     .run();
//! let base = results.at(0, 0, 0);
//! let seda = results.at(0, 0, 1);
//! assert!(seda.traffic.total() >= base.traffic.total());
//! ```

use crate::error::SedaError;
use crate::pipeline::{dram_config_for, try_run_trace_with_dram_sim, RunResult};
use seda_dram::{DramConfig, DramSim};
use seda_models::Model;
use seda_protect::{HashEngine, ProtectionScheme};
use seda_scalesim::{NpuConfig, TraceCache};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Factory producing a fresh scheme instance for one sweep point.
type SchemeFactory = Box<dyn Fn() -> Box<dyn ProtectionScheme> + Send + Sync>;

/// Per-NPU DRAM configuration override for memory-system ablations.
type DramMap = Box<dyn Fn(&NpuConfig) -> DramConfig + Send + Sync>;

struct SchemeSpec {
    label: String,
    build: SchemeFactory,
}

/// Trace-cache statistics for one sweep execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Lookups served from the cache (no simulation ran).
    pub trace_hits: u64,
    /// Lookups that ran `simulate_model` — one per distinct (NPU, model).
    pub trace_misses: u64,
}

/// Results of a [`Sweep`] in deterministic cross-product order.
///
/// Each point carries either its per-inference runs or the [`SedaError`]
/// that poisoned it — a failing point (even one that *panicked* inside a
/// scheme) never takes down the other points. The panicking accessors
/// ([`at`](Self::at), [`runs_at`](Self::runs_at)) keep the ergonomic
/// all-green contract; fault-tolerant callers use
/// [`outcome`](Self::outcome) and [`failures`](Self::failures).
pub struct SweepResults {
    npus: Vec<String>,
    models: Vec<String>,
    schemes: Vec<String>,
    /// One entry per point (npu-major → model → scheme); each successful
    /// entry holds one [`RunResult`] per inference.
    points: Vec<Result<Vec<RunResult>, SedaError>>,
    /// Trace-cache activity during this execution only.
    pub stats: SweepStats,
}

impl SweepResults {
    /// Sweep shape as `(npus, models, schemes)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.npus.len(), self.models.len(), self.schemes.len())
    }

    fn index(&self, npu: usize, model: usize, scheme: usize) -> usize {
        assert!(npu < self.npus.len(), "npu index {npu} out of range");
        assert!(
            model < self.models.len(),
            "model index {model} out of range"
        );
        assert!(
            scheme < self.schemes.len(),
            "scheme index {scheme} out of range"
        );
        (npu * self.models.len() + model) * self.schemes.len() + scheme
    }

    /// The completed run (including the final metadata drain) at a point.
    /// With `repeats = 1` — the default — this is the point's only run.
    ///
    /// # Panics
    ///
    /// Panics if the point failed; see [`outcome`](Self::outcome) for the
    /// fault-tolerant form.
    pub fn at(&self, npu: usize, model: usize, scheme: usize) -> &RunResult {
        // Invariant: the kernel returns one result per inference and
        // `repeats >= 1`, so a successful point is never empty.
        #[allow(clippy::expect_used)]
        let last = self
            .runs_at(npu, model, scheme)
            .last()
            .expect("every point has at least one inference");
        last
    }

    /// All per-inference runs at a point, in inference order.
    ///
    /// # Panics
    ///
    /// Panics if the point failed; see [`outcome`](Self::outcome) for the
    /// fault-tolerant form.
    pub fn runs_at(&self, npu: usize, model: usize, scheme: usize) -> &[RunResult] {
        match &self.points[self.index(npu, model, scheme)] {
            Ok(runs) => runs,
            Err(e) => panic!("sweep point failed: {e}"),
        }
    }

    /// The outcome of one point: its runs, or the error that poisoned it.
    pub fn outcome(
        &self,
        npu: usize,
        model: usize,
        scheme: usize,
    ) -> Result<&[RunResult], &SedaError> {
        match &self.points[self.index(npu, model, scheme)] {
            Ok(runs) => Ok(runs),
            Err(e) => Err(e),
        }
    }

    /// Labels and errors of every failed point, in deterministic order.
    /// Empty for an all-green sweep.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &str, &str, &SedaError)> {
        self.points.iter().enumerate().filter_map(move |(i, p)| {
            let s = self.schemes.len();
            let m = self.models.len();
            p.as_ref().err().map(|e| {
                (
                    self.npus[i / (s * m)].as_str(),
                    self.models[(i / s) % m].as_str(),
                    self.schemes[i % s].as_str(),
                    e,
                )
            })
        })
    }

    /// Iterates all points in deterministic order with their labels.
    ///
    /// # Panics
    ///
    /// Panics when reaching a failed point; fault-tolerant callers should
    /// use [`failures`](Self::failures) plus [`outcome`](Self::outcome).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &str, &[RunResult])> {
        self.points.iter().enumerate().map(move |(i, point)| {
            let s = self.schemes.len();
            let m = self.models.len();
            let runs = match point {
                Ok(runs) => runs.as_slice(),
                Err(e) => panic!("sweep point failed: {e}"),
            };
            (
                self.npus[i / (s * m)].as_str(),
                self.models[(i / s) % m].as_str(),
                self.schemes[i % s].as_str(),
                runs,
            )
        })
    }

    /// Scheme labels in sweep order.
    pub fn scheme_labels(&self) -> &[String] {
        &self.schemes
    }

    /// NPU labels in sweep order.
    pub fn npu_labels(&self) -> &[String] {
        &self.npus
    }

    /// Model labels in sweep order.
    pub fn model_labels(&self) -> &[String] {
        &self.models
    }
}

/// Builder for a parallel model × scheme × NPU evaluation.
///
/// Add axes with [`npu`](Self::npu)/[`model`](Self::model)/
/// [`scheme`](Self::scheme) (or their plural forms), optionally set a
/// verifier, repeat count, or thread count, then [`run`](Self::run).
/// Points execute in parallel via `std::thread::scope`; results come back
/// in the deterministic npu-major → model → scheme order and are
/// bit-identical to a serial execution.
///
/// # Examples
///
/// ```
/// use seda::sweep::Sweep;
/// use seda_models::zoo;
/// use seda_scalesim::NpuConfig;
///
/// let results = Sweep::new()
///     .npu(NpuConfig::edge())
///     .model(zoo::lenet())
///     .schemes(["baseline", "SGX-64B"])
///     .serial()
///     .run();
/// assert_eq!(results.shape(), (1, 1, 2));
/// assert!(results.at(0, 0, 1).total_cycles >= results.at(0, 0, 0).total_cycles);
/// ```
#[derive(Default)]
pub struct Sweep {
    npus: Vec<NpuConfig>,
    models: Vec<Model>,
    schemes: Vec<SchemeSpec>,
    verifier: Option<HashEngine>,
    repeats: u32,
    threads: Option<usize>,
    dram_map: Option<DramMap>,
    dram_replay_threads: Option<usize>,
}

impl Sweep {
    /// An empty sweep (one inference per point, auto thread count).
    pub fn new() -> Self {
        Self {
            repeats: 1,
            ..Self::default()
        }
    }

    /// Adds one NPU configuration.
    pub fn npu(mut self, npu: NpuConfig) -> Self {
        self.npus.push(npu);
        self
    }

    /// Adds several NPU configurations.
    pub fn npus(mut self, npus: impl IntoIterator<Item = NpuConfig>) -> Self {
        self.npus.extend(npus);
        self
    }

    /// Adds one workload.
    pub fn model(mut self, model: Model) -> Self {
        self.models.push(model);
        self
    }

    /// Adds several workloads.
    pub fn models(mut self, models: impl IntoIterator<Item = Model>) -> Self {
        self.models.extend(models);
        self
    }

    /// Adds a scheme from the [`seda_protect`] registry by name.
    ///
    /// The name is validated eagerly against
    /// [`seda_protect::scheme_by_name`]; each sweep point constructs its
    /// own fresh instance at execution time (schemes are stateful).
    ///
    /// # Panics
    ///
    /// Panics if the registry does not know `name`.
    pub fn scheme(mut self, name: &str) -> Self {
        assert!(
            seda_protect::scheme_by_name(name).is_some(),
            "unknown protection scheme {name:?}"
        );
        let owned = name.to_owned();
        self.schemes.push(SchemeSpec {
            label: owned.clone(),
            build: Box::new(move || {
                seda_protect::scheme_by_name(&owned).expect("validated at build time")
            }),
        });
        self
    }

    /// Adds several registry schemes by name.
    pub fn schemes<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for name in names {
            self = self.scheme(name.as_ref());
        }
        self
    }

    /// Adds a custom scheme under `label`, built per point by `factory`
    /// (for configurations outside the registry, e.g. granularity
    /// ablations).
    pub fn scheme_with(
        mut self,
        label: &str,
        factory: impl Fn() -> Box<dyn ProtectionScheme> + Send + Sync + 'static,
    ) -> Self {
        self.schemes.push(SchemeSpec {
            label: label.to_owned(),
            build: Box::new(factory),
        });
        self
    }

    /// Models the integrity-verification engine at every point.
    pub fn verifier(mut self, engine: HashEngine) -> Self {
        self.verifier = Some(engine);
        self
    }

    /// Runs `n` back-to-back inferences per point (steady state).
    pub fn repeats(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one inference");
        self.repeats = n;
        self
    }

    /// Caps the worker thread count (`1` forces serial execution).
    /// Defaults to the machine's available parallelism.
    ///
    /// `0` is clamped to `1` (serial): a thread cap of zero can only mean
    /// "as serial as possible", and the former `assert!` here was the one
    /// panic left in an otherwise typed-error builder pipeline. Callers
    /// that want a zero cap rejected loudly use [`Sweep::try_threads`].
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Fallible form of [`Sweep::threads`]: rejects a zero thread cap
    /// with a typed error instead of clamping.
    ///
    /// # Errors
    ///
    /// Returns [`SedaError::InvalidSpec`] when `n == 0`.
    pub fn try_threads(self, n: usize) -> Result<Self, SedaError> {
        if n == 0 {
            return Err(SedaError::InvalidSpec {
                reason: "need at least one sweep worker thread (threads == 0)".to_owned(),
            });
        }
        Ok(self.threads(n))
    }

    /// Caps the worker threads the DRAM simulator may shard each point's
    /// batched replay across ([`DramSim::set_replay_threads`]); `1`
    /// forces serial replay, `0` is clamped to `1`. Defaults to the
    /// simulator's automatic sizing. Replay results are bit-identical at
    /// any setting, so this is purely a host-resource knob — useful to
    /// keep a parallel sweep from oversubscribing cores with per-point
    /// replay workers.
    pub fn dram_replay_threads(mut self, n: usize) -> Self {
        self.dram_replay_threads = Some(n.max(1));
        self
    }

    /// Forces serial in-order execution on the calling thread.
    pub fn serial(self) -> Self {
        self.threads(1)
    }

    /// Overrides the per-NPU DRAM configuration. By default every point
    /// uses [`dram_config_for`]; `map` receives each point's NPU and
    /// returns the memory system to simulate instead — the injection
    /// point for timing ablations (e.g. the golden-figure sensitivity
    /// tests, which perturb `t_bl` by one cycle).
    pub fn dram_map(
        mut self,
        map: impl Fn(&NpuConfig) -> DramConfig + Send + Sync + 'static,
    ) -> Self {
        self.dram_map = Some(Box::new(map));
        self
    }

    fn point_count(&self) -> usize {
        self.npus.len() * self.models.len() * self.schemes.len()
    }

    fn run_point(&self, idx: usize, cache: &TraceCache) -> Result<Vec<RunResult>, SedaError> {
        let s = self.schemes.len();
        let m = self.models.len();
        let npu = &self.npus[idx / (s * m)];
        let model = &self.models[(idx / s) % m];
        // Fault isolation: a panic anywhere inside one point — a buggy
        // scheme factory, a scheme transform, the kernel itself — is
        // contained to that point and surfaces as a typed error; every
        // other point still completes. The closure only touches the
        // immutable trace cache and per-point scheme state, so resuming
        // after an unwind cannot observe a broken invariant.
        let _span = seda_telemetry::Span::start("sweep.point_ns");
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let sim = cache.get_or_simulate(npu, model);
            let mut scheme = (self.schemes[idx % s].build)();
            let dram_cfg = match &self.dram_map {
                Some(map) => map(npu),
                None => dram_config_for(npu),
            };
            let mut dram = DramSim::new(dram_cfg);
            if let Some(n) = self.dram_replay_threads {
                dram.set_replay_threads(n);
            }
            try_run_trace_with_dram_sim(
                &sim,
                npu,
                scheme.as_mut(),
                self.verifier.as_ref(),
                self.repeats,
                dram,
            )
        }))
        .unwrap_or_else(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(SedaError::PointPanicked {
                point: format!(
                    "{}/{}/{}",
                    npu.name,
                    model.name(),
                    self.schemes[idx % s].label
                ),
                message,
            })
        });
        seda_telemetry::counter_add(
            if outcome.is_ok() {
                "sweep.points.ok"
            } else {
                "sweep.points.failed"
            },
            1,
        );
        outcome
    }

    /// Executes the sweep with a private trace cache.
    pub fn run(&self) -> SweepResults {
        self.run_with_cache(&TraceCache::new())
    }

    /// Executes the sweep against a caller-owned [`TraceCache`], so
    /// several sweeps (or repeated invocations) share simulations.
    /// Reported [`SweepStats`] cover this execution only.
    pub fn run_with_cache(&self, cache: &TraceCache) -> SweepResults {
        let total = self.point_count();
        let (hits0, misses0) = (cache.hits(), cache.misses());
        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(total.max(1));

        let mut slots: Vec<Option<Result<Vec<RunResult>, SedaError>>> = Vec::new();
        slots.resize_with(total, || None);

        if threads <= 1 {
            for (idx, slot) in slots.iter_mut().enumerate() {
                *slot = Some(self.run_point(idx, cache));
            }
        } else {
            let next = AtomicUsize::new(0);
            let out = Mutex::new(&mut slots);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= total {
                            break;
                        }
                        let runs = self.run_point(idx, cache);
                        // Invariant: workers never panic while holding the
                        // lock (run_point catches unwinds), so the mutex
                        // cannot be poisoned.
                        #[allow(clippy::expect_used)]
                        let mut guard = out.lock().expect("sweep results poisoned");
                        guard[idx] = Some(runs);
                    });
                }
            });
        }

        SweepResults {
            npus: self.npus.iter().map(|n| n.name.clone()).collect(),
            models: self.models.iter().map(|m| m.name().to_owned()).collect(),
            schemes: self.schemes.iter().map(|s| s.label.clone()).collect(),
            points: {
                // Invariant: the work loop above assigns every index in
                // `0..total` exactly once before the scope joins.
                #[allow(clippy::expect_used)]
                let points = slots
                    .into_iter()
                    .map(|s| s.expect("every point executed"))
                    .collect();
                points
            },
            stats: SweepStats {
                trace_hits: cache.hits() - hits0,
                trace_misses: cache.misses() - misses0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_models::zoo;
    use seda_protect::{BlockMacKind, BlockMacScheme, PROTECTED_BYTES};

    fn headline_sweep() -> Sweep {
        Sweep::new()
            .npus([NpuConfig::edge(), NpuConfig::server()])
            .models([zoo::lenet(), zoo::dlrm()])
            .schemes(crate::experiment::scheme_names())
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let par = headline_sweep().threads(4).run();
        let ser = headline_sweep().serial().run();
        assert_eq!(par.shape(), ser.shape());
        for (p, s) in par.iter().zip(ser.iter()) {
            assert_eq!(p.0, s.0, "npu order must match");
            assert_eq!(p.1, s.1, "model order must match");
            assert_eq!(p.2, s.2, "scheme order must match");
            for (pr, sr) in p.3.iter().zip(s.3.iter()) {
                assert_eq!(pr.total_cycles, sr.total_cycles);
                assert_eq!(pr.traffic, sr.traffic);
                assert_eq!(
                    pr.layers.iter().map(|l| l.cycles).collect::<Vec<_>>(),
                    sr.layers.iter().map(|l| l.cycles).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn one_simulation_per_distinct_npu_model_pair() {
        let results = headline_sweep().run();
        // 2 NPUs × 2 models = 4 distinct traces; 6 schemes each.
        assert_eq!(results.stats.trace_misses, 4);
        assert_eq!(results.stats.trace_hits, 4 * 6 - 4);
    }

    #[test]
    fn shared_cache_reuses_traces_across_sweeps() {
        let cache = seda_scalesim::TraceCache::new();
        let first = headline_sweep().run_with_cache(&cache);
        let second = headline_sweep().run_with_cache(&cache);
        assert_eq!(first.stats.trace_misses, 4);
        assert_eq!(second.stats.trace_misses, 0, "second sweep is all hits");
    }

    #[test]
    fn custom_scheme_factories_run_per_point() {
        let results = Sweep::new()
            .npu(NpuConfig::edge())
            .models([zoo::lenet(), zoo::dlrm()])
            .scheme("baseline")
            .scheme_with("MGX-128B", || {
                Box::new(BlockMacScheme::new(BlockMacKind::Mgx, 128, PROTECTED_BYTES))
            })
            .run();
        assert_eq!(results.shape(), (1, 2, 2));
        assert_eq!(results.scheme_labels()[1], "MGX-128B");
        for mi in 0..2 {
            let base = results.at(0, mi, 0);
            let mgx = results.at(0, mi, 1);
            assert!(
                mgx.traffic.total() > base.traffic.total(),
                "fresh per-point scheme state must accumulate traffic \
                 independently per workload"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown protection scheme")]
    fn unknown_scheme_names_fail_eagerly() {
        let _ = Sweep::new().scheme("definitely-not-a-scheme");
    }

    #[test]
    fn poisoned_point_does_not_take_down_the_sweep() {
        use crate::error::SedaError;
        let results = Sweep::new()
            .npu(NpuConfig::edge())
            .models([zoo::lenet(), zoo::dlrm()])
            .scheme("baseline")
            .scheme_with("poison", || panic!("injected factory failure"))
            .run();
        assert_eq!(results.shape(), (1, 2, 2));
        for mi in 0..2 {
            let healthy = results.outcome(0, mi, 0).expect("baseline still runs");
            assert!(!healthy.is_empty());
            let err = results.outcome(0, mi, 1).expect_err("poisoned point fails");
            assert!(matches!(err, SedaError::PointPanicked { .. }));
            assert!(
                err.to_string().contains("injected factory failure"),
                "panic payload must be captured: {err}"
            );
        }
        let fails: Vec<_> = results.failures().collect();
        assert_eq!(fails.len(), 2, "exactly the poisoned scheme's points");
        assert!(fails.iter().all(|(_, _, scheme, _)| *scheme == "poison"));
    }

    #[test]
    #[should_panic(expected = "sweep point failed")]
    fn panicking_accessor_reports_poisoned_points() {
        let results = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .scheme_with("poison", || panic!("injected factory failure"))
            .run();
        let _ = results.at(0, 0, 0);
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        // Regression: `threads(0)` used to hit a bare `assert!`. The
        // documented contract is a clamp to 1, so a zero cap must run and
        // produce results bit-identical to an explicit serial sweep.
        let base = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .scheme("baseline");
        assert_eq!(base.threads, None);
        let clamped = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .scheme("baseline")
            .threads(0);
        assert_eq!(clamped.threads, Some(1));
        let zero = clamped.run();
        let serial = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .scheme("baseline")
            .serial()
            .run();
        assert_eq!(
            zero.at(0, 0, 0).total_cycles,
            serial.at(0, 0, 0).total_cycles
        );
    }

    #[test]
    fn try_threads_rejects_zero_with_a_typed_error() {
        let err = Sweep::new()
            .try_threads(0)
            .map(|_| ())
            .expect_err("zero worker threads is malformed");
        assert!(matches!(err, SedaError::InvalidSpec { .. }));
        assert!(err.to_string().contains("thread"), "{err}");
        let ok = Sweep::new().try_threads(3).expect("positive cap is fine");
        assert_eq!(ok.threads, Some(3));
    }

    #[test]
    fn dram_replay_thread_cap_is_bit_identical() {
        // The replay worker cap is a host-resource knob, not a model
        // parameter: any setting (including the 0 -> 1 clamp) must leave
        // every result bit-identical.
        let base = headline_sweep().serial().run();
        for cap in [0usize, 1, 4] {
            let capped = headline_sweep().serial().dram_replay_threads(cap).run();
            for (b, c) in base.iter().zip(capped.iter()) {
                for (br, cr) in b.3.iter().zip(c.3.iter()) {
                    assert_eq!(br.total_cycles, cr.total_cycles, "cap={cap}");
                    assert_eq!(br.dram, cr.dram, "cap={cap}");
                }
            }
        }
    }
}
