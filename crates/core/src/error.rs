//! The workspace-wide error hierarchy.
//!
//! Every fallible path of the secure-inference stack surfaces a
//! [`SedaError`]: integrity violations from the functional memory, tag
//! mismatches from the crypto layer, configuration errors from the
//! protection layer, malformed run specifications, and — for the sweep
//! engine's fault isolation — a captured panic from a poisoned point.
//! The contract the adversary suite enforces: **no injected fault ever
//! panics the stack; it degrades into one of these variants.**

use crate::functional::IntegrityViolation;
use crate::resilience::FailureReport;
use crate::scenario::ScenarioError;
use seda_crypto::mac::TagMismatch;
use seda_crypto::EngineSizingError;
use seda_protect::ProtectError;
use std::error::Error;
use std::fmt;

/// A sealed-model stream violated its framing or ordering contract.
///
/// These are the *structural* failures of the provisioning pipeline
/// (`seda-stream`): malformed headers, out-of-order or misdescribed
/// frames, torn streams, and replays of a retired key epoch. Forged or
/// corrupted block contents surface as [`SedaError::Tag`] instead — the
/// chained transport MAC catches them before framing is even trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamViolation {
    /// The stream header was malformed before any block was accepted.
    BadHeader {
        /// What was wrong with it.
        reason: String,
    },
    /// A block frame declared metadata inconsistent with its position.
    BadFrame {
        /// Sequence number of the offending frame.
        seq: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// A frame arrived out of sequence (reorder or splice).
    OutOfOrder {
        /// The sequence number the unsealer expected next.
        expected: u64,
        /// The sequence number the frame carried.
        got: u64,
    },
    /// The stream ended before every declared block was verified.
    Truncated {
        /// Blocks verified before the stream tore.
        verified: u64,
        /// Blocks the header declared.
        expected: u64,
    },
    /// A stream sealed under a retired key epoch was replayed.
    StaleEpoch {
        /// Epoch the stream was sealed under.
        stream: u64,
        /// Epoch the unsealer requires.
        current: u64,
    },
}

impl fmt::Display for StreamViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamViolation::BadHeader { reason } => {
                write!(f, "malformed stream header: {reason}")
            }
            StreamViolation::BadFrame { seq, reason } => {
                write!(f, "malformed frame at seq {seq}: {reason}")
            }
            StreamViolation::OutOfOrder { expected, got } => {
                write!(f, "frame out of order: expected seq {expected}, got {got}")
            }
            StreamViolation::Truncated { verified, expected } => {
                write!(
                    f,
                    "stream truncated: {verified} of {expected} blocks verified"
                )
            }
            StreamViolation::StaleEpoch { stream, current } => {
                write!(
                    f,
                    "stale stream replay: sealed under key epoch {stream}, current epoch is {current}"
                )
            }
        }
    }
}

impl Error for StreamViolation {}

/// Top-level error for the SeDA secure-inference stack.
#[derive(Debug, Clone, PartialEq)]
pub enum SedaError {
    /// Off-chip data failed integrity verification.
    Integrity(IntegrityViolation),
    /// A raw MAC tag comparison failed outside a localized region check.
    Tag(TagMismatch),
    /// The protection layer rejected a configuration or was misused.
    Protect(ProtectError),
    /// An access fell outside the protected memory image.
    OutOfBounds {
        /// Physical address of the offending access.
        pa: u64,
        /// Length of the access in bytes.
        len: usize,
        /// Size of the memory image in bytes.
        size: usize,
    },
    /// A run or sweep specification was malformed.
    InvalidSpec {
        /// What was wrong with it.
        reason: String,
    },
    /// A sweep point panicked; the panic was contained to that point.
    PointPanicked {
        /// `npu/model/scheme` label of the poisoned point.
        point: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A sweep point exceeded its per-point wall-clock watchdog budget;
    /// the hang was converted into this typed failure and the rest of
    /// the sweep continued.
    PointTimedOut {
        /// `npu/model/scheme` label of the hung point.
        point: String,
        /// The watchdog budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// A sweep point was never started because a `fail-fast` policy
    /// aborted the run after an earlier failure.
    PointCancelled {
        /// `npu/model/scheme` label of the unstarted point.
        point: String,
    },
    /// A scenario executed but one or more points failed under a
    /// `fail-fast` policy. Carries the structured report of *every*
    /// failed point; `source()` chains to the first failure's error.
    ScenarioPointFailed {
        /// Scenario name.
        scenario: String,
        /// Total points in the scenario's sweep.
        total_points: usize,
        /// Every failed point, in deterministic cross-product order.
        report: FailureReport,
    },
    /// A declarative scenario file failed to parse or validate.
    Scenario(ScenarioError),
    /// A sealed-model stream violated its framing or ordering contract.
    Stream(StreamViolation),
    /// An AES engine-sizing query had no meaningful answer (zero,
    /// negative, or non-finite bandwidth).
    EngineSizing(EngineSizingError),
}

impl fmt::Display for SedaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SedaError::Integrity(v) => write!(f, "{v}"),
            SedaError::Tag(t) => write!(f, "{t}"),
            SedaError::Protect(p) => write!(f, "{p}"),
            SedaError::OutOfBounds { pa, len, size } => write!(
                f,
                "access of {len} bytes at PA {pa:#x} escapes the {size}-byte protected image"
            ),
            SedaError::InvalidSpec { reason } => write!(f, "invalid specification: {reason}"),
            SedaError::PointPanicked { point, message } => {
                write!(f, "sweep point {point} panicked: {message}")
            }
            SedaError::PointTimedOut { point, budget_ms } => {
                write!(
                    f,
                    "sweep point {point} exceeded its {budget_ms} ms watchdog budget"
                )
            }
            SedaError::PointCancelled { point } => {
                write!(
                    f,
                    "sweep point {point} cancelled by fail-fast after an earlier failure"
                )
            }
            SedaError::ScenarioPointFailed {
                scenario,
                total_points,
                report,
            } => {
                write!(
                    f,
                    "scenario {scenario}: {} of {total_points} points failed",
                    report.len()
                )?;
                if let Some(first) = report.first() {
                    write!(f, "; first: {}: {}", first.label(), first.error)?;
                }
                Ok(())
            }
            SedaError::Scenario(s) => write!(f, "{s}"),
            SedaError::Stream(s) => write!(f, "{s}"),
            SedaError::EngineSizing(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SedaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SedaError::Integrity(v) => Some(v),
            SedaError::Tag(t) => Some(t),
            SedaError::Protect(p) => Some(p),
            SedaError::Scenario(s) => Some(s),
            SedaError::Stream(s) => Some(s),
            SedaError::EngineSizing(e) => Some(e),
            SedaError::ScenarioPointFailed { report, .. } => {
                report.first().map(|f| &f.error as &(dyn Error + 'static))
            }
            _ => None,
        }
    }
}

impl From<IntegrityViolation> for SedaError {
    fn from(v: IntegrityViolation) -> Self {
        SedaError::Integrity(v)
    }
}

impl From<TagMismatch> for SedaError {
    fn from(t: TagMismatch) -> Self {
        SedaError::Tag(t)
    }
}

impl From<ProtectError> for SedaError {
    fn from(p: ProtectError) -> Self {
        SedaError::Protect(p)
    }
}

impl From<ScenarioError> for SedaError {
    fn from(s: ScenarioError) -> Self {
        SedaError::Scenario(s)
    }
}

impl From<EngineSizingError> for SedaError {
    fn from(e: EngineSizingError) -> Self {
        SedaError::EngineSizing(e)
    }
}

impl From<StreamViolation> for SedaError {
    fn from(s: StreamViolation) -> Self {
        SedaError::Stream(s)
    }
}

impl SedaError {
    /// The integrity violation inside, if that is what this error is —
    /// the common case callers match on after a tampered read.
    pub fn integrity(&self) -> Option<&IntegrityViolation> {
        match self {
            SedaError::Integrity(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_scalesim::TensorKind;

    #[test]
    fn display_and_source_chain() {
        let v = IntegrityViolation {
            layer: 3,
            tensor: TensorKind::Filter,
            block: Some(7),
            pa: 0x1c0,
        };
        let e: SedaError = v.clone().into();
        let msg = e.to_string();
        assert!(msg.contains("layer 3"), "{msg}");
        assert!(msg.contains("block 7"), "{msg}");
        assert!(msg.contains("0x1c0"), "{msg}");
        assert!(e.source().is_some(), "integrity errors chain their source");
        assert_eq!(e.integrity(), Some(&v));
    }

    #[test]
    fn conversions_preserve_variants() {
        let t = seda_crypto::mac::TagMismatch {
            expected: seda_crypto::MacTag(1),
            actual: seda_crypto::MacTag(2),
        };
        assert!(matches!(SedaError::from(t), SedaError::Tag(_)));
        let p = seda_protect::ProtectError::NoInferenceBegun;
        assert!(matches!(SedaError::from(p), SedaError::Protect(_)));
    }

    #[test]
    fn out_of_bounds_display_names_the_access() {
        let e = SedaError::OutOfBounds {
            pa: 0x40,
            len: 128,
            size: 96,
        };
        let msg = e.to_string();
        assert!(msg.contains("0x40") && msg.contains("128") && msg.contains("96"));
    }

    #[test]
    fn engine_sizing_errors_convert_and_chain() {
        let inner = EngineSizingError {
            memory_bandwidth: 20.0e9,
            pad_bandwidth: 0.0,
        };
        let e = SedaError::from(inner);
        assert!(matches!(e, SedaError::EngineSizing(_)));
        let msg = e.to_string();
        assert!(msg.contains("cannot size"), "{msg}");
        assert!(e.source().is_some(), "sizing errors chain their source");
    }

    #[test]
    fn timeout_and_cancellation_display_the_point() {
        let t = SedaError::PointTimedOut {
            point: "edge/lenet/SeDA".to_owned(),
            budget_ms: 250,
        };
        let msg = t.to_string();
        assert!(
            msg.contains("edge/lenet/SeDA") && msg.contains("250"),
            "{msg}"
        );
        let c = SedaError::PointCancelled {
            point: "server/dlrm/SGX-64B".to_owned(),
        };
        assert!(c.to_string().contains("fail-fast"), "{c}");
    }

    #[test]
    fn scenario_point_failed_chains_to_the_first_failure() {
        use crate::resilience::{FailureReport, PointFailure};
        let v = IntegrityViolation {
            layer: 2,
            tensor: TensorKind::Ofmap,
            block: None,
            pa: 0x80,
        };
        let e = SedaError::ScenarioPointFailed {
            scenario: "fig5".to_owned(),
            total_points: 156,
            report: FailureReport {
                failures: vec![PointFailure {
                    npu: "server".to_owned(),
                    model: "resnet50".to_owned(),
                    scheme: "SeDA".to_owned(),
                    attempts: 3,
                    error: SedaError::Integrity(v),
                }],
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("1 of 156"), "{msg}");
        assert!(msg.contains("server/resnet50/SeDA"), "{msg}");
        // source() reaches the failed point's error, which itself chains
        // to the integrity violation — the full causal chain survives.
        let source = e.source().expect("chains to the point's error");
        assert!(source.to_string().contains("layer 2"), "{source}");
        assert!(source.source().is_some(), "inner error keeps its own chain");
    }

    #[test]
    fn stream_violations_convert_display_and_chain() {
        let cases: Vec<(StreamViolation, &[&str])> = vec![
            (
                StreamViolation::BadHeader {
                    reason: "bad magic".to_owned(),
                },
                &["stream header", "bad magic"],
            ),
            (
                StreamViolation::BadFrame {
                    seq: 9,
                    reason: "layer id 4 out of range".to_owned(),
                },
                &["seq 9", "layer id 4"],
            ),
            (
                StreamViolation::OutOfOrder {
                    expected: 3,
                    got: 5,
                },
                &["expected seq 3", "got 5"],
            ),
            (
                StreamViolation::Truncated {
                    verified: 7,
                    expected: 12,
                },
                &["7 of 12"],
            ),
            (
                StreamViolation::StaleEpoch {
                    stream: 1,
                    current: 2,
                },
                &["epoch 1", "epoch is 2"],
            ),
        ];
        for (v, needles) in cases {
            let e = SedaError::from(v.clone());
            assert!(matches!(e, SedaError::Stream(_)));
            let msg = e.to_string();
            for needle in needles {
                assert!(msg.contains(needle), "{msg} missing {needle}");
            }
            assert!(e.source().is_some(), "stream errors chain their source");
        }
    }

    #[test]
    fn scenario_errors_convert_and_chain() {
        let s = ScenarioError::UnknownScheme {
            name: "SGX-63B".to_owned(),
        };
        let e = SedaError::from(s);
        assert!(matches!(e, SedaError::Scenario(_)));
        let msg = e.to_string();
        assert!(msg.contains("SGX-63B"), "{msg}");
        assert!(e.source().is_some(), "scenario errors chain their source");
    }
}
