//! Declarative scenario engine: experiments as data, not binaries.
//!
//! A [`Scenario`] is a serializable description of one experiment —
//! which workloads (zoo names or parametric generators), which NPUs,
//! which protection schemes, an optional DRAM-configuration override,
//! repeat/verifier settings, and which outputs to render. Scenarios live
//! as JSON files in the repository's top-level `scenarios/` directory
//! and execute through the existing [`Sweep`] engine, so a scenario run
//! is bit-identical to the hand-coded experiment it replaced.
//!
//! The figure/table/ablation binaries are thin wrappers over registered
//! scenarios, and `seda_cli scenario list|describe|run <name>` drives the
//! zoo interactively. Every scenario's headline numbers can be pinned as
//! a golden fixture via [`ScenarioRun::snapshot_json`], which makes the
//! zoo a regression surface: adding a JSON file adds an experiment *and*
//! its drift detector.
//!
//! # Examples
//!
//! ```
//! use seda::scenario::Scenario;
//!
//! let text = r#"{
//!   "name": "demo",
//!   "title": "LeNet under SeDA on the edge NPU",
//!   "npus": ["edge"],
//!   "workloads": ["let"],
//!   "schemes": ["baseline", "SeDA"],
//!   "outputs": ["traffic"]
//! }"#;
//! let scenario = Scenario::from_json(text).expect("valid scenario");
//! let run = scenario.run().expect("runs clean");
//! let outcomes = &run.evaluations[0].workloads[0].outcomes;
//! assert_eq!(outcomes[0].scheme, "baseline");
//! assert!(outcomes[1].traffic_norm >= 1.0 - 1e-9);
//! ```

use crate::error::SedaError;
use crate::experiment::{partial_evaluations_of, Evaluation};
use crate::pipeline::dram_config_for;
use crate::report;
use crate::resilience::{
    load_journal, FailurePolicy, FailureReport, JournalHeader, JournalWriter, CHECKPOINT_SCHEMA,
};
use crate::sweep::Sweep;
use seda_dram::{estimate_energy, DramConfig, EnergyParams};
use seda_models::{zoo, Model};
use seda_protect::{BlockMacKind, BlockMacScheme, HashEngine, PROTECTED_BYTES};
use seda_scalesim::NpuConfig;
use serde::{Deserialize, Serialize, Value};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Environment variable overriding the scenario directory location.
pub const SCENARIOS_ENV: &str = "SEDA_SCENARIOS";

/// What went wrong while parsing or validating a scenario description.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A workload name did not resolve in the model zoo.
    UnknownModel {
        /// The name that failed to resolve.
        name: String,
    },
    /// A scheme name did not resolve in the protection registry.
    UnknownScheme {
        /// The name that failed to resolve.
        name: String,
    },
    /// An NPU name was neither `server` nor `edge`.
    UnknownNpu {
        /// The name that failed to resolve.
        name: String,
    },
    /// A DRAM override field had a value the timing model cannot use.
    BadDramOverride {
        /// What was wrong with it.
        reason: String,
    },
    /// The scenario was structurally well-formed but semantically invalid.
    BadSpec {
        /// What was wrong with it.
        reason: String,
    },
    /// The scenario file was not readable or not valid scenario JSON.
    Parse {
        /// What was wrong with it.
        reason: String,
    },
    /// A checkpoint journal could not be written, read, or did not
    /// describe this scenario's sweep.
    Checkpoint {
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownModel { name } => {
                write!(f, "unknown workload {name:?} (try `seda_cli workloads`)")
            }
            ScenarioError::UnknownScheme { name } => {
                write!(f, "unknown scheme {name:?} (try `seda_cli schemes`)")
            }
            ScenarioError::UnknownNpu { name } => {
                write!(f, "unknown NPU {name:?} (expected \"server\" or \"edge\")")
            }
            ScenarioError::BadDramOverride { reason } => {
                write!(f, "bad DRAM override: {reason}")
            }
            ScenarioError::BadSpec { reason } => write!(f, "bad scenario: {reason}"),
            ScenarioError::Parse { reason } => write!(f, "scenario parse error: {reason}"),
            ScenarioError::Checkpoint { reason } => {
                write!(f, "checkpoint journal error: {reason}")
            }
        }
    }
}

impl Error for ScenarioError {}

/// A workload selection: a zoo name or a parametric generator.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// A registered zoo model, looked up case-insensitively by name.
    Zoo {
        /// The zoo label (e.g. `"rest"`).
        name: String,
    },
    /// [`zoo::transformer_decode`]: one-token autoregressive decode
    /// against a KV cache of `context` past tokens.
    TransformerDecode {
        /// Cached context length in tokens.
        context: u32,
    },
    /// [`zoo::dlrm_gather`]: scattered embedding-table gathers that
    /// stress the singleton-streak DRAM replay fallback.
    DlrmGather {
        /// Number of embedding tables.
        tables: u32,
        /// Embedding vector dimension.
        embedding_dim: u32,
        /// Lookups per table (batch size).
        lookups: u32,
    },
}

impl WorkloadSpec {
    /// Resolves the spec into a concrete [`Model`].
    pub fn resolve(&self) -> Result<Model, ScenarioError> {
        match self {
            WorkloadSpec::Zoo { name } => {
                zoo::by_name(name).ok_or_else(|| ScenarioError::UnknownModel { name: name.clone() })
            }
            WorkloadSpec::TransformerDecode { context } => {
                if *context == 0 {
                    return Err(ScenarioError::BadSpec {
                        reason: "transformer_decode needs context > 0".to_owned(),
                    });
                }
                Ok(zoo::transformer_decode(*context))
            }
            WorkloadSpec::DlrmGather {
                tables,
                embedding_dim,
                lookups,
            } => {
                if *tables == 0 || *embedding_dim == 0 || *lookups == 0 {
                    return Err(ScenarioError::BadSpec {
                        reason: "dlrm_gather needs tables, embedding_dim, lookups > 0".to_owned(),
                    });
                }
                Ok(zoo::dlrm_gather(*tables, *embedding_dim, *lookups))
            }
        }
    }
}

// Mixed string/object JSON ("rest" vs {"transformer_decode": {...}}) is
// outside what the vendored derive emits, so the impls are hand-written
// against the Value tree.
impl Serialize for WorkloadSpec {
    fn to_value(&self) -> Value {
        match self {
            WorkloadSpec::Zoo { name } => Value::String(name.clone()),
            WorkloadSpec::TransformerDecode { context } => {
                let mut inner = serde::Map::new();
                inner.insert("context", context.to_value());
                let mut outer = serde::Map::new();
                outer.insert("transformer_decode", Value::Object(inner));
                Value::Object(outer)
            }
            WorkloadSpec::DlrmGather {
                tables,
                embedding_dim,
                lookups,
            } => {
                let mut inner = serde::Map::new();
                inner.insert("tables", tables.to_value());
                inner.insert("embedding_dim", embedding_dim.to_value());
                inner.insert("lookups", lookups.to_value());
                let mut outer = serde::Map::new();
                outer.insert("dlrm_gather", Value::Object(inner));
                Value::Object(outer)
            }
        }
    }
}

impl Deserialize for WorkloadSpec {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::String(name) => Ok(WorkloadSpec::Zoo { name: name.clone() }),
            Value::Object(m) => {
                if let Some(inner) = m.get("transformer_decode") {
                    let im = inner.as_object().ok_or_else(|| {
                        serde::Error::custom("transformer_decode takes an object of parameters")
                    })?;
                    Ok(WorkloadSpec::TransformerDecode {
                        context: serde::de_field(im, "context")?,
                    })
                } else if let Some(inner) = m.get("dlrm_gather") {
                    let im = inner.as_object().ok_or_else(|| {
                        serde::Error::custom("dlrm_gather takes an object of parameters")
                    })?;
                    Ok(WorkloadSpec::DlrmGather {
                        tables: serde::de_field(im, "tables")?,
                        embedding_dim: serde::de_field(im, "embedding_dim")?,
                        lookups: serde::de_field(im, "lookups")?,
                    })
                } else {
                    Err(serde::Error::custom(
                        "workload object must be {\"transformer_decode\": ...} or \
                         {\"dlrm_gather\": ...}",
                    ))
                }
            }
            other => Err(serde::Error::custom(format!(
                "workload must be a zoo name or a generator object, found {other:?}"
            ))),
        }
    }
}

/// A scheme selection: a registry name or a parameterized block-MAC.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeSpec {
    /// A scheme from the [`seda_protect`] registry, by exact name.
    Registry {
        /// The registry name (e.g. `"SeDA"`).
        name: String,
    },
    /// A [`BlockMacScheme`] outside the registry: SGX- or MGX-style
    /// metadata at an arbitrary granularity, with optional metadata-cache
    /// capacity overrides (for granularity and cache ablations).
    BlockMac {
        /// `"sgx"` or `"mgx"` (case-insensitive).
        kind: String,
        /// Protection-block granularity in bytes (positive multiple of 64).
        granularity: u64,
        /// MAC cache capacity override in KB (default 8).
        mac_cache_kb: Option<u64>,
        /// VN cache capacity override in KB (default 16).
        vn_cache_kb: Option<u64>,
    },
}

impl SchemeSpec {
    /// The column label this scheme carries through sweeps and reports.
    pub fn label(&self) -> String {
        match self {
            SchemeSpec::Registry { name } => name.clone(),
            SchemeSpec::BlockMac {
                kind,
                granularity,
                mac_cache_kb,
                vn_cache_kb,
            } => {
                let mut label = format!("{}-{granularity}B", kind.to_ascii_uppercase());
                if mac_cache_kb.is_some() || vn_cache_kb.is_some() {
                    let _ = write!(
                        label,
                        "/m{}v{}",
                        mac_cache_kb.unwrap_or(8),
                        vn_cache_kb.unwrap_or(16)
                    );
                }
                label
            }
        }
    }

    fn block_mac_kind(kind: &str) -> Result<BlockMacKind, ScenarioError> {
        match kind.to_ascii_lowercase().as_str() {
            "sgx" => Ok(BlockMacKind::Sgx),
            "mgx" => Ok(BlockMacKind::Mgx),
            _ => Err(ScenarioError::UnknownScheme {
                name: format!("block_mac kind {kind:?}"),
            }),
        }
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        match self {
            SchemeSpec::Registry { name } => match seda_protect::scheme_by_name(name) {
                Some(_) => Ok(()),
                None => Err(ScenarioError::UnknownScheme { name: name.clone() }),
            },
            SchemeSpec::BlockMac {
                kind,
                granularity,
                mac_cache_kb,
                vn_cache_kb,
            } => {
                Self::block_mac_kind(kind)?;
                if *granularity == 0 || granularity % 64 != 0 {
                    return Err(ScenarioError::BadSpec {
                        reason: format!(
                            "block_mac granularity must be a positive multiple of 64, got \
                             {granularity}"
                        ),
                    });
                }
                if matches!(mac_cache_kb, Some(0)) || matches!(vn_cache_kb, Some(0)) {
                    return Err(ScenarioError::BadSpec {
                        reason: "block_mac metadata caches need a nonzero capacity".to_owned(),
                    });
                }
                Ok(())
            }
        }
    }

    /// Instantiates one fresh scheme for this spec — the serving
    /// simulator's per-tenant path (each tenant owns stateful metadata
    /// caches, so every tenant needs its own instance).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownScheme`] when a registry name does
    /// not resolve (parameter validation is `Self::validate`'s job and
    /// is assumed to have run).
    pub fn instantiate(&self) -> Result<Box<dyn seda_protect::ProtectionScheme>, ScenarioError> {
        match self {
            SchemeSpec::Registry { name } => seda_protect::scheme_by_name(name)
                .ok_or_else(|| ScenarioError::UnknownScheme { name: name.clone() }),
            SchemeSpec::BlockMac {
                kind,
                granularity,
                mac_cache_kb,
                vn_cache_kb,
            } => {
                let kind = Self::block_mac_kind(kind)?;
                Ok(match (mac_cache_kb, vn_cache_kb) {
                    (None, None) => {
                        Box::new(BlockMacScheme::new(kind, *granularity, PROTECTED_BYTES))
                    }
                    (mac, vn) => Box::new(BlockMacScheme::with_caches(
                        kind,
                        *granularity,
                        PROTECTED_BYTES,
                        mac.unwrap_or(8) << 10,
                        vn.unwrap_or(16) << 10,
                    )),
                })
            }
        }
    }

    fn add_to(&self, sweep: Sweep) -> Sweep {
        match self {
            SchemeSpec::Registry { name } => sweep.scheme(name),
            SchemeSpec::BlockMac {
                kind,
                granularity,
                mac_cache_kb,
                vn_cache_kb,
            } => {
                // Validated before execution, so the kind parses here.
                let kind = Self::block_mac_kind(kind).unwrap_or(BlockMacKind::Sgx);
                let g = *granularity;
                let mac = mac_cache_kb.map(|kb| kb << 10);
                let vn = vn_cache_kb.map(|kb| kb << 10);
                sweep.scheme_with(&self.label(), move || match (mac, vn) {
                    (None, None) => Box::new(BlockMacScheme::new(kind, g, PROTECTED_BYTES)),
                    (mac, vn) => Box::new(BlockMacScheme::with_caches(
                        kind,
                        g,
                        PROTECTED_BYTES,
                        mac.unwrap_or(8 << 10),
                        vn.unwrap_or(16 << 10),
                    )),
                })
            }
        }
    }
}

impl Serialize for SchemeSpec {
    fn to_value(&self) -> Value {
        match self {
            SchemeSpec::Registry { name } => Value::String(name.clone()),
            SchemeSpec::BlockMac {
                kind,
                granularity,
                mac_cache_kb,
                vn_cache_kb,
            } => {
                let mut inner = serde::Map::new();
                inner.insert("kind", kind.to_value());
                inner.insert("granularity", granularity.to_value());
                if let Some(kb) = mac_cache_kb {
                    inner.insert("mac_cache_kb", kb.to_value());
                }
                if let Some(kb) = vn_cache_kb {
                    inner.insert("vn_cache_kb", kb.to_value());
                }
                let mut outer = serde::Map::new();
                outer.insert("block_mac", Value::Object(inner));
                Value::Object(outer)
            }
        }
    }
}

impl Deserialize for SchemeSpec {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::String(name) => Ok(SchemeSpec::Registry { name: name.clone() }),
            Value::Object(m) => {
                let inner = m.get("block_mac").ok_or_else(|| {
                    serde::Error::custom("scheme object must be {\"block_mac\": ...}")
                })?;
                let im = inner.as_object().ok_or_else(|| {
                    serde::Error::custom("block_mac takes an object of parameters")
                })?;
                Ok(SchemeSpec::BlockMac {
                    kind: serde::de_field(im, "kind")?,
                    granularity: serde::de_field(im, "granularity")?,
                    mac_cache_kb: serde::de_field(im, "mac_cache_kb")?,
                    vn_cache_kb: serde::de_field(im, "vn_cache_kb")?,
                })
            }
            other => Err(serde::Error::custom(format!(
                "scheme must be a registry name or a block_mac object, found {other:?}"
            ))),
        }
    }
}

/// Field-level overrides applied on top of each NPU's default
/// [`DramConfig`] (the [`Sweep::dram_map`] surface, as data).
///
/// Absent fields keep the default value, so an override like
/// `{"channels": 8}` perturbs exactly one knob. Overrides are raw: the
/// derived fields of the default configuration (e.g. the per-channel
/// clock computed from the NPU's aggregate bandwidth) are not rebalanced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DramOverride {
    /// Independent channels.
    pub channels: Option<u32>,
    /// Ranks per channel.
    pub ranks: Option<u32>,
    /// Banks per rank.
    pub banks: Option<u32>,
    /// Row (page) size in bytes.
    pub row_bytes: Option<u64>,
    /// Memory clock in Hz.
    pub clock_hz: Option<f64>,
    /// ACT-to-column-command delay.
    pub t_rcd: Option<u64>,
    /// Precharge latency.
    pub t_rp: Option<u64>,
    /// Read column-access latency.
    pub t_cl: Option<u64>,
    /// Write column-access latency.
    pub t_cwl: Option<u64>,
    /// Minimum row-open time.
    pub t_ras: Option<u64>,
    /// Data burst length in memory cycles.
    pub t_bl: Option<u64>,
    /// Write recovery time.
    pub t_wr: Option<u64>,
    /// Refresh interval (0 disables refresh).
    pub t_refi: Option<u64>,
    /// Refresh cycle time.
    pub t_rfc: Option<u64>,
}

// Hand-written so absent overrides serialize as absent fields rather
// than 14 explicit nulls (the derive writes every `Option` as `null`).
macro_rules! dram_override_fields {
    ($macro_cb:ident) => {
        $macro_cb!(
            channels, ranks, banks, row_bytes, clock_hz, t_rcd, t_rp, t_cl, t_cwl, t_ras, t_bl,
            t_wr, t_refi, t_rfc
        );
    };
}

impl Serialize for DramOverride {
    fn to_value(&self) -> Value {
        let mut m = serde::Map::new();
        macro_rules! put {
            ($($field:ident),*) => {$(
                if let Some(v) = &self.$field {
                    m.insert(stringify!($field), v.to_value());
                }
            )*};
        }
        dram_override_fields!(put);
        Value::Object(m)
    }
}

impl Deserialize for DramOverride {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let m = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("dram override must be an object"))?;
        let mut out = DramOverride::default();
        macro_rules! take {
            ($($field:ident),*) => {$(
                out.$field = serde::de_field(m, stringify!($field))?;
            )*};
        }
        dram_override_fields!(take);
        Ok(out)
    }
}

impl DramOverride {
    /// Applies the overrides to a base configuration.
    pub fn apply(&self, mut cfg: DramConfig) -> DramConfig {
        if let Some(v) = self.channels {
            cfg.channels = v;
        }
        if let Some(v) = self.ranks {
            cfg.ranks = v;
        }
        if let Some(v) = self.banks {
            cfg.banks = v;
        }
        if let Some(v) = self.row_bytes {
            cfg.row_bytes = v;
        }
        if let Some(v) = self.clock_hz {
            cfg.clock_hz = v;
        }
        if let Some(v) = self.t_rcd {
            cfg.t_rcd = v;
        }
        if let Some(v) = self.t_rp {
            cfg.t_rp = v;
        }
        if let Some(v) = self.t_cl {
            cfg.t_cl = v;
        }
        if let Some(v) = self.t_cwl {
            cfg.t_cwl = v;
        }
        if let Some(v) = self.t_ras {
            cfg.t_ras = v;
        }
        if let Some(v) = self.t_bl {
            cfg.t_bl = v;
        }
        if let Some(v) = self.t_wr {
            cfg.t_wr = v;
        }
        if let Some(v) = self.t_refi {
            cfg.t_refi = v;
        }
        if let Some(v) = self.t_rfc {
            cfg.t_rfc = v;
        }
        cfg
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        let pow2 = [
            ("channels", self.channels.map(u64::from)),
            ("ranks", self.ranks.map(u64::from)),
            ("banks", self.banks.map(u64::from)),
            ("row_bytes", self.row_bytes),
        ];
        for (field, v) in pow2 {
            if let Some(v) = v {
                if v == 0 || !v.is_power_of_two() {
                    return Err(ScenarioError::BadDramOverride {
                        reason: format!(
                            "{field} must be a nonzero power of two (address bits are \
                             shift/mask-decoded), got {v}"
                        ),
                    });
                }
            }
        }
        if self.t_bl == Some(0) {
            return Err(ScenarioError::BadDramOverride {
                reason: "t_bl must be nonzero (every data transfer occupies the bus)".to_owned(),
            });
        }
        if let Some(hz) = self.clock_hz {
            if !(hz.is_finite() && hz > 0.0) {
                return Err(ScenarioError::BadDramOverride {
                    reason: format!("clock_hz must be positive and finite, got {hz}"),
                });
            }
        }
        Ok(())
    }
}

/// Integrity-verifier engine model settings ([`HashEngine`], as data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifierSpec {
    /// Hash throughput in bytes per accelerator cycle.
    pub bytes_per_cycle: f64,
    /// Pipeline latency per verification in cycles.
    pub latency_cycles: u64,
}

/// Which report sections a scenario run renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// Normalized memory traffic per scheme (Fig. 5 shape).
    Traffic,
    /// Normalized runtime per scheme (Fig. 6 shape).
    Runtime,
    /// DRAM energy per scheme (DDR4 for server, LPDDR4 for edge).
    Energy,
    /// Note that a telemetry snapshot should be exported by the driver.
    Telemetry,
}

impl OutputKind {
    /// The lowercase JSON spelling of this output kind.
    pub fn as_str(self) -> &'static str {
        match self {
            OutputKind::Traffic => "traffic",
            OutputKind::Runtime => "runtime",
            OutputKind::Energy => "energy",
            OutputKind::Telemetry => "telemetry",
        }
    }
}

impl Serialize for OutputKind {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_owned())
    }
}

impl Deserialize for OutputKind {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v.as_str() {
            Some("traffic") => Ok(OutputKind::Traffic),
            Some("runtime") => Ok(OutputKind::Runtime),
            Some("energy") => Ok(OutputKind::Energy),
            Some("telemetry") => Ok(OutputKind::Telemetry),
            _ => Err(serde::Error::custom(format!(
                "output must be one of traffic|runtime|energy|telemetry, found {v:?}"
            ))),
        }
    }
}

/// One scheme-level assertion on a scenario's mean normalized metrics:
/// `scenario run` checks the named scheme's mean normalized traffic
/// and/or runtime against the declared ceilings and exits nonzero on a
/// violation — the paper's claims, pinned as data next to the experiment
/// that produces them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpectationSpec {
    /// Scheme label to check (case-insensitive against the lineup).
    pub scheme: String,
    /// Restrict the check to one NPU; `None` checks every NPU.
    pub npu: Option<String>,
    /// Ceiling on the mean normalized traffic (baseline = 1.0).
    pub traffic_norm_max: Option<f64>,
    /// Ceiling on the mean normalized runtime (baseline = 1.0).
    pub perf_norm_max: Option<f64>,
}

/// The scenario's `expect` block: one assertion or a list of them.
#[derive(Debug, Clone, PartialEq)]
pub struct Expectations(pub Vec<ExpectationSpec>);

// JSON accepts either a single object (`"expect": {"scheme": "seda", ...}`)
// or an array of them; a single entry serializes back to the object form.
impl Serialize for Expectations {
    fn to_value(&self) -> Value {
        match self.0.as_slice() {
            [only] => only.to_value(),
            many => Value::Array(many.iter().map(Serialize::to_value).collect()),
        }
    }
}

impl Deserialize for Expectations {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(ExpectationSpec::from_value)
                .collect::<Result<Vec<_>, _>>()
                .map(Expectations),
            Value::Object(_) => ExpectationSpec::from_value(v).map(|e| Expectations(vec![e])),
            other => Err(serde::Error::custom(format!(
                "expect must be an assertion object or an array of them, found {other:?}"
            ))),
        }
    }
}

/// One violated `expect` assertion, with the measured value.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectationFailure {
    /// NPU the check ran on.
    pub npu: String,
    /// Scheme label from the `expect` entry.
    pub scheme: String,
    /// Which ceiling was violated (`traffic_norm_max`/`perf_norm_max`).
    pub metric: &'static str,
    /// The declared ceiling.
    pub limit: f64,
    /// The measured mean; `NaN` when no surviving points produced one.
    pub actual: f64,
}

impl fmt::Display for ExpectationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.actual.is_nan() {
            write!(
                f,
                "expectation unverifiable: scheme {} on NPU {} has no surviving points to check {} <= {}",
                self.scheme, self.npu, self.metric, self.limit
            )
        } else {
            write!(
                f,
                "expectation failed: scheme {} on NPU {} has mean {} {:.4}, over the {} ceiling",
                self.scheme, self.npu, self.metric, self.actual, self.limit
            )
        }
    }
}

/// Deterministic burst modulation for an open-loop arrival stream: for
/// the first `duty_pct` percent of every `period_ms` window the base
/// rate is multiplied by `factor` — a square wave evaluated on the
/// virtual clock, so replays are exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstSpec {
    /// Burst cycle period in simulated milliseconds.
    pub period_ms: f64,
    /// Percentage of each period spent bursting, in (0, 100).
    pub duty_pct: f64,
    /// Rate multiplier while bursting (positive; below 1 models lulls).
    pub factor: f64,
}

/// Deterministic diurnal modulation: a sinusoid of the given period
/// scales the base arrival rate by `1 + amplitude * sin(2π t / period)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalSpec {
    /// Sinusoid period in simulated milliseconds.
    pub period_ms: f64,
    /// Peak fractional rate swing, in [0, 1).
    pub amplitude: f64,
}

/// How requests enter the serving simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Open-loop: Poisson arrivals (seeded inverse-CDF draws) at a base
    /// rate, optionally modulated by burst and diurnal waves. Arrivals
    /// do not wait for completions, so overload grows the queue.
    OpenLoop {
        /// Base arrival rate in requests per simulated second.
        rate_rps: f64,
        /// Total requests to issue before draining.
        requests: u64,
        /// Optional square-wave burst modulation.
        burst: Option<BurstSpec>,
        /// Optional sinusoidal diurnal modulation.
        diurnal: Option<DiurnalSpec>,
    },
    /// Closed-loop: a fixed client population where each client issues
    /// one request, waits for its completion, thinks, and repeats — so
    /// in-flight requests never exceed `clients`.
    ClosedLoop {
        /// Concurrent client population.
        clients: u32,
        /// Mean exponential think time in simulated milliseconds.
        think_ms: f64,
        /// Total requests to issue before draining.
        requests: u64,
    },
}

// Mirrors the WorkloadSpec convention: tagged single-key objects
// ({"open_loop": {...}} / {"closed_loop": {...}}), hand-written because
// the vendored derive does not emit this spelling for enum variants.
impl Serialize for ArrivalSpec {
    fn to_value(&self) -> Value {
        match self {
            ArrivalSpec::OpenLoop {
                rate_rps,
                requests,
                burst,
                diurnal,
            } => {
                let mut inner = serde::Map::new();
                inner.insert("rate_rps", rate_rps.to_value());
                inner.insert("requests", requests.to_value());
                if let Some(b) = burst {
                    inner.insert("burst", b.to_value());
                }
                if let Some(d) = diurnal {
                    inner.insert("diurnal", d.to_value());
                }
                let mut outer = serde::Map::new();
                outer.insert("open_loop", Value::Object(inner));
                Value::Object(outer)
            }
            ArrivalSpec::ClosedLoop {
                clients,
                think_ms,
                requests,
            } => {
                let mut inner = serde::Map::new();
                inner.insert("clients", clients.to_value());
                inner.insert("think_ms", think_ms.to_value());
                inner.insert("requests", requests.to_value());
                let mut outer = serde::Map::new();
                outer.insert("closed_loop", Value::Object(inner));
                Value::Object(outer)
            }
        }
    }
}

impl Deserialize for ArrivalSpec {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let m = v.as_object().ok_or_else(|| {
            serde::Error::custom("arrival must be {\"open_loop\": ...} or {\"closed_loop\": ...}")
        })?;
        if let Some(inner) = m.get("open_loop") {
            let im = inner
                .as_object()
                .ok_or_else(|| serde::Error::custom("open_loop takes an object of parameters"))?;
            Ok(ArrivalSpec::OpenLoop {
                rate_rps: serde::de_field(im, "rate_rps")?,
                requests: serde::de_field(im, "requests")?,
                burst: serde::de_field(im, "burst")?,
                diurnal: serde::de_field(im, "diurnal")?,
            })
        } else if let Some(inner) = m.get("closed_loop") {
            let im = inner
                .as_object()
                .ok_or_else(|| serde::Error::custom("closed_loop takes an object of parameters"))?;
            Ok(ArrivalSpec::ClosedLoop {
                clients: serde::de_field(im, "clients")?,
                think_ms: serde::de_field(im, "think_ms")?,
                requests: serde::de_field(im, "requests")?,
            })
        } else {
            Err(serde::Error::custom(
                "arrival object must be {\"open_loop\": ...} or {\"closed_loop\": ...}",
            ))
        }
    }
}

/// One tenant in a serving scenario: a sealed model with its own
/// key/version-number space, its own protection scheme instance, and an
/// optional latency SLA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Unique tenant name — the snapshot and report key.
    pub name: String,
    /// The tenant's model.
    pub workload: WorkloadSpec,
    /// The tenant's protection scheme (instantiated per tenant).
    pub scheme: SchemeSpec,
    /// Latency SLA in simulated milliseconds — the EDF deadline source
    /// (default: no deadline pressure; EDF treats it as far-future).
    pub sla_ms: Option<f64>,
    /// Relative share of the arrival stream (default 1).
    pub weight: Option<u64>,
}

/// One per-tenant latency ceiling checked after a serving run — the
/// serving analogue of [`ExpectationSpec`], feeding the same exit-code
/// plumbing (`seda_cli serve` exits 5 on a violation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeExpectation {
    /// Tenant name to check (case-insensitive against the lineup).
    pub tenant: String,
    /// Ceiling on the tenant's p50 latency in simulated milliseconds.
    pub p50_ms_max: Option<f64>,
    /// Ceiling on the tenant's p95 latency in simulated milliseconds.
    pub p95_ms_max: Option<f64>,
    /// Ceiling on the tenant's p99 latency in simulated milliseconds.
    pub p99_ms_max: Option<f64>,
}

/// One scheduled hot model-swap: at `at_ms` of simulated time a
/// tenant's replacement sealed image starts streaming in under traffic,
/// and the scheduler cuts over to the replacement's cost model at the
/// first instant the tenant has no batch in flight — a layer-boundary
/// cutover, never mid-batch. The replacement is provisioned through the
/// `seda-stream` chunked encrypt-then-MAC pipeline under a fresh key
/// (new key id, next key epoch); the old image's version-number space
/// is retired at cutover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapSpec {
    /// Tenant to swap (must name a lineup tenant; at most one swap per
    /// tenant).
    pub tenant: String,
    /// Simulated time of the swap request in milliseconds.
    pub at_ms: f64,
    /// Replacement model; defaults to re-provisioning the tenant's own
    /// workload (same cost model, fresh keys).
    pub workload: Option<WorkloadSpec>,
}

/// The `"serving"` block of a scenario: everything `seda-serve` needs to
/// run a multi-tenant serving simulation — arrival process, tenant
/// lineup, scheduler, and SLA ceilings. The block is pure data; the
/// `seda-serve` crate interprets it, so a scenario file carrying one is
/// still a valid plain scenario for `scenario run`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSpec {
    /// Master seed: arrivals, think times, tenant selection, and tenant
    /// sealing keys all derive from it.
    pub seed: u64,
    /// Scheduler: `"fcfs"`, `"rr"`, or `"edf"` (case-insensitive).
    pub scheduler: String,
    /// Identical NPU replicas served from one queue (default 1).
    pub replicas: Option<u32>,
    /// Largest same-tenant batch dispatched at once (default 1).
    pub max_batch: Option<u32>,
    /// Let EDF preempt a running batch at layer boundaries.
    pub preempt: Option<bool>,
    /// Arrival process.
    pub arrival: ArrivalSpec,
    /// Tenant lineup; the arrival stream is split by tenant weight.
    pub tenants: Vec<TenantSpec>,
    /// Scheduled hot model-swaps applied while traffic is in flight.
    pub swaps: Option<Vec<SwapSpec>>,
    /// Per-tenant latency ceilings enforced by `seda_cli serve`.
    pub expect: Option<Vec<ServeExpectation>>,
}

impl ServingSpec {
    /// The canonical (lowercase) scheduler name.
    pub fn scheduler_name(&self) -> String {
        self.scheduler.to_ascii_lowercase()
    }

    /// Checks every parameter, reporting the first problem.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let bad = |reason: String| Err(ScenarioError::BadSpec { reason });
        let sched = self.scheduler_name();
        if !matches!(sched.as_str(), "fcfs" | "rr" | "edf") {
            return bad(format!(
                "serving scheduler must be fcfs|rr|edf, got {:?}",
                self.scheduler
            ));
        }
        if self.preempt == Some(true) && sched != "edf" {
            return bad(format!(
                "serving preempt requires the edf scheduler, not {sched:?}"
            ));
        }
        if self.replicas == Some(0) {
            return bad("serving replicas must be at least 1".to_owned());
        }
        if self.max_batch == Some(0) {
            return bad("serving max_batch must be at least 1".to_owned());
        }
        if self.tenants.is_empty() {
            return bad("serving needs at least one tenant".to_owned());
        }
        let mut names: Vec<&str> = Vec::new();
        for t in &self.tenants {
            if t.name.is_empty() {
                return bad("serving tenants need nonempty names".to_owned());
            }
            if names.iter().any(|n| n.eq_ignore_ascii_case(&t.name)) {
                return bad(format!("duplicate serving tenant name {:?}", t.name));
            }
            names.push(&t.name);
            t.workload.resolve()?;
            t.scheme.validate()?;
            if let Some(sla) = t.sla_ms {
                if !(sla.is_finite() && sla > 0.0) {
                    return bad(format!(
                        "tenant {:?} sla_ms must be positive and finite, got {sla}",
                        t.name
                    ));
                }
            }
            if t.weight == Some(0) {
                return bad(format!("tenant {:?} weight must be at least 1", t.name));
            }
        }
        if let Some(swaps) = &self.swaps {
            if swaps.is_empty() {
                return bad("serving swaps block needs at least one swap".to_owned());
            }
            let mut swapped: Vec<&str> = Vec::new();
            for s in swaps {
                if !names.iter().any(|n| n.eq_ignore_ascii_case(&s.tenant)) {
                    return bad(format!(
                        "serving swap references tenant {:?}, not in this lineup",
                        s.tenant
                    ));
                }
                if swapped.iter().any(|n| n.eq_ignore_ascii_case(&s.tenant)) {
                    return bad(format!(
                        "tenant {:?} has more than one scheduled swap",
                        s.tenant
                    ));
                }
                swapped.push(&s.tenant);
                if !(s.at_ms.is_finite() && s.at_ms > 0.0) {
                    return bad(format!(
                        "swap for {:?} needs a positive finite at_ms, got {}",
                        s.tenant, s.at_ms
                    ));
                }
                if let Some(w) = &s.workload {
                    w.resolve()?;
                }
            }
        }
        match &self.arrival {
            ArrivalSpec::OpenLoop {
                rate_rps,
                requests,
                burst,
                diurnal,
            } => {
                if !(rate_rps.is_finite() && *rate_rps > 0.0) {
                    return bad(format!(
                        "open_loop rate_rps must be positive and finite, got {rate_rps}"
                    ));
                }
                if *requests == 0 {
                    return bad("open_loop requests must be at least 1".to_owned());
                }
                if let Some(b) = burst {
                    if !(b.period_ms.is_finite() && b.period_ms > 0.0) {
                        return bad("burst period_ms must be positive and finite".to_owned());
                    }
                    if !(b.duty_pct > 0.0 && b.duty_pct < 100.0) {
                        return bad(format!(
                            "burst duty_pct must be in (0, 100), got {}",
                            b.duty_pct
                        ));
                    }
                    if !(b.factor.is_finite() && b.factor > 0.0) {
                        return bad("burst factor must be positive and finite".to_owned());
                    }
                }
                if let Some(d) = diurnal {
                    if !(d.period_ms.is_finite() && d.period_ms > 0.0) {
                        return bad("diurnal period_ms must be positive and finite".to_owned());
                    }
                    if !(d.amplitude >= 0.0 && d.amplitude < 1.0) {
                        return bad(format!(
                            "diurnal amplitude must be in [0, 1), got {}",
                            d.amplitude
                        ));
                    }
                }
            }
            ArrivalSpec::ClosedLoop {
                clients,
                think_ms,
                requests,
            } => {
                if *clients == 0 {
                    return bad("closed_loop clients must be at least 1".to_owned());
                }
                if !(think_ms.is_finite() && *think_ms >= 0.0) {
                    return bad(format!(
                        "closed_loop think_ms must be nonnegative and finite, got {think_ms}"
                    ));
                }
                if *requests == 0 {
                    return bad("closed_loop requests must be at least 1".to_owned());
                }
            }
        }
        if let Some(expect) = &self.expect {
            if expect.is_empty() {
                return bad("serving expect block needs at least one ceiling".to_owned());
            }
            for e in expect {
                if !names.iter().any(|n| n.eq_ignore_ascii_case(&e.tenant)) {
                    return bad(format!(
                        "serving expect references tenant {:?}, not in this lineup",
                        e.tenant
                    ));
                }
                let bounds = [
                    ("p50_ms_max", e.p50_ms_max),
                    ("p95_ms_max", e.p95_ms_max),
                    ("p99_ms_max", e.p99_ms_max),
                ];
                if bounds.iter().all(|(_, b)| b.is_none()) {
                    return bad(format!(
                        "serving expect for {:?} needs p50_ms_max, p95_ms_max, or p99_ms_max",
                        e.tenant
                    ));
                }
                for (name, bound) in bounds {
                    if let Some(b) = bound {
                        if !(b.is_finite() && b > 0.0) {
                            return bad(format!(
                                "serving expect {name} must be positive and finite"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// A declarative experiment: everything the sweep engine needs, as data.
///
/// The **first scheme is the normalization baseline** for the traffic and
/// runtime outputs, matching the Fig. 5/6 convention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Registry name (the `scenarios/<name>.json` stem).
    pub name: String,
    /// One-line human description.
    pub title: String,
    /// NPU suite (`"server"` / `"edge"`), in sweep order.
    pub npus: Vec<String>,
    /// Workload selections, in sweep order.
    pub workloads: Vec<WorkloadSpec>,
    /// Scheme selections, baseline first.
    pub schemes: Vec<SchemeSpec>,
    /// Optional DRAM-configuration override applied to every NPU.
    pub dram: Option<DramOverride>,
    /// Back-to-back inferences per point (default 1).
    pub repeats: Option<u32>,
    /// Optional integrity-verifier engine model.
    pub verifier: Option<VerifierSpec>,
    /// Report sections to render, in order.
    pub outputs: Vec<OutputKind>,
    /// Per-point failure policy (`"fail-fast"` | `"skip"` |
    /// `{"retry": ...}`); absent means fail-fast, the historical
    /// all-or-nothing contract.
    pub on_failure: Option<FailurePolicy>,
    /// Per-point wall-clock watchdog budget in milliseconds; a hung
    /// point becomes a typed timeout instead of hanging the run.
    pub point_budget_ms: Option<u64>,
    /// Scheme-level assertions `scenario run` checks after execution.
    pub expect: Option<Expectations>,
    /// Optional multi-tenant serving block interpreted by `seda_cli
    /// serve` (ignored by `scenario run`).
    pub serving: Option<ServingSpec>,
}

/// Resolves an NPU suite name (`"server"` / `"edge"`, case-insensitive)
/// to its configuration — the same lookup every scenario axis uses.
///
/// # Errors
///
/// Returns [`ScenarioError::UnknownNpu`] for any other name.
pub fn npu_by_name(name: &str) -> Result<NpuConfig, ScenarioError> {
    match name.to_ascii_lowercase().as_str() {
        "server" => Ok(NpuConfig::server()),
        "edge" => Ok(NpuConfig::edge()),
        _ => Err(ScenarioError::UnknownNpu {
            name: name.to_owned(),
        }),
    }
}

impl Scenario {
    /// Parses and validates a scenario from its JSON text.
    pub fn from_json(text: &str) -> Result<Self, SedaError> {
        let scenario: Scenario = serde_json::from_str(text).map_err(|e| ScenarioError::Parse {
            reason: e.to_string(),
        })?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Serializes the scenario as pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        // The Value tree for a validated scenario contains no non-finite
        // floats, so serialization cannot fail.
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Checks every reference and parameter, reporting the first problem
    /// as a typed [`ScenarioError`] (wrapped in [`SedaError::Scenario`]).
    pub fn validate(&self) -> Result<(), SedaError> {
        let bad = |reason: &str| {
            Err(SedaError::Scenario(ScenarioError::BadSpec {
                reason: reason.to_owned(),
            }))
        };
        if self.name.is_empty() {
            return bad("scenario needs a name");
        }
        if self.npus.is_empty() {
            return bad("scenario needs at least one NPU");
        }
        if self.workloads.is_empty() {
            return bad("scenario needs at least one workload");
        }
        if self.schemes.is_empty() {
            return bad("scenario needs at least one scheme (the first is the baseline)");
        }
        for npu in &self.npus {
            npu_by_name(npu)?;
        }
        for w in &self.workloads {
            w.resolve()?;
        }
        let mut labels = Vec::new();
        for s in &self.schemes {
            s.validate()?;
            let label = s.label();
            if labels.contains(&label) {
                return bad(&format!("duplicate scheme label {label:?}"));
            }
            labels.push(label);
        }
        if let Some(d) = &self.dram {
            d.validate()?;
        }
        if self.repeats == Some(0) {
            return bad("repeats must be at least 1");
        }
        if let Some(v) = &self.verifier {
            if !(v.bytes_per_cycle.is_finite() && v.bytes_per_cycle > 0.0) {
                return bad("verifier bytes_per_cycle must be positive and finite");
            }
        }
        if let Some(FailurePolicy::Retry { max_attempts, .. }) = self.on_failure {
            if max_attempts == 0 {
                return bad("retry max_attempts must be at least 1");
            }
        }
        if self.point_budget_ms == Some(0) {
            return bad("point_budget_ms must be at least 1");
        }
        if let Some(expect) = &self.expect {
            if expect.0.is_empty() {
                return bad("expect block needs at least one assertion");
            }
            for e in &expect.0 {
                if !labels.iter().any(|l| l.eq_ignore_ascii_case(&e.scheme)) {
                    return bad(&format!(
                        "expect references scheme {:?}, not in this scenario's lineup",
                        e.scheme
                    ));
                }
                if let Some(npu) = &e.npu {
                    if !self.npus.iter().any(|n| n.eq_ignore_ascii_case(npu)) {
                        return bad(&format!(
                            "expect references NPU {npu:?}, not in this scenario"
                        ));
                    }
                }
                if e.traffic_norm_max.is_none() && e.perf_norm_max.is_none() {
                    return bad(&format!(
                        "expect entry for {:?} needs traffic_norm_max or perf_norm_max",
                        e.scheme
                    ));
                }
                for (name, bound) in [
                    ("traffic_norm_max", e.traffic_norm_max),
                    ("perf_norm_max", e.perf_norm_max),
                ] {
                    if let Some(b) = bound {
                        if !(b.is_finite() && b > 0.0) {
                            return bad(&format!("expect {name} must be positive and finite"));
                        }
                    }
                }
            }
        }
        if let Some(serving) = &self.serving {
            if self.npus.len() != 1 {
                return bad(
                    "a serving scenario pins exactly one NPU (scale capacity with \
                     serving.replicas instead)",
                );
            }
            serving.validate()?;
        }
        Ok(())
    }

    /// Builds the configured [`Sweep`] without executing it.
    fn sweep(&self) -> Result<Sweep, SedaError> {
        self.validate()?;
        let mut sweep = Sweep::new();
        for npu in &self.npus {
            sweep = sweep.npu(npu_by_name(npu)?);
        }
        for w in &self.workloads {
            sweep = sweep.model(w.resolve()?);
        }
        for s in &self.schemes {
            sweep = s.add_to(sweep);
        }
        if let Some(v) = &self.verifier {
            sweep = sweep.verifier(HashEngine::new(v.bytes_per_cycle, v.latency_cycles));
        }
        if let Some(n) = self.repeats {
            sweep = sweep.repeats(n);
        }
        if let Some(d) = self.dram.clone() {
            sweep = sweep.dram_map(move |npu| d.apply(dram_config_for(npu)));
        }
        sweep = sweep.on_failure(self.policy());
        if let Some(ms) = self.point_budget_ms {
            sweep = sweep.point_budget_ms(ms);
        }
        Ok(sweep)
    }

    /// The effective failure policy: the declared `on_failure`, or
    /// fail-fast — the historical all-or-nothing scenario contract.
    pub fn policy(&self) -> FailurePolicy {
        self.on_failure.unwrap_or(FailurePolicy::FailFast)
    }

    /// The checkpoint-journal header describing this scenario's sweep —
    /// what `--resume` validates a journal against.
    pub fn journal_header(&self) -> Result<JournalHeader, SedaError> {
        let mut npus = Vec::new();
        for n in &self.npus {
            npus.push(npu_by_name(n)?.name.clone());
        }
        let mut models = Vec::new();
        for w in &self.workloads {
            models.push(w.resolve()?.name().to_owned());
        }
        let schemes: Vec<String> = self.schemes.iter().map(|s| s.label()).collect();
        Ok(JournalHeader {
            schema: CHECKPOINT_SCHEMA.to_owned(),
            scenario: self.name.clone(),
            points: npus.len() * models.len() * schemes.len(),
            npus,
            models,
            schemes,
        })
    }

    /// Executes the scenario through the sweep engine (no journaling).
    ///
    /// The whole cross-product runs as one parallel sweep (one simulated
    /// trace per distinct NPU × workload pair); a failed point surfaces
    /// through the scenario's failure policy instead of a panic.
    ///
    /// # Errors
    ///
    /// Under the default fail-fast policy, any point failure aborts with
    /// [`SedaError::ScenarioPointFailed`] carrying the structured report
    /// of *every* failed point (`source()` chains to the first one).
    /// Under `skip`/`retry`, exhausted failures degrade the run to a
    /// partial [`ScenarioRun`] instead — see [`ScenarioRun::failures`].
    pub fn run(&self) -> Result<ScenarioRun, SedaError> {
        self.run_with(&RunOptions::default())
    }

    /// [`run`](Self::run) with checkpoint journaling and resume.
    ///
    /// With [`RunOptions::journal`], completed points stream to a
    /// `seda-checkpoint/v1` journal as they finish. With
    /// [`RunOptions::resume`], points recorded in the journal replay
    /// bit-identically without executing, fresh completions append to
    /// the same file, and the journal's header is validated against this
    /// scenario's sweep shape first.
    pub fn run_with(&self, opts: &RunOptions) -> Result<ScenarioRun, SedaError> {
        let mut sweep = self.sweep()?;
        let header = self.journal_header()?;
        let mut writer: Option<std::sync::Arc<JournalWriter>> = None;
        if let Some(resume_path) = &opts.resume {
            if opts.journal.as_ref().is_some_and(|j| j != resume_path) {
                return Err(SedaError::Scenario(ScenarioError::Checkpoint {
                    reason: "a resumed run appends to the journal it resumes from; \
                             drop --journal or point it at the same file"
                        .to_owned(),
                }));
            }
            let contents = load_journal(resume_path)?;
            if contents.header != header {
                return Err(SedaError::Scenario(ScenarioError::Checkpoint {
                    reason: format!(
                        "journal {} records scenario {:?} with {} points, but this run \
                         is scenario {:?} with {} points",
                        resume_path.display(),
                        contents.header.scenario,
                        contents.header.points,
                        header.scenario,
                        header.points
                    ),
                }));
            }
            sweep = sweep.resume_from(contents.points);
            writer = Some(std::sync::Arc::new(JournalWriter::append(resume_path)?));
        } else if let Some(journal_path) = &opts.journal {
            writer = Some(std::sync::Arc::new(JournalWriter::create(
                journal_path,
                &header,
            )?));
        }
        if let Some(w) = &writer {
            let sink = std::sync::Arc::clone(w);
            sweep = sweep.stream_to(move |i, runs| sink.record(i, runs));
        }
        let results = sweep.run();
        if let Some(w) = &writer {
            w.finish()?;
        }
        let failures = results.failure_report();
        let (n, m, s) = results.shape();
        let points_total = n * m * s;
        if !failures.is_empty() && self.policy() == FailurePolicy::FailFast {
            return Err(SedaError::ScenarioPointFailed {
                scenario: self.name.clone(),
                total_points: points_total,
                report: failures,
            });
        }
        Ok(ScenarioRun {
            scenario: self.clone(),
            evaluations: partial_evaluations_of(&results),
            failures,
            points_total,
            points_resumed: results.resumed_count(),
        })
    }
}

/// Execution options for [`Scenario::run_with`]: checkpoint journaling
/// and resume.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Stream completed points to this `seda-checkpoint/v1` journal.
    pub journal: Option<PathBuf>,
    /// Resume from this journal: recorded points replay bit-identically,
    /// fresh completions append to the same file.
    pub resume: Option<PathBuf>,
}

/// A completed scenario execution: the scenario plus its per-NPU
/// normalized evaluations — possibly partial. Under a `skip`/`retry`
/// policy, workloads with failed points drop out of the evaluations and
/// the failures are carried in [`failures`](Self::failures) instead of
/// aborting the run.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// One evaluation per NPU, in scenario order. A workload appears
    /// only if every one of its scheme points succeeded on that NPU.
    pub evaluations: Vec<Evaluation>,
    /// Every failed point with its attempts and final error; empty for
    /// an all-green run.
    pub failures: FailureReport,
    /// Total points in the sweep.
    pub points_total: usize,
    /// Points replayed from a checkpoint journal instead of executed.
    pub points_resumed: usize,
}

/// One raw sweep point in a scenario snapshot.
#[derive(Serialize)]
struct SnapshotPoint {
    npu: String,
    workload: String,
    scheme: String,
    total_cycles: u64,
    traffic_bytes: u64,
}

/// Per-NPU per-scheme normalized means in a scenario snapshot.
#[derive(Serialize)]
struct SnapshotMean {
    npu: String,
    scheme: String,
    mean_traffic: f64,
    mean_runtime: f64,
}

#[derive(Serialize)]
struct Snapshot {
    schema: String,
    scenario: String,
    means: Vec<SnapshotMean>,
    points: Vec<SnapshotPoint>,
}

impl ScenarioRun {
    /// Renders the scenario's selected outputs as a report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Scenario {}: {}",
            self.scenario.name, self.scenario.title
        );
        let _ = writeln!(out);
        for kind in &self.scenario.outputs {
            match kind {
                OutputKind::Traffic => self.render_traffic(&mut out),
                OutputKind::Runtime => self.render_runtime(&mut out),
                OutputKind::Energy => self.render_energy(&mut out),
                OutputKind::Telemetry => {
                    let _ = writeln!(
                        out,
                        "telemetry: run under `seda_cli --telemetry <out.json> scenario run {}` \
                         to export the metric snapshot",
                        self.scenario.name
                    );
                    let _ = writeln!(out);
                }
            }
        }
        if self.points_resumed > 0 {
            let _ = writeln!(
                out,
                "resumed: {} of {} points replayed from the checkpoint journal",
                self.points_resumed, self.points_total
            );
            let _ = writeln!(out);
        }
        if !self.failures.is_empty() {
            let _ = writeln!(
                out,
                "PARTIAL RESULTS: {} of {} points failed; workloads with failed \
                 points are excluded from the figures above.",
                self.failures.len(),
                self.points_total
            );
            let _ = write!(out, "{}", self.failures.render());
            let _ = writeln!(out);
        }
        out
    }

    fn render_traffic(&self, out: &mut String) {
        for eval in self.evaluations.iter().filter(|e| !e.workloads.is_empty()) {
            let _ = write!(out, "{}", report::figure5(eval));
            let _ = writeln!(out);
            let _ = write!(
                out,
                "{}",
                report::bar_chart(
                    &format!("mean normalized traffic — {} NPU", eval.npu),
                    &eval.mean_traffic(),
                    48
                )
            );
            let _ = writeln!(out);
            for (scheme, t) in eval.mean_traffic().iter().skip(1) {
                let _ = writeln!(
                    out,
                    "  {} NPU {scheme}: traffic overhead {:+.2}%",
                    eval.npu,
                    (t - 1.0) * 100.0
                );
            }
            let _ = writeln!(out);
        }
    }

    fn render_runtime(&self, out: &mut String) {
        for eval in self.evaluations.iter().filter(|e| !e.workloads.is_empty()) {
            let _ = write!(out, "{}", report::figure6(eval));
            let _ = writeln!(out);
            let _ = write!(
                out,
                "{}",
                report::bar_chart(
                    &format!("mean normalized runtime — {} NPU", eval.npu),
                    &eval.mean_perf(),
                    48
                )
            );
            let _ = writeln!(out);
            for (scheme, p) in eval.mean_perf().iter().skip(1) {
                let _ = writeln!(
                    out,
                    "  {} NPU {scheme}: slowdown {:+.2}%",
                    eval.npu,
                    (p - 1.0) * 100.0
                );
            }
            let _ = writeln!(out);
        }
    }

    fn render_energy(&self, out: &mut String) {
        for eval in self.evaluations.iter().filter(|e| !e.workloads.is_empty()) {
            // LPDDR4 energies for the edge-class part, DDR4 otherwise,
            // matching the energy ablation's pairing.
            let (params, mem) = if eval.npu.eq_ignore_ascii_case("edge") {
                (EnergyParams::lpddr4(), "LPDDR4")
            } else {
                (EnergyParams::ddr4(), "DDR4")
            };
            let _ = writeln!(out, "DRAM energy — {} NPU ({mem})", eval.npu);
            let _ = writeln!(
                out,
                "{:<16} {:>10} {:>10} {:>10} {:>10} {:>11} {:>9}",
                "scheme", "act mJ", "read mJ", "write mJ", "bkgd mJ", "total mJ", "vs base"
            );
            let n_schemes = eval.workloads.first().map_or(0, |w| w.outcomes.len());
            let mut base_total = None;
            for si in 0..n_schemes {
                let mut acc = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                let mut label = String::new();
                for w in &eval.workloads {
                    let o = &w.outcomes[si];
                    label = o.scheme.clone();
                    let secs: f64 = o
                        .run
                        .layers
                        .iter()
                        .map(|l| l.memory_cycles as f64 / o.run.clock_hz)
                        .sum();
                    let e = estimate_energy(&params, &o.run.dram, secs);
                    acc.0 += e.activate_mj;
                    acc.1 += e.read_mj;
                    acc.2 += e.write_mj;
                    acc.3 += e.background_mj;
                }
                let total = acc.0 + acc.1 + acc.2 + acc.3;
                let base = *base_total.get_or_insert(total);
                let _ = writeln!(
                    out,
                    "{label:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>11.3} {:>8.2}%",
                    acc.0,
                    acc.1,
                    acc.2,
                    acc.3,
                    total,
                    (total / base - 1.0) * 100.0
                );
            }
            let _ = writeln!(out);
        }
    }

    /// The scenario's headline numbers as stable JSON (schema
    /// `seda-scenario/v1`) — the payload the golden fixtures pin.
    pub fn snapshot_json(&self) -> String {
        let means = self
            .evaluations
            .iter()
            .flat_map(|eval| {
                eval.mean_traffic().into_iter().zip(eval.mean_perf()).map(
                    |((scheme, mean_traffic), (_, mean_runtime))| SnapshotMean {
                        npu: eval.npu.clone(),
                        scheme,
                        mean_traffic,
                        mean_runtime,
                    },
                )
            })
            .collect();
        let points = self
            .evaluations
            .iter()
            .flat_map(|eval| {
                eval.workloads.iter().flat_map(|w| {
                    w.outcomes.iter().map(|o| SnapshotPoint {
                        npu: eval.npu.clone(),
                        workload: w.workload.clone(),
                        scheme: o.scheme.clone(),
                        total_cycles: o.run.total_cycles,
                        traffic_bytes: o.run.traffic.total(),
                    })
                })
            })
            .collect();
        let snapshot = Snapshot {
            schema: "seda-scenario/v1".to_owned(),
            scenario: self.scenario.name.clone(),
            means,
            points,
        };
        serde_json::to_string_pretty(&snapshot).unwrap_or_default()
    }

    /// Checks the scenario's `expect` assertions against the evaluated
    /// means, returning every violation (empty means all assertions
    /// hold). An assertion whose scheme row is missing — every workload
    /// carrying it failed — is reported as unverifiable (`actual` is
    /// `NaN`): a failed run must not silently pass its claims.
    pub fn check_expectations(&self) -> Vec<ExpectationFailure> {
        let mut out = Vec::new();
        let Some(expect) = &self.scenario.expect else {
            return out;
        };
        for e in &expect.0 {
            for eval in &self.evaluations {
                if let Some(npu) = &e.npu {
                    if !eval.npu.eq_ignore_ascii_case(npu) {
                        continue;
                    }
                }
                type MetricRow = (&'static str, Option<f64>, Vec<(String, f64)>);
                let metrics: [MetricRow; 2] = [
                    (
                        "normalized traffic",
                        e.traffic_norm_max,
                        eval.mean_traffic(),
                    ),
                    ("normalized runtime", e.perf_norm_max, eval.mean_perf()),
                ];
                for (metric, bound, means) in metrics {
                    let Some(limit) = bound else { continue };
                    let row = means
                        .iter()
                        .find(|(scheme, _)| scheme.eq_ignore_ascii_case(&e.scheme));
                    match row {
                        Some((_, actual)) if *actual <= limit => {}
                        Some((_, actual)) => out.push(ExpectationFailure {
                            npu: eval.npu.clone(),
                            scheme: e.scheme.clone(),
                            metric,
                            limit,
                            actual: *actual,
                        }),
                        None => out.push(ExpectationFailure {
                            npu: eval.npu.clone(),
                            scheme: e.scheme.clone(),
                            metric,
                            limit,
                            actual: f64::NAN,
                        }),
                    }
                }
            }
        }
        out
    }
}

/// Locates the scenario registry directory: `$SEDA_SCENARIOS` if set,
/// otherwise the nearest `scenarios/` directory walking up from the
/// current working directory (so the registry resolves from the repo
/// root, from a crate directory under `cargo test`, and from CI).
pub fn scenarios_dir() -> Result<PathBuf, SedaError> {
    if let Some(dir) = std::env::var_os(SCENARIOS_ENV) {
        let dir = PathBuf::from(dir);
        if dir.is_dir() {
            return Ok(dir);
        }
        return Err(SedaError::Scenario(ScenarioError::Parse {
            reason: format!("{SCENARIOS_ENV}={} is not a directory", dir.display()),
        }));
    }
    let mut cur = std::env::current_dir().map_err(|e| {
        SedaError::Scenario(ScenarioError::Parse {
            reason: format!("cannot resolve working directory: {e}"),
        })
    })?;
    loop {
        let candidate = cur.join("scenarios");
        if candidate.is_dir() {
            return Ok(candidate);
        }
        if !cur.pop() {
            return Err(SedaError::Scenario(ScenarioError::Parse {
                reason: format!(
                    "no scenarios/ directory found above the working directory (set \
                     {SCENARIOS_ENV} to point at one)"
                ),
            }));
        }
    }
}

fn load_file(path: &Path) -> Result<Scenario, SedaError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        SedaError::Scenario(ScenarioError::Parse {
            reason: format!("cannot read {}: {e}", path.display()),
        })
    })?;
    Scenario::from_json(&text)
}

/// Loads and validates a registered scenario by name (or an explicit
/// path to a `.json` file).
pub fn load(name: &str) -> Result<Scenario, SedaError> {
    let explicit = Path::new(name);
    if name.ends_with(".json") && explicit.is_file() {
        return load_file(explicit);
    }
    load_file(&scenarios_dir()?.join(format!("{name}.json")))
}

/// Loads every registered scenario, sorted by name.
///
/// A file that fails to parse or validate fails the whole listing — the
/// registry is a regression surface and must stay uniformly loadable.
pub fn list() -> Result<Vec<Scenario>, SedaError> {
    let dir = scenarios_dir()?;
    let entries = std::fs::read_dir(&dir).map_err(|e| {
        SedaError::Scenario(ScenarioError::Parse {
            reason: format!("cannot list {}: {e}", dir.display()),
        })
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    paths.iter().map(|p| load_file(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_scenario() -> Scenario {
        Scenario {
            name: "round-trip".to_owned(),
            title: "every feature of the schema in one scenario".to_owned(),
            npus: vec!["server".to_owned(), "edge".to_owned()],
            workloads: vec![
                WorkloadSpec::Zoo {
                    name: "let".to_owned(),
                },
                WorkloadSpec::TransformerDecode { context: 2048 },
                WorkloadSpec::DlrmGather {
                    tables: 26,
                    embedding_dim: 64,
                    lookups: 128,
                },
            ],
            schemes: vec![
                SchemeSpec::Registry {
                    name: "baseline".to_owned(),
                },
                SchemeSpec::BlockMac {
                    kind: "mgx".to_owned(),
                    granularity: 256,
                    mac_cache_kb: None,
                    vn_cache_kb: None,
                },
                SchemeSpec::BlockMac {
                    kind: "sgx".to_owned(),
                    granularity: 64,
                    mac_cache_kb: Some(4),
                    vn_cache_kb: Some(8),
                },
                SchemeSpec::Registry {
                    name: "SeDA".to_owned(),
                },
            ],
            dram: Some(DramOverride {
                channels: Some(8),
                row_bytes: Some(1024),
                t_rfc: Some(313),
                ..DramOverride::default()
            }),
            repeats: Some(2),
            verifier: Some(VerifierSpec {
                bytes_per_cycle: 32.0,
                latency_cycles: 80,
            }),
            outputs: vec![OutputKind::Traffic, OutputKind::Runtime, OutputKind::Energy],
            on_failure: Some(FailurePolicy::Retry {
                max_attempts: 3,
                base_backoff_ms: 25,
            }),
            point_budget_ms: Some(60_000),
            expect: Some(Expectations(vec![ExpectationSpec {
                scheme: "SeDA".to_owned(),
                npu: Some("server".to_owned()),
                traffic_norm_max: Some(1.01),
                perf_norm_max: None,
            }])),
            serving: None,
        }
    }

    fn serving_scenario() -> Scenario {
        Scenario {
            name: "serve-round-trip".to_owned(),
            title: "every serving feature in one scenario".to_owned(),
            npus: vec!["edge".to_owned()],
            workloads: vec![WorkloadSpec::Zoo {
                name: "let".to_owned(),
            }],
            schemes: vec![
                SchemeSpec::Registry {
                    name: "baseline".to_owned(),
                },
                SchemeSpec::Registry {
                    name: "SeDA".to_owned(),
                },
            ],
            dram: None,
            repeats: None,
            verifier: None,
            outputs: vec![OutputKind::Traffic],
            on_failure: None,
            point_budget_ms: None,
            expect: None,
            serving: Some(ServingSpec {
                seed: 7,
                scheduler: "EDF".to_owned(),
                replicas: Some(2),
                max_batch: Some(4),
                preempt: Some(true),
                arrival: ArrivalSpec::OpenLoop {
                    rate_rps: 250.0,
                    requests: 500,
                    burst: Some(BurstSpec {
                        period_ms: 40.0,
                        duty_pct: 25.0,
                        factor: 3.0,
                    }),
                    diurnal: Some(DiurnalSpec {
                        period_ms: 1000.0,
                        amplitude: 0.5,
                    }),
                },
                tenants: vec![
                    TenantSpec {
                        name: "alpha".to_owned(),
                        workload: WorkloadSpec::Zoo {
                            name: "let".to_owned(),
                        },
                        scheme: SchemeSpec::Registry {
                            name: "SeDA".to_owned(),
                        },
                        sla_ms: Some(5.0),
                        weight: Some(3),
                    },
                    TenantSpec {
                        name: "beta".to_owned(),
                        workload: WorkloadSpec::TransformerDecode { context: 256 },
                        scheme: SchemeSpec::BlockMac {
                            kind: "sgx".to_owned(),
                            granularity: 64,
                            mac_cache_kb: None,
                            vn_cache_kb: None,
                        },
                        sla_ms: None,
                        weight: None,
                    },
                ],
                swaps: Some(vec![SwapSpec {
                    tenant: "beta".to_owned(),
                    at_ms: 12.5,
                    workload: Some(WorkloadSpec::Zoo {
                        name: "let".to_owned(),
                    }),
                }]),
                expect: Some(vec![ServeExpectation {
                    tenant: "alpha".to_owned(),
                    p50_ms_max: Some(4.0),
                    p95_ms_max: None,
                    p99_ms_max: Some(8.0),
                }]),
            }),
        }
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let scenario = full_scenario();
        let json = scenario.to_json_pretty();
        let back = Scenario::from_json(&json).expect("round-trip parses");
        assert_eq!(back, scenario);
        // And the round-trip is a fixed point of serialization.
        assert_eq!(back.to_json_pretty(), json);
    }

    #[test]
    fn serving_scenario_round_trips_through_json() {
        let scenario = serving_scenario();
        let json = scenario.to_json_pretty();
        let back = Scenario::from_json(&json).expect("round-trip parses");
        assert_eq!(back, scenario);
        assert_eq!(back.to_json_pretty(), json);
    }

    #[test]
    fn serving_spec_rejects_bad_parameters() {
        let reject = |mutate: fn(&mut Scenario), needle: &str| {
            let mut s = serving_scenario();
            mutate(&mut s);
            let e = match s.validate() {
                Err(SedaError::Scenario(e)) => e,
                other => panic!("expected rejection containing {needle:?}, got {other:?}"),
            };
            assert!(e.to_string().contains(needle), "{needle:?} not in: {e}");
        };
        reject(
            |s| s.serving.as_mut().unwrap().scheduler = "lifo".to_owned(),
            "scheduler",
        );
        reject(
            |s| s.serving.as_mut().unwrap().scheduler = "fcfs".to_owned(),
            "preempt requires the edf scheduler",
        );
        reject(
            |s| s.serving.as_mut().unwrap().replicas = Some(0),
            "replicas",
        );
        reject(
            |s| s.serving.as_mut().unwrap().max_batch = Some(0),
            "max_batch",
        );
        reject(
            |s| s.serving.as_mut().unwrap().tenants.clear(),
            "at least one tenant",
        );
        reject(
            |s| {
                let serving = s.serving.as_mut().unwrap();
                serving.tenants[1].name = "ALPHA".to_owned();
            },
            "duplicate serving tenant",
        );
        reject(
            |s| s.serving.as_mut().unwrap().tenants[0].sla_ms = Some(0.0),
            "sla_ms",
        );
        reject(
            |s| s.serving.as_mut().unwrap().tenants[0].weight = Some(0),
            "weight",
        );
        reject(
            |s| {
                s.serving.as_mut().unwrap().arrival = ArrivalSpec::OpenLoop {
                    rate_rps: 0.0,
                    requests: 10,
                    burst: None,
                    diurnal: None,
                };
            },
            "rate_rps",
        );
        reject(
            |s| {
                s.serving.as_mut().unwrap().arrival = ArrivalSpec::ClosedLoop {
                    clients: 0,
                    think_ms: 1.0,
                    requests: 10,
                };
            },
            "clients",
        );
        reject(
            |s| {
                s.serving.as_mut().unwrap().expect.as_mut().unwrap()[0].tenant =
                    "nobody".to_owned();
            },
            "not in this lineup",
        );
        reject(
            |s| {
                let e = &mut s.serving.as_mut().unwrap().expect.as_mut().unwrap()[0];
                e.p50_ms_max = None;
                e.p99_ms_max = None;
            },
            "needs p50_ms_max",
        );
        reject(
            |s| {
                s.serving.as_mut().unwrap().swaps.as_mut().unwrap()[0].tenant = "nobody".to_owned();
            },
            "swap references tenant",
        );
        reject(
            |s| {
                let swaps = s.serving.as_mut().unwrap().swaps.as_mut().unwrap();
                let mut dup = swaps[0].clone();
                dup.tenant = "BETA".to_owned();
                swaps.push(dup);
            },
            "more than one scheduled swap",
        );
        reject(
            |s| s.serving.as_mut().unwrap().swaps.as_mut().unwrap()[0].at_ms = 0.0,
            "at_ms",
        );
        reject(
            |s| s.serving.as_mut().unwrap().swaps = Some(vec![]),
            "at least one swap",
        );
        reject(|s| s.npus.push("server".to_owned()), "exactly one NPU");
    }

    fn minimal_json() -> String {
        r#"{
            "name": "t", "title": "t",
            "npus": ["edge"],
            "workloads": ["let"],
            "schemes": ["baseline", "SeDA"],
            "outputs": ["traffic"]
        }"#
        .to_owned()
    }

    fn expect_scenario_err(json: &str) -> ScenarioError {
        match Scenario::from_json(json) {
            Err(SedaError::Scenario(e)) => e,
            other => panic!("expected a scenario error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_model_is_typed() {
        let json = minimal_json().replace("\"let\"", "\"not-a-model\"");
        let e = expect_scenario_err(&json);
        assert!(matches!(e, ScenarioError::UnknownModel { ref name } if name == "not-a-model"));
        assert!(e.to_string().contains("not-a-model"), "{e}");
    }

    #[test]
    fn unknown_scheme_is_typed() {
        let json = minimal_json().replace("\"SeDA\"", "\"NotAScheme\"");
        let e = expect_scenario_err(&json);
        assert!(matches!(e, ScenarioError::UnknownScheme { ref name } if name == "NotAScheme"));
    }

    #[test]
    fn unknown_npu_is_typed() {
        let json = minimal_json().replace("\"edge\"", "\"tpu-v9\"");
        let e = expect_scenario_err(&json);
        assert!(matches!(e, ScenarioError::UnknownNpu { ref name } if name == "tpu-v9"));
    }

    #[test]
    fn bad_dram_override_is_typed() {
        let json =
            minimal_json().replace("\"outputs\"", "\"dram\": {\"channels\": 3}, \"outputs\"");
        let e = expect_scenario_err(&json);
        assert!(matches!(e, ScenarioError::BadDramOverride { .. }), "{e}");
        assert!(e.to_string().contains("channels"), "{e}");
    }

    #[test]
    fn bad_generator_parameters_are_typed() {
        let json = minimal_json().replace("\"let\"", "{\"transformer_decode\": {\"context\": 0}}");
        let e = expect_scenario_err(&json);
        assert!(matches!(e, ScenarioError::BadSpec { .. }), "{e}");
    }

    #[test]
    fn bad_granularity_is_typed() {
        let json = minimal_json().replace(
            "\"SeDA\"",
            "{\"block_mac\": {\"kind\": \"mgx\", \"granularity\": 100}}",
        );
        let e = expect_scenario_err(&json);
        assert!(matches!(e, ScenarioError::BadSpec { .. }), "{e}");
        assert!(e.to_string().contains("granularity"), "{e}");
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let e = expect_scenario_err("{ this is not json");
        assert!(matches!(e, ScenarioError::Parse { .. }), "{e}");
        let e = expect_scenario_err("{\"name\": \"x\"}");
        assert!(
            matches!(e, ScenarioError::Parse { .. }),
            "missing fields: {e}"
        );
    }

    #[test]
    fn empty_axes_are_rejected() {
        let json = minimal_json().replace("[\"baseline\", \"SeDA\"]", "[]");
        let e = expect_scenario_err(&json);
        assert!(matches!(e, ScenarioError::BadSpec { .. }), "{e}");
        let json = minimal_json().replace("[\"let\"]", "[]");
        let e = expect_scenario_err(&json);
        assert!(matches!(e, ScenarioError::BadSpec { .. }), "{e}");
    }

    #[test]
    fn duplicate_scheme_labels_are_rejected() {
        let json = minimal_json().replace("\"SeDA\"", "\"baseline\"");
        let e = expect_scenario_err(&json);
        assert!(e.to_string().contains("duplicate"), "{e}");
    }

    #[test]
    fn scenario_run_matches_the_direct_sweep_path() {
        // A scenario run must be bit-identical to driving the Sweep
        // engine by hand with the same axes.
        let scenario = Scenario::from_json(&minimal_json()).expect("valid");
        let run = scenario.run().expect("runs clean");
        let direct = Sweep::new()
            .npu(NpuConfig::edge())
            .model(zoo::lenet())
            .schemes(["baseline", "SeDA"])
            .run();
        let direct_evals = crate::experiment::evaluations_of(&direct);
        assert_eq!(run.evaluations.len(), direct_evals.len());
        for (a, b) in run.evaluations.iter().zip(&direct_evals) {
            assert_eq!(a.npu, b.npu);
            for (wa, wb) in a.workloads.iter().zip(&b.workloads) {
                assert_eq!(wa.workload, wb.workload);
                for (oa, ob) in wa.outcomes.iter().zip(&wb.outcomes) {
                    assert_eq!(oa.scheme, ob.scheme);
                    assert_eq!(oa.run.total_cycles, ob.run.total_cycles);
                    assert_eq!(oa.run.traffic, ob.run.traffic);
                }
            }
        }
        let rendered = run.render();
        assert!(rendered.contains("mean normalized traffic"), "{rendered}");
        let snapshot = run.snapshot_json();
        assert!(snapshot.contains("seda-scenario/v1"), "{snapshot}");
    }

    #[test]
    fn dram_override_changes_the_outcome() {
        let base = Scenario::from_json(&minimal_json()).expect("valid");
        let mut overridden = base.clone();
        overridden.dram = Some(DramOverride {
            t_bl: Some(dram_config_for(&NpuConfig::edge()).t_bl + 1),
            ..DramOverride::default()
        });
        let a = base.run().expect("base runs");
        let b = overridden.run().expect("override runs");
        assert_ne!(
            a.evaluations[0].workloads[0].outcomes[0].run.total_cycles,
            b.evaluations[0].workloads[0].outcomes[0].run.total_cycles,
            "a one-cycle burst-length override must be visible"
        );
    }

    #[test]
    fn block_mac_labels_are_stable() {
        let plain = SchemeSpec::BlockMac {
            kind: "mgx".to_owned(),
            granularity: 256,
            mac_cache_kb: None,
            vn_cache_kb: None,
        };
        assert_eq!(plain.label(), "MGX-256B");
        let cached = SchemeSpec::BlockMac {
            kind: "sgx".to_owned(),
            granularity: 64,
            mac_cache_kb: Some(4),
            vn_cache_kb: Some(8),
        };
        assert_eq!(cached.label(), "SGX-64B/m4v8");
    }
}
