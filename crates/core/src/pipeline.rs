//! End-to-end secure-NPU pipeline: model → accelerator simulation →
//! protection-scheme trace transformation → DRAM timing.
//!
//! This is the evaluation flow of §IV-A: SCALE-Sim-style burst traces are
//! rewritten by a memory-protection scheme and replayed through the DRAM
//! simulator; per-layer runtime is the maximum of compute and memory time
//! under double buffering.

use seda_dram::{DramConfig, DramSim, DramStats};
use seda_models::Model;
use seda_protect::{ProtectionScheme, TrafficBreakdown};
use seda_scalesim::{simulate_model, NpuConfig};
use serde::{Deserialize, Serialize};

/// Per-layer timing outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Layer name.
    pub name: String,
    /// Systolic-array compute cycles (accelerator clock).
    pub compute_cycles: u64,
    /// Memory cycles converted into the accelerator clock domain.
    pub memory_cycles: u64,
    /// Layer runtime: `max(compute, memory)` under double buffering.
    pub cycles: u64,
}

/// Result of running one model under one protection scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Model name.
    pub model: String,
    /// NPU configuration name.
    pub npu: String,
    /// Protection scheme name.
    pub scheme: String,
    /// Per-layer timing.
    pub layers: Vec<LayerTiming>,
    /// Total runtime in accelerator cycles.
    pub total_cycles: u64,
    /// Traffic tally per category.
    pub traffic: TrafficBreakdown,
    /// DRAM access statistics.
    pub dram: DramStats,
}

impl RunResult {
    /// Runtime in seconds on the configured accelerator clock.
    pub fn seconds(&self, npu: &NpuConfig) -> f64 {
        self.total_cycles as f64 / npu.clock_hz
    }
}

/// Runs `model` on `npu` under `scheme` and reports traffic and runtime.
///
/// # Examples
///
/// ```
/// use seda::pipeline::run_model;
/// use seda_models::zoo;
/// use seda_protect::Unprotected;
/// use seda_scalesim::NpuConfig;
///
/// let r = run_model(&NpuConfig::edge(), &zoo::lenet(), &mut Unprotected::new());
/// assert!(r.total_cycles > 0);
/// ```
pub fn run_model(
    npu: &NpuConfig,
    model: &Model,
    scheme: &mut dyn ProtectionScheme,
) -> RunResult {
    run_model_with_verifier(npu, model, scheme, None)
}

/// Like [`run_model`], additionally modelling the integrity-verification
/// engine: every fetched byte streams through the hash engine, so an
/// undersized verifier (throughput below memory bandwidth) becomes the
/// layer bottleneck, and each layer pays the engine's drain latency once.
pub fn run_model_with_verifier(
    npu: &NpuConfig,
    model: &Model,
    scheme: &mut dyn ProtectionScheme,
    verifier: Option<&seda_protect::HashEngine>,
) -> RunResult {
    let sim = simulate_model(npu, model);
    let dram_cfg = DramConfig::ddr4_with_bandwidth(npu.dram_channels, npu.dram_bandwidth);
    let mem_clock = dram_cfg.clock_hz;
    let mut dram = DramSim::new(dram_cfg);

    let mut layers = Vec::with_capacity(sim.layers.len());
    let mut total = 0u64;
    for layer in &sim.layers {
        let start = dram.elapsed_cycles();
        let mut requests = 0u64;
        for burst in &layer.bursts {
            scheme.transform(burst, &mut |r| {
                requests += 1;
                dram.access(r);
            });
        }
        let mem_cycles_mem_domain = dram.elapsed_cycles() - start;
        let memory_cycles =
            (mem_cycles_mem_domain as f64 / mem_clock * npu.clock_hz).ceil() as u64;
        let mut cycles = layer.compute_cycles.max(memory_cycles);
        if let Some(engine) = verifier {
            let verify_stream = engine.stream_cycles(requests * 64);
            cycles = cycles.max(verify_stream) + engine.layer_check_exposure();
        }
        total += cycles;
        layers.push(LayerTiming {
            name: layer.name.clone(),
            compute_cycles: layer.compute_cycles,
            memory_cycles,
            cycles,
        });
    }
    // Flush dirty metadata at end of inference; the drain is exposed time.
    let start = dram.elapsed_cycles();
    scheme.finish(&mut |r| {
        dram.access(r);
    });
    let drain = dram.elapsed_cycles() - start;
    total += (drain as f64 / mem_clock * npu.clock_hz).ceil() as u64;

    RunResult {
        model: model.name().to_owned(),
        npu: npu.name.clone(),
        scheme: scheme.name().to_owned(),
        layers,
        total_cycles: total,
        traffic: scheme.breakdown(),
        dram: *dram.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_models::zoo;
    use seda_protect::{BlockMacKind, BlockMacScheme, LayerMacStore, SedaScheme, Unprotected};

    #[test]
    fn protected_runs_are_never_faster() {
        let npu = NpuConfig::edge();
        let m = zoo::lenet();
        let base = run_model(&npu, &m, &mut Unprotected::new());
        let sgx = run_model(
            &npu,
            &m,
            &mut BlockMacScheme::new(BlockMacKind::Sgx, 64, 16 << 30),
        );
        assert!(sgx.total_cycles >= base.total_cycles);
        assert!(sgx.traffic.total() > base.traffic.total());
    }

    #[test]
    fn seda_overhead_is_tiny() {
        let npu = NpuConfig::edge();
        let m = zoo::alexnet();
        let base = run_model(&npu, &m, &mut Unprotected::new());
        let seda = run_model(
            &npu,
            &m,
            &mut SedaScheme::new(LayerMacStore::OffChip, 16 << 30),
        );
        let traffic_overhead =
            seda.traffic.total() as f64 / base.traffic.total() as f64 - 1.0;
        assert!(traffic_overhead < 0.005, "SeDA traffic +{traffic_overhead}");
        let perf_overhead = seda.total_cycles as f64 / base.total_cycles as f64 - 1.0;
        assert!(perf_overhead < 0.02, "SeDA perf +{perf_overhead}");
    }

    #[test]
    fn layer_count_matches_model() {
        let npu = NpuConfig::server();
        let m = zoo::lenet();
        let r = run_model(&npu, &m, &mut Unprotected::new());
        assert_eq!(r.layers.len(), m.layers().len());
        assert_eq!(
            r.total_cycles,
            r.layers.iter().map(|l| l.cycles).sum::<u64>()
        );
    }

    #[test]
    fn memory_and_compute_bound_layers_exist() {
        // AlexNet on edge: fc layers are memory-bound, convs compute-bound.
        let npu = NpuConfig::edge();
        let r = run_model(&npu, &zoo::alexnet(), &mut Unprotected::new());
        assert!(r.layers.iter().any(|l| l.memory_cycles > l.compute_cycles));
        assert!(r.layers.iter().any(|l| l.compute_cycles > l.memory_cycles));
    }
}

#[cfg(test)]
mod verifier_tests {
    use super::*;
    use seda_models::zoo;
    use seda_protect::{HashEngine, Unprotected};

    #[test]
    fn adequate_verifier_adds_only_drain_latency() {
        let npu = NpuConfig::edge();
        let m = zoo::lenet();
        let plain = run_model(&npu, &m, &mut Unprotected::new());
        let engine = HashEngine::default();
        let verified = run_model_with_verifier(&npu, &m, &mut Unprotected::new(), Some(&engine));
        let max_extra = m.layers().len() as u64 * engine.layer_check_exposure();
        assert!(verified.total_cycles >= plain.total_cycles);
        assert!(
            verified.total_cycles <= plain.total_cycles + max_extra,
            "a well-sized verifier must stay off the critical path"
        );
    }

    #[test]
    fn undersized_verifier_becomes_the_bottleneck() {
        let npu = NpuConfig::edge();
        let m = zoo::alexnet();
        let fast = HashEngine::new(32.0, 80);
        let slow = HashEngine::new(0.25, 80);
        let quick = run_model_with_verifier(&npu, &m, &mut Unprotected::new(), Some(&fast));
        let choked = run_model_with_verifier(&npu, &m, &mut Unprotected::new(), Some(&slow));
        assert!(
            choked.total_cycles > 2 * quick.total_cycles,
            "0.25 B/cycle must choke a 10 GB/s stream: {} vs {}",
            choked.total_cycles,
            quick.total_cycles
        );
    }
}

/// Runs `n` back-to-back inferences without resetting the scheme's
/// metadata caches or the DRAM bank state, exposing steady-state behaviour
/// (warm metadata caches, amortized flushes). Returns per-inference total
/// cycles.
pub fn run_model_repeated(
    npu: &NpuConfig,
    model: &Model,
    scheme: &mut dyn ProtectionScheme,
    n: u32,
) -> Vec<u64> {
    assert!(n > 0, "need at least one inference");
    let sim = simulate_model(npu, model);
    let dram_cfg = DramConfig::ddr4_with_bandwidth(npu.dram_channels, npu.dram_bandwidth);
    let mem_clock = dram_cfg.clock_hz;
    let mut dram = DramSim::new(dram_cfg);
    let mut totals = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let mut total = 0u64;
        for layer in &sim.layers {
            let start = dram.elapsed_cycles();
            for burst in &layer.bursts {
                scheme.transform(burst, &mut |r| {
                    dram.access(r);
                });
            }
            let mem = dram.elapsed_cycles() - start;
            let memory_cycles = (mem as f64 / mem_clock * npu.clock_hz).ceil() as u64;
            total += layer.compute_cycles.max(memory_cycles);
        }
        totals.push(total);
    }
    // Final drain charged to the last inference.
    let start = dram.elapsed_cycles();
    scheme.finish(&mut |r| {
        dram.access(r);
    });
    let drain = dram.elapsed_cycles() - start;
    if let Some(last) = totals.last_mut() {
        *last += (drain as f64 / mem_clock * npu.clock_hz).ceil() as u64;
    }
    totals
}

#[cfg(test)]
mod repeated_tests {
    use super::*;
    use seda_models::zoo;
    use seda_protect::{BlockMacKind, BlockMacScheme, Unprotected};

    #[test]
    fn steady_state_is_no_slower_than_cold_start() {
        let npu = NpuConfig::edge();
        let m = zoo::ncf();
        let mut sgx = BlockMacScheme::new(BlockMacKind::Sgx, 64, 16 << 30);
        let totals = run_model_repeated(&npu, &m, &mut sgx, 4);
        assert_eq!(totals.len(), 4);
        // The first inference runs with cold (empty) caches and defers its
        // dirty evictions; steady state pays those writebacks, so later
        // inferences are a few percent slower but must stabilize — not
        // grow without bound. (The last one also absorbs the final drain.)
        let growth = totals[2] as f64 / totals[1] as f64;
        assert!(
            (0.95..1.15).contains(&growth),
            "steady state must stabilize: {totals:?}"
        );
    }

    #[test]
    fn baseline_is_stable_across_inferences() {
        let npu = NpuConfig::edge();
        let m = zoo::lenet();
        let totals = run_model_repeated(&npu, &m, &mut Unprotected::new(), 3);
        assert_eq!(totals[1], totals[2], "no state to warm up: {totals:?}");
    }
}
