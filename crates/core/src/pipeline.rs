//! End-to-end secure-NPU pipeline: model → accelerator simulation →
//! protection-scheme trace transformation → DRAM timing.
//!
//! This is the evaluation flow of §IV-A: SCALE-Sim-style burst traces are
//! rewritten by a memory-protection scheme and replayed through the DRAM
//! simulator; per-layer runtime is the maximum of compute and memory time
//! under double buffering.
//!
//! All entry points funnel into one kernel, [`run_trace`], parameterized
//! by a [`RunSpec`]: single runs, verifier-modelled runs, and repeated
//! steady-state runs are the same loop with different spec fields. The
//! kernel consumes a pre-simulated trace (`&ModelSim`), so callers that
//! evaluate many schemes over the same (NPU, model) pair — the [`Sweep`]
//! engine, notably — share one simulation via
//! [`seda_scalesim::TraceCache`].
//!
//! [`Sweep`]: crate::sweep::Sweep

use crate::error::SedaError;
use seda_dram::{DramConfig, DramSim, DramStats};
use seda_models::Model;
use seda_protect::{HashEngine, ProtectionScheme, TrafficBreakdown};
use seda_scalesim::{simulate_model, ModelSim, NpuConfig};
use serde::{Deserialize, Serialize};

/// The DRAM configuration the pipeline derives for an accelerator:
/// DDR4 timing with the NPU's channel count and aggregate bandwidth.
///
/// Exposed so callers that need a perturbed memory system — the
/// golden-figure sensitivity self-tests, ablation sweeps — can start from
/// the exact configuration the default pipeline would use and hand the
/// modified copy to [`try_run_trace_with_dram`] or
/// [`Sweep::dram_map`](crate::sweep::Sweep::dram_map).
pub fn dram_config_for(npu: &NpuConfig) -> DramConfig {
    DramConfig::ddr4_with_bandwidth(npu.dram_channels, npu.dram_bandwidth)
}

/// A scheme-rewritten request stream lowered into one flat buffer with
/// per-layer slice boundaries.
///
/// Lowering runs every burst of a pre-simulated trace through
/// `scheme.transform` once and stores the emitted requests contiguously
/// in *packed* form ([`Request::pack`]: `(block << 1) | is_write`, 8 B
/// per request), so the stream can be replayed through
/// [`DramSim::run_batch_packed`] any number of times *without
/// regenerating it* — the replay benchmarks time the DRAM kernel in
/// isolation this way. Packing matters because both sides of the trace
/// are memory-bound at this scale: lowering writes, and every replay
/// reads, half the bytes a `Vec<Request>` would. The DRAM model is
/// block-granular, so no timing information is lost.
///
/// [`run_trace`] itself relowers per inference (reusing the allocation),
/// because schemes are stateful: metadata caches warm across inferences,
/// so the rewritten stream of inference *n + 1* differs from inference
/// *n*'s.
///
/// # Examples
///
/// ```
/// use seda::pipeline::LoweredTrace;
/// use seda_dram::Request;
/// use seda_models::zoo;
/// use seda_protect::Unprotected;
/// use seda_scalesim::{simulate_model, NpuConfig};
///
/// let npu = NpuConfig::edge();
/// let sim = simulate_model(&npu, &zoo::lenet());
/// let lowered = LoweredTrace::lower(&sim, &mut Unprotected::new());
/// assert_eq!(lowered.layers(), sim.layers.len());
/// assert!(!lowered.requests().is_empty());
/// // Each packed word unpacks to the original (block-aligned) request.
/// let first = Request::unpack(lowered.requests()[0]);
/// assert_eq!(first.addr % 64, 0);
/// ```
///
/// [`Request::pack`]: seda_dram::Request::pack
#[derive(Debug, Clone, Default)]
pub struct LoweredTrace {
    /// The packed request stream ([`Request::pack`] encoding).
    ///
    /// [`Request::pack`]: seda_dram::Request::pack
    packed: Vec<u64>,
    /// End index (exclusive) of each layer's slice in `packed`.
    layer_ends: Vec<usize>,
}

impl LoweredTrace {
    /// Lowers `sim`'s burst trace through `scheme` into a fresh buffer.
    pub fn lower(sim: &ModelSim, scheme: &mut dyn ProtectionScheme) -> Self {
        let mut lowered = Self::default();
        lowered.relower(sim, scheme);
        lowered
    }

    /// Re-lowers into the existing buffer, reusing its allocation. This
    /// is the per-inference path of [`run_trace`]: scheme state advances,
    /// but no per-request storage is reallocated.
    pub fn relower(&mut self, sim: &ModelSim, scheme: &mut dyn ProtectionScheme) {
        self.packed.clear();
        self.layer_ends.clear();
        for layer in &sim.layers {
            for burst in &layer.bursts {
                scheme.transform(burst, &mut |r| self.packed.push(r.pack()));
            }
            self.layer_ends.push(self.packed.len());
        }
    }

    /// Number of layers in the lowered trace.
    pub fn layers(&self) -> usize {
        self.layer_ends.len()
    }

    /// The packed requests of layer `i`, in issue order — the slice
    /// [`DramSim::run_batch_packed`] replays.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.layers()`.
    pub fn layer(&self, i: usize) -> &[u64] {
        let start = if i == 0 { 0 } else { self.layer_ends[i - 1] };
        &self.packed[start..self.layer_ends[i]]
    }

    /// The whole flat packed request stream, in issue order. Decode
    /// individual elements with [`Request::unpack`].
    ///
    /// [`Request::unpack`]: seda_dram::Request::unpack
    pub fn requests(&self) -> &[u64] {
        &self.packed
    }
}

/// Per-layer timing outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Layer name.
    pub name: String,
    /// Systolic-array compute cycles (accelerator clock).
    pub compute_cycles: u64,
    /// Memory cycles converted into the accelerator clock domain.
    pub memory_cycles: u64,
    /// Layer runtime: `max(compute, memory)` under double buffering.
    pub cycles: u64,
}

/// Result of running one inference of a model under one protection scheme.
/// `PartialEq` is bit-exact (the `f64` clock compares by value, never by
/// tolerance) — the checkpoint journal relies on it to prove resumed runs
/// replay identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Model name.
    pub model: String,
    /// NPU configuration name.
    pub npu: String,
    /// Accelerator clock the run was timed at, in Hz.
    pub clock_hz: f64,
    /// Protection scheme name.
    pub scheme: String,
    /// Per-layer timing.
    pub layers: Vec<LayerTiming>,
    /// Total runtime in accelerator cycles.
    pub total_cycles: u64,
    /// Traffic tally per category, cumulative over the scheme's lifetime
    /// up to (and including) this inference.
    pub traffic: TrafficBreakdown,
    /// DRAM access statistics, cumulative up to this inference.
    pub dram: DramStats,
}

impl RunResult {
    /// Runtime in seconds on the accelerator clock the run was timed at.
    pub fn seconds(&self) -> f64 {
        self.total_cycles as f64 / self.clock_hz
    }
}

/// Everything that defines one pipeline run except the scheme instance:
/// the workload, the accelerator, the optional integrity verifier, and
/// how many back-to-back inferences to model.
///
/// # Examples
///
/// ```
/// use seda::pipeline::{run_spec, RunSpec};
/// use seda_models::zoo;
/// use seda_protect::Unprotected;
/// use seda_scalesim::NpuConfig;
///
/// let npu = NpuConfig::edge();
/// let model = zoo::lenet();
/// let spec = RunSpec::new(&npu, &model).repeats(3);
/// let runs = run_spec(&spec, &mut Unprotected::new());
/// assert_eq!(runs.len(), 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RunSpec<'a> {
    /// Accelerator configuration.
    pub npu: &'a NpuConfig,
    /// Workload.
    pub model: &'a Model,
    /// Integrity-verification engine to model, if any.
    pub verifier: Option<HashEngine>,
    /// Number of back-to-back inferences (scheme metadata caches and DRAM
    /// bank state persist across them). Must be at least 1.
    pub repeats: u32,
}

impl<'a> RunSpec<'a> {
    /// A single-inference spec with no verifier.
    pub fn new(npu: &'a NpuConfig, model: &'a Model) -> Self {
        Self {
            npu,
            model,
            verifier: None,
            repeats: 1,
        }
    }

    /// Models the integrity-verification engine during each layer.
    pub fn verifier(mut self, engine: HashEngine) -> Self {
        self.verifier = Some(engine);
        self
    }

    /// Sets the number of back-to-back inferences.
    pub fn repeats(mut self, n: u32) -> Self {
        self.repeats = n;
        self
    }
}

/// Simulates the trace for `spec` and replays it through `scheme`.
///
/// Convenience wrapper over [`run_trace`] for one-off runs; sweep-style
/// callers should simulate once (or use a [`seda_scalesim::TraceCache`])
/// and call [`run_trace`] per scheme.
pub fn run_spec(spec: &RunSpec<'_>, scheme: &mut dyn ProtectionScheme) -> Vec<RunResult> {
    let sim = simulate_model(spec.npu, spec.model);
    run_trace(&sim, spec.npu, scheme, spec.verifier.as_ref(), spec.repeats)
}

/// The single simulation kernel behind every run entry point.
///
/// Replays `repeats` back-to-back inferences of a pre-simulated burst
/// trace through `scheme` and the DRAM simulator, returning one
/// [`RunResult`] per inference. Per layer, runtime is
/// `max(compute, memory)` under double buffering; with a `verifier`,
/// every fetched byte additionally streams through the hash engine, so an
/// undersized verifier (throughput below memory bandwidth) becomes the
/// layer bottleneck and each layer pays the engine's drain latency once.
/// Scheme metadata caches and DRAM bank state persist across inferences
/// (steady-state behaviour); the final metadata flush is charged to the
/// last inference.
///
/// # Examples
///
/// ```
/// use seda::pipeline::run_trace;
/// use seda_models::zoo;
/// use seda_protect::Unprotected;
/// use seda_scalesim::{simulate_model, NpuConfig};
///
/// let npu = NpuConfig::edge();
/// let sim = simulate_model(&npu, &zoo::lenet());
/// // One simulation, many replays: each scheme reuses `sim`.
/// let runs = run_trace(&sim, &npu, &mut Unprotected::new(), None, 2);
/// assert_eq!(runs.len(), 2);
/// assert!(runs[0].total_cycles > 0);
/// ```
///
/// # Panics
///
/// Panics when `repeats == 0`; use [`try_run_trace`] for a typed error.
pub fn run_trace(
    sim: &ModelSim,
    npu: &NpuConfig,
    scheme: &mut dyn ProtectionScheme,
    verifier: Option<&HashEngine>,
    repeats: u32,
) -> Vec<RunResult> {
    // Invariant: the only failure mode of the kernel is `repeats == 0`,
    // asserted here so existing callers keep their panic contract.
    assert!(repeats > 0, "need at least one inference");
    #[allow(clippy::expect_used)]
    let results = try_run_trace(sim, npu, scheme, verifier, repeats).expect("repeats > 0");
    results
}

/// Fallible form of [`run_trace`]: a malformed spec surfaces as
/// [`SedaError::InvalidSpec`] instead of a panic. The sweep engine and the
/// adversary harness use this form so that a bad point degrades into a
/// captured error rather than tearing down the whole evaluation.
///
/// # Errors
///
/// Returns [`SedaError::InvalidSpec`] when `repeats == 0`.
pub fn try_run_trace(
    sim: &ModelSim,
    npu: &NpuConfig,
    scheme: &mut dyn ProtectionScheme,
    verifier: Option<&HashEngine>,
    repeats: u32,
) -> Result<Vec<RunResult>, SedaError> {
    try_run_trace_with_dram(sim, npu, scheme, verifier, repeats, dram_config_for(npu))
}

/// [`try_run_trace`] with an explicit DRAM configuration instead of the
/// one [`dram_config_for`] derives from the NPU.
///
/// This is the injection point for memory-system ablations: the
/// golden-figure suite replays the pinned workloads with a one-cycle
/// burst-length (and refresh-window) perturbation to prove the fixtures
/// actually pin the DRAM timing path.
///
/// # Errors
///
/// Returns [`SedaError::InvalidSpec`] when `repeats == 0`.
pub fn try_run_trace_with_dram(
    sim: &ModelSim,
    npu: &NpuConfig,
    scheme: &mut dyn ProtectionScheme,
    verifier: Option<&HashEngine>,
    repeats: u32,
    dram_cfg: DramConfig,
) -> Result<Vec<RunResult>, SedaError> {
    try_run_trace_with_dram_sim(sim, npu, scheme, verifier, repeats, DramSim::new(dram_cfg))
}

/// [`try_run_trace_with_dram`] with a fully constructed simulator instead
/// of a configuration — the injection point for simulator-level knobs that
/// are not part of [`DramConfig`], such as the batched replay's worker cap
/// ([`DramSim::set_replay_threads`], which
/// [`Sweep::dram_replay_threads`](crate::sweep::Sweep::dram_replay_threads)
/// threads through here). The simulator should be freshly constructed;
/// pre-existing bank or clock state would be charged to this run.
///
/// # Errors
///
/// Returns [`SedaError::InvalidSpec`] when `repeats == 0`.
pub fn try_run_trace_with_dram_sim(
    sim: &ModelSim,
    npu: &NpuConfig,
    scheme: &mut dyn ProtectionScheme,
    verifier: Option<&HashEngine>,
    repeats: u32,
    mut dram: DramSim,
) -> Result<Vec<RunResult>, SedaError> {
    if repeats == 0 {
        return Err(SedaError::InvalidSpec {
            reason: "need at least one inference (repeats == 0)".to_owned(),
        });
    }
    let mem_clock = dram.config().clock_hz;

    // One flat request buffer for the whole run: each inference lowers
    // the scheme-rewritten stream into it (schemes are stateful, so the
    // stream must be regenerated per inference — see [`LoweredTrace`]),
    // then replays layer slices through the batched DRAM kernel.
    let mut lowered = LoweredTrace::default();
    let mut results = Vec::with_capacity(repeats as usize);
    for _ in 0..repeats {
        lowered.relower(sim, scheme);
        let mut layers = Vec::with_capacity(sim.layers.len());
        let mut total = 0u64;
        for (li, layer) in sim.layers.iter().enumerate() {
            let start = dram.elapsed_cycles();
            let slice = lowered.layer(li);
            let requests = slice.len() as u64;
            dram.run_batch_packed(slice);
            let mem_cycles_mem_domain = dram.elapsed_cycles() - start;
            let memory_cycles =
                (mem_cycles_mem_domain as f64 / mem_clock * npu.clock_hz).ceil() as u64;
            let mut cycles = layer.compute_cycles.max(memory_cycles);
            if let Some(engine) = verifier {
                let verify_stream = engine.stream_cycles(requests * 64);
                cycles = cycles.max(verify_stream) + engine.layer_check_exposure();
            }
            total += cycles;
            seda_telemetry::record("pipeline.layer_cycles", cycles);
            layers.push(LayerTiming {
                name: layer.name.clone(),
                compute_cycles: layer.compute_cycles,
                memory_cycles,
                cycles,
            });
        }
        seda_telemetry::counter_add("pipeline.inferences", 1);
        results.push(RunResult {
            model: sim.model.clone(),
            npu: npu.name.clone(),
            clock_hz: npu.clock_hz,
            scheme: scheme.name().to_owned(),
            layers,
            total_cycles: total,
            traffic: scheme.breakdown(),
            dram: *dram.stats(),
        });
    }

    // Flush dirty metadata at end of the run; the drain is exposed time,
    // charged to the last inference.
    let start = dram.elapsed_cycles();
    let mut flush = Vec::new();
    scheme.finish(&mut |r| flush.push(r));
    dram.run_batch(&flush);
    let drain = dram.elapsed_cycles() - start;
    // Invariant: `repeats > 0` was checked at entry, so at least one
    // result exists.
    #[allow(clippy::expect_used)]
    let last = results.last_mut().expect("repeats > 0");
    last.total_cycles += (drain as f64 / mem_clock * npu.clock_hz).ceil() as u64;
    last.traffic = scheme.breakdown();
    last.dram = *dram.stats();
    // One flush per run keeps the per-access DRAM loop free of telemetry
    // dispatch; the counters still sum correctly across runs and sweeps.
    dram.emit_telemetry();

    Ok(results)
}

/// Runs `model` on `npu` under `scheme` and reports traffic and runtime.
///
/// # Examples
///
/// ```
/// use seda::pipeline::run_model;
/// use seda_models::zoo;
/// use seda_protect::Unprotected;
/// use seda_scalesim::NpuConfig;
///
/// let r = run_model(&NpuConfig::edge(), &zoo::lenet(), &mut Unprotected::new());
/// assert!(r.total_cycles > 0);
/// ```
pub fn run_model(npu: &NpuConfig, model: &Model, scheme: &mut dyn ProtectionScheme) -> RunResult {
    run_model_with_verifier(npu, model, scheme, None)
}

/// Like [`run_model`], additionally modelling the integrity-verification
/// engine: every fetched byte streams through the hash engine, so an
/// undersized verifier (throughput below memory bandwidth) becomes the
/// layer bottleneck, and each layer pays the engine's drain latency once.
pub fn run_model_with_verifier(
    npu: &NpuConfig,
    model: &Model,
    scheme: &mut dyn ProtectionScheme,
    verifier: Option<&HashEngine>,
) -> RunResult {
    let mut spec = RunSpec::new(npu, model);
    spec.verifier = verifier.copied();
    // Invariant: the kernel returns exactly `repeats` results and the
    // spec above fixes `repeats = 1`.
    #[allow(clippy::expect_used)]
    let result = run_spec(&spec, scheme)
        .pop()
        .expect("kernel returns one result per inference");
    result
}

/// Runs `n` back-to-back inferences without resetting the scheme's
/// metadata caches or the DRAM bank state, exposing steady-state behaviour
/// (warm metadata caches, amortized flushes). Returns per-inference total
/// cycles; pass a `verifier` to model the integrity engine throughout.
pub fn run_model_repeated(
    npu: &NpuConfig,
    model: &Model,
    scheme: &mut dyn ProtectionScheme,
    n: u32,
) -> Vec<u64> {
    run_model_repeated_with_verifier(npu, model, scheme, None, n)
}

/// [`run_model_repeated`] with the integrity-verification engine modelled
/// on every inference — steady-state and verifier analysis combined,
/// which the pre-unification pipeline could not express.
pub fn run_model_repeated_with_verifier(
    npu: &NpuConfig,
    model: &Model,
    scheme: &mut dyn ProtectionScheme,
    verifier: Option<&HashEngine>,
    n: u32,
) -> Vec<u64> {
    let mut spec = RunSpec::new(npu, model).repeats(n);
    spec.verifier = verifier.copied();
    run_spec(&spec, scheme)
        .into_iter()
        .map(|r| r.total_cycles)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_models::zoo;
    use seda_protect::{BlockMacKind, BlockMacScheme, LayerMacStore, SedaScheme, Unprotected};

    #[test]
    fn protected_runs_are_never_faster() {
        let npu = NpuConfig::edge();
        let m = zoo::lenet();
        let base = run_model(&npu, &m, &mut Unprotected::new());
        let sgx = run_model(
            &npu,
            &m,
            &mut BlockMacScheme::new(BlockMacKind::Sgx, 64, 16 << 30),
        );
        assert!(sgx.total_cycles >= base.total_cycles);
        assert!(sgx.traffic.total() > base.traffic.total());
    }

    #[test]
    fn seda_overhead_is_tiny() {
        let npu = NpuConfig::edge();
        let m = zoo::alexnet();
        let base = run_model(&npu, &m, &mut Unprotected::new());
        let seda = run_model(
            &npu,
            &m,
            &mut SedaScheme::new(LayerMacStore::OffChip, 16 << 30),
        );
        let traffic_overhead = seda.traffic.total() as f64 / base.traffic.total() as f64 - 1.0;
        assert!(traffic_overhead < 0.005, "SeDA traffic +{traffic_overhead}");
        let perf_overhead = seda.total_cycles as f64 / base.total_cycles as f64 - 1.0;
        assert!(perf_overhead < 0.02, "SeDA perf +{perf_overhead}");
    }

    #[test]
    fn layer_count_matches_model() {
        let npu = NpuConfig::server();
        let m = zoo::lenet();
        let r = run_model(&npu, &m, &mut Unprotected::new());
        assert_eq!(r.layers.len(), m.layers().len());
        assert_eq!(
            r.total_cycles,
            r.layers.iter().map(|l| l.cycles).sum::<u64>()
        );
    }

    #[test]
    fn memory_and_compute_bound_layers_exist() {
        // AlexNet on edge: fc layers are memory-bound, convs compute-bound.
        let npu = NpuConfig::edge();
        let r = run_model(&npu, &zoo::alexnet(), &mut Unprotected::new());
        assert!(r.layers.iter().any(|l| l.memory_cycles > l.compute_cycles));
        assert!(r.layers.iter().any(|l| l.compute_cycles > l.memory_cycles));
    }

    #[test]
    fn seconds_uses_recorded_clock() {
        let npu = NpuConfig::edge();
        let r = run_model(&npu, &zoo::lenet(), &mut Unprotected::new());
        assert_eq!(r.clock_hz, npu.clock_hz);
        let expect = r.total_cycles as f64 / npu.clock_hz;
        assert!((r.seconds() - expect).abs() < 1e-15);
    }

    #[test]
    fn zero_repeats_is_a_typed_error() {
        let npu = NpuConfig::edge();
        let m = zoo::lenet();
        let sim = simulate_model(&npu, &m);
        let err = try_run_trace(&sim, &npu, &mut Unprotected::new(), None, 0)
            .expect_err("zero repeats is malformed");
        assert!(matches!(err, SedaError::InvalidSpec { .. }));
        assert!(err.to_string().contains("repeats"));
    }

    #[test]
    fn lowered_trace_slices_partition_the_stream() {
        let npu = NpuConfig::edge();
        let sim = simulate_model(&npu, &zoo::lenet());
        let lowered = LoweredTrace::lower(&sim, &mut Unprotected::new());
        assert_eq!(lowered.layers(), sim.layers.len());
        let total: usize = (0..lowered.layers()).map(|i| lowered.layer(i).len()).sum();
        assert_eq!(total, lowered.requests().len());
        // Slices are contiguous and in issue order.
        let flat: Vec<_> = (0..lowered.layers())
            .flat_map(|i| lowered.layer(i).iter().copied())
            .collect();
        assert_eq!(flat, lowered.requests());
    }

    #[test]
    fn relowering_a_stateless_scheme_is_idempotent() {
        let npu = NpuConfig::edge();
        let sim = simulate_model(&npu, &zoo::lenet());
        let mut scheme = Unprotected::new();
        let mut lowered = LoweredTrace::lower(&sim, &mut scheme);
        let first = lowered.requests().to_vec();
        lowered.relower(&sim, &mut scheme);
        assert_eq!(lowered.requests(), first);
    }

    #[test]
    fn explicit_default_dram_config_matches_derived() {
        let npu = NpuConfig::edge();
        let m = zoo::lenet();
        let sim = simulate_model(&npu, &m);
        let implicit = try_run_trace(&sim, &npu, &mut Unprotected::new(), None, 2).unwrap();
        let explicit = try_run_trace_with_dram(
            &sim,
            &npu,
            &mut Unprotected::new(),
            None,
            2,
            dram_config_for(&npu),
        )
        .unwrap();
        let cycles = |rs: &[RunResult]| rs.iter().map(|r| r.total_cycles).collect::<Vec<_>>();
        assert_eq!(cycles(&implicit), cycles(&explicit));
        assert_eq!(implicit.last().unwrap().dram, explicit.last().unwrap().dram);
    }

    #[test]
    fn one_cycle_dram_perturbation_changes_the_run() {
        let npu = NpuConfig::edge();
        let m = zoo::lenet();
        let sim = simulate_model(&npu, &m);
        let base = try_run_trace(&sim, &npu, &mut Unprotected::new(), None, 1).unwrap();
        let mut cfg = dram_config_for(&npu);
        cfg.t_bl += 1;
        let slower =
            try_run_trace_with_dram(&sim, &npu, &mut Unprotected::new(), None, 1, cfg).unwrap();
        assert!(
            slower[0].total_cycles > base[0].total_cycles,
            "a longer burst must slow the memory-bound layers"
        );
    }

    #[test]
    fn run_trace_shares_a_simulation_across_schemes() {
        let npu = NpuConfig::edge();
        let m = zoo::lenet();
        let sim = simulate_model(&npu, &m);
        let direct = run_model(&npu, &m, &mut Unprotected::new());
        let traced = run_trace(&sim, &npu, &mut Unprotected::new(), None, 1)
            .pop()
            .unwrap();
        assert_eq!(direct.total_cycles, traced.total_cycles);
        assert_eq!(direct.traffic.total(), traced.traffic.total());
    }
}

#[cfg(test)]
mod verifier_tests {
    use super::*;
    use seda_models::zoo;
    use seda_protect::{BlockMacKind, BlockMacScheme, HashEngine, Unprotected};

    #[test]
    fn adequate_verifier_adds_only_drain_latency() {
        let npu = NpuConfig::edge();
        let m = zoo::lenet();
        let plain = run_model(&npu, &m, &mut Unprotected::new());
        let engine = HashEngine::default();
        let verified = run_model_with_verifier(&npu, &m, &mut Unprotected::new(), Some(&engine));
        let max_extra = m.layers().len() as u64 * engine.layer_check_exposure();
        assert!(verified.total_cycles >= plain.total_cycles);
        assert!(
            verified.total_cycles <= plain.total_cycles + max_extra,
            "a well-sized verifier must stay off the critical path"
        );
    }

    #[test]
    fn undersized_verifier_becomes_the_bottleneck() {
        let npu = NpuConfig::edge();
        let m = zoo::alexnet();
        let fast = HashEngine::new(32.0, 80);
        let slow = HashEngine::new(0.25, 80);
        let quick = run_model_with_verifier(&npu, &m, &mut Unprotected::new(), Some(&fast));
        let choked = run_model_with_verifier(&npu, &m, &mut Unprotected::new(), Some(&slow));
        assert!(
            choked.total_cycles > 2 * quick.total_cycles,
            "0.25 B/cycle must choke a 10 GB/s stream: {} vs {}",
            choked.total_cycles,
            quick.total_cycles
        );
    }

    #[test]
    fn repeated_runs_accept_a_verifier() {
        // The pre-unification pipeline could not model a verifier during
        // steady-state runs; the unified kernel must.
        let npu = NpuConfig::edge();
        let m = zoo::lenet();
        let engine = HashEngine::new(0.25, 80);
        let mut sgx = BlockMacScheme::new(BlockMacKind::Sgx, 64, 16 << 30);
        let choked = run_model_repeated_with_verifier(&npu, &m, &mut sgx, Some(&engine), 3);
        let mut sgx2 = BlockMacScheme::new(BlockMacKind::Sgx, 64, 16 << 30);
        let plain = run_model_repeated(&npu, &m, &mut sgx2, 3);
        assert_eq!(choked.len(), 3);
        for (c, p) in choked.iter().zip(&plain) {
            assert!(c > p, "verifier must slow every inference: {c} vs {p}");
        }
    }
}

#[cfg(test)]
mod repeated_tests {
    use super::*;
    use seda_models::zoo;
    use seda_protect::{BlockMacKind, BlockMacScheme, Unprotected};

    #[test]
    fn steady_state_is_no_slower_than_cold_start() {
        let npu = NpuConfig::edge();
        let m = zoo::ncf();
        let mut sgx = BlockMacScheme::new(BlockMacKind::Sgx, 64, 16 << 30);
        let totals = run_model_repeated(&npu, &m, &mut sgx, 4);
        assert_eq!(totals.len(), 4);
        // The first inference runs with cold (empty) caches and defers its
        // dirty evictions; steady state pays those writebacks, so later
        // inferences are a few percent slower but must stabilize — not
        // grow without bound. (The last one also absorbs the final drain.)
        let growth = totals[2] as f64 / totals[1] as f64;
        assert!(
            (0.95..1.15).contains(&growth),
            "steady state must stabilize: {totals:?}"
        );
    }

    #[test]
    fn baseline_is_stable_across_inferences() {
        let npu = NpuConfig::edge();
        let m = zoo::lenet();
        let totals = run_model_repeated(&npu, &m, &mut Unprotected::new(), 3);
        assert_eq!(totals[1], totals[2], "no state to warm up: {totals:?}");
    }

    #[test]
    fn repeated_first_inference_matches_single_run() {
        // One kernel for all entry points: the first of n inferences must
        // be bit-identical to a standalone run (before the final drain).
        let npu = NpuConfig::edge();
        let m = zoo::lenet();
        let totals = run_model_repeated(
            &npu,
            &m,
            &mut BlockMacScheme::new(BlockMacKind::Sgx, 64, 16 << 30),
            3,
        );
        let spec = RunSpec::new(&npu, &m).repeats(3);
        let runs = run_spec(
            &spec,
            &mut BlockMacScheme::new(BlockMacKind::Sgx, 64, 16 << 30),
        );
        assert_eq!(
            totals,
            runs.iter().map(|r| r.total_cycles).collect::<Vec<_>>()
        );
    }
}
