//! Production failure semantics for sweep and scenario execution.
//!
//! One bad point must never kill a thousand-point run. This module holds
//! the policy and reporting vocabulary the [`Sweep`](crate::sweep::Sweep)
//! engine executes under:
//!
//! * [`FailurePolicy`] — what happens when a point fails: abort the run
//!   (`fail-fast`), degrade to a partial result (`skip`), or retry with a
//!   deterministic, jitter-free exponential backoff *account* (the
//!   schedule is recorded, never slept with randomness, so a retried run
//!   replays bit-identically).
//! * [`PointContext`] / [`FaultHook`] — the injection surface the chaos
//!   harness (`seda-adversary`) uses to plant deterministic transient
//!   faults at the start of each attempt.
//! * [`PointReport`] / [`FailureReport`] — per-attempt accounting and a
//!   structured digest of *every* failed point with its full `source()`
//!   chain, not just the first.
//! * [`JournalWriter`] / [`load_journal`] — the `seda-checkpoint/v1`
//!   line-oriented JSON journal: completed points stream to disk as they
//!   finish, and a resumed run replays them bit-identically without
//!   re-executing (`seda_cli scenario run --resume <journal>`).
//!
//! # Determinism guarantees
//!
//! A point's result is a pure function of its (NPU, model, scheme, DRAM
//! config, repeat count) tuple — never of the attempt index, wall-clock
//! time, or thread interleaving. Three consequences the `resilience`
//! validation family asserts:
//!
//! 1. A retried run (transient faults, then success) is bit-identical to
//!    a clean run.
//! 2. A killed-then-resumed run (journal replay + fresh execution of the
//!    remainder) is bit-identical to a clean run.
//! 3. Backoff is accounting only: `base << (attempt - 1)` milliseconds,
//!    no jitter, no sleeping, so failure reports replay exactly.

use crate::error::SedaError;
use crate::pipeline::RunResult;
use crate::scenario::ScenarioError;
use serde::{Deserialize, Serialize, Value};
use std::error::Error as StdError;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Schema tag on the first line of every checkpoint journal. Bump only
/// with a compatibility shim: `--resume` must keep reading old journals.
pub const CHECKPOINT_SCHEMA: &str = "seda-checkpoint/v1";

/// What the sweep engine does when a point fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Stop claiming new points after the first failure; unexecuted
    /// points surface as [`SedaError::PointCancelled`]. (Points already
    /// in flight on other workers still finish — cancellation is
    /// cooperative, so the exact cancelled set is only deterministic
    /// under serial execution.)
    FailFast,
    /// Record the failure and keep going; the run degrades to a partial
    /// result carrying a [`FailureReport`].
    Skip,
    /// Re-run a failed point up to `max_attempts` times total, with a
    /// deterministic jitter-free backoff *account* of
    /// `base_backoff_ms << (attempt - 1)` between attempts. The backoff
    /// is recorded in the [`PointReport`], not slept: sweep points are
    /// compute-bound and deterministic, so waiting adds latency without
    /// changing the outcome, and recording keeps replays bit-identical.
    Retry {
        /// Total attempts per point (first try included); clamped to ≥ 1.
        max_attempts: u32,
        /// Base of the exponential backoff account, in milliseconds.
        base_backoff_ms: u64,
    },
}

impl Default for FailurePolicy {
    /// `Skip`: the engine-level default degrades rather than aborts.
    /// (Scenarios default to `FailFast` at their level, preserving the
    /// historical all-or-nothing CLI contract.)
    fn default() -> Self {
        FailurePolicy::Skip
    }
}

impl FailurePolicy {
    /// Total attempts a point may consume under this policy.
    pub fn max_attempts(&self) -> u32 {
        match self {
            FailurePolicy::Retry { max_attempts, .. } => (*max_attempts).max(1),
            _ => 1,
        }
    }

    /// Deterministic backoff accounted *after* a failed `attempt`
    /// (1-based), in milliseconds. Zero for non-retry policies and after
    /// the final attempt.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        match self {
            FailurePolicy::Retry {
                max_attempts,
                base_backoff_ms,
            } => {
                if attempt >= (*max_attempts).max(1) {
                    0
                } else {
                    // Clamp the shift so a large attempt count saturates
                    // instead of overflowing.
                    base_backoff_ms.saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
                }
            }
            _ => 0,
        }
    }
}

/// Backoff base used when a scenario's `{"retry": ...}` block omits
/// `base_backoff_ms`.
pub const DEFAULT_BASE_BACKOFF_MS: u64 = 100;

// Scenario JSON spelling: `"fail-fast"` | `"skip"` |
// `{"retry": {"max_attempts": N, "base_backoff_ms": M}}`. Mixed
// string/object JSON is outside what the vendored derive emits, so the
// impls are hand-written against the Value tree (same pattern as the
// scenario module's `WorkloadSpec`).
impl Serialize for FailurePolicy {
    fn to_value(&self) -> Value {
        match self {
            FailurePolicy::FailFast => Value::String("fail-fast".to_owned()),
            FailurePolicy::Skip => Value::String("skip".to_owned()),
            FailurePolicy::Retry {
                max_attempts,
                base_backoff_ms,
            } => {
                let mut inner = serde::Map::new();
                inner.insert("max_attempts", max_attempts.to_value());
                inner.insert("base_backoff_ms", base_backoff_ms.to_value());
                let mut outer = serde::Map::new();
                outer.insert("retry", Value::Object(inner));
                Value::Object(outer)
            }
        }
    }
}

impl Deserialize for FailurePolicy {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::String(s) => match s.as_str() {
                "fail-fast" => Ok(FailurePolicy::FailFast),
                "skip" => Ok(FailurePolicy::Skip),
                other => Err(serde::Error::custom(format!(
                    "on_failure must be \"fail-fast\", \"skip\", or \
                     {{\"retry\": ...}}, found {other:?}"
                ))),
            },
            Value::Object(m) => {
                let inner = m.get("retry").and_then(Value::as_object).ok_or_else(|| {
                    serde::Error::custom(
                        "on_failure object must be {\"retry\": {\"max_attempts\": ..}}",
                    )
                })?;
                let max_attempts: u32 = serde::de_field(inner, "max_attempts")?;
                let base_backoff_ms: Option<u64> = serde::de_field(inner, "base_backoff_ms")?;
                Ok(FailurePolicy::Retry {
                    max_attempts,
                    base_backoff_ms: base_backoff_ms.unwrap_or(DEFAULT_BASE_BACKOFF_MS),
                })
            }
            other => Err(serde::Error::custom(format!(
                "on_failure must be a policy name or a retry object, found {other:?}"
            ))),
        }
    }
}

/// Identity of one sweep-point attempt, handed to a [`FaultHook`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointContext {
    /// Flat point index in npu-major → model → scheme order.
    pub index: usize,
    /// 1-based attempt number under the active [`FailurePolicy`].
    pub attempt: u32,
    /// NPU label of the point.
    pub npu: String,
    /// Model label of the point.
    pub model: String,
    /// Scheme label of the point.
    pub scheme: String,
}

impl PointContext {
    /// `npu/model/scheme` label used in errors and reports.
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.npu, self.model, self.scheme)
    }
}

/// Fault-injection surface: called at the start of every point attempt,
/// *inside* the point's panic isolation. Returning an error fails the
/// attempt with that error; panicking fails it as
/// [`SedaError::PointPanicked`]; sleeping past the watchdog budget fails
/// it as [`SedaError::PointTimedOut`]. The chaos harness in
/// `seda-adversary` builds these from seeded fault plans.
pub type FaultHook = Arc<dyn Fn(&PointContext) -> Result<(), SedaError> + Send + Sync>;

/// Streaming sink for completed points (checkpoint journaling): called
/// with the flat point index and its runs as each point succeeds.
pub type PointSink = Box<dyn Fn(usize, &[RunResult]) + Send + Sync>;

/// Accounting for one attempt of one point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: u32,
    /// The failure rendered as a string, or `None` if this attempt
    /// succeeded.
    pub error: Option<String>,
    /// Deterministic backoff accounted after this attempt, ms.
    pub backoff_ms: u64,
}

/// Execution record of one sweep point under the active policy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PointReport {
    /// One record per attempt, in attempt order. Empty only for points
    /// replayed from a journal or cancelled before starting.
    pub attempts: Vec<AttemptRecord>,
    /// The point was replayed from a checkpoint journal, not executed.
    pub resumed: bool,
    /// The point was never started because fail-fast aborted the run.
    pub cancelled: bool,
}

impl PointReport {
    /// Number of attempts actually executed.
    pub fn attempts_made(&self) -> u32 {
        self.attempts.len() as u32
    }

    /// Sum of the deterministic backoff account across attempts, ms.
    pub fn total_backoff_ms(&self) -> u64 {
        self.attempts.iter().map(|a| a.backoff_ms).sum()
    }
}

/// One failed point with its labels, attempt count, and final error.
#[derive(Debug, Clone, PartialEq)]
pub struct PointFailure {
    /// NPU label.
    pub npu: String,
    /// Model label.
    pub model: String,
    /// Scheme label.
    pub scheme: String,
    /// Attempts consumed before giving up (0 for cancelled points).
    pub attempts: u32,
    /// The error that poisoned the final attempt.
    pub error: SedaError,
}

impl PointFailure {
    /// `npu/model/scheme` label of the failed point.
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.npu, self.model, self.scheme)
    }
}

/// Every failed point of a run, in deterministic cross-product order.
///
/// This is the structured form the old first-failure-only error path
/// threw away: partial [`ScenarioRun`](crate::scenario::ScenarioRun)s
/// carry it, [`SedaError::ScenarioPointFailed`] wraps it, and
/// [`render`](Self::render) walks each failure's full `source()` chain.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FailureReport {
    /// All failed points, ordered by flat point index.
    pub failures: Vec<PointFailure>,
}

impl FailureReport {
    /// No point failed.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of failed points.
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// The first failure in deterministic order, if any.
    pub fn first(&self) -> Option<&PointFailure> {
        self.failures.first()
    }

    /// Multi-line human rendering: one block per failed point, with the
    /// error's full `source()` chain indented beneath it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.failures {
            out.push_str(&format!(
                "  {} failed after {} attempt{}: {}\n",
                f.label(),
                f.attempts,
                if f.attempts == 1 { "" } else { "s" },
                f.error
            ));
            let mut source = f.error.source();
            while let Some(cause) = source {
                out.push_str(&format!("    caused by: {cause}\n"));
                source = cause.source();
            }
        }
        out
    }
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// First line of a checkpoint journal: schema tag plus the sweep axes,
/// so `--resume` refuses a journal recorded for a different run shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Always [`CHECKPOINT_SCHEMA`].
    pub schema: String,
    /// Name of the scenario (or ad-hoc sweep) that produced the journal.
    pub scenario: String,
    /// Total point count of the sweep.
    pub points: usize,
    /// NPU labels in sweep order.
    pub npus: Vec<String>,
    /// Model labels in sweep order.
    pub models: Vec<String>,
    /// Scheme labels in sweep order.
    pub schemes: Vec<String>,
}

/// One journal body line: a completed point and its runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct JournalEntry {
    point: usize,
    runs: Vec<RunResult>,
}

/// A parsed checkpoint journal: the header plus an index-aligned vector
/// with `Some(runs)` for every completed point.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalContents {
    /// The validated header line.
    pub header: JournalHeader,
    /// One slot per sweep point; `Some` where the journal has runs.
    pub points: Vec<Option<Vec<RunResult>>>,
}

impl JournalContents {
    /// Number of points the journal can replay.
    pub fn completed(&self) -> usize {
        self.points.iter().filter(|p| p.is_some()).count()
    }
}

fn checkpoint_err(reason: String) -> SedaError {
    SedaError::Scenario(ScenarioError::Checkpoint { reason })
}

/// Append-only, crash-tolerant writer for the `seda-checkpoint/v1`
/// journal. One JSON object per line, flushed per point, so a killed run
/// loses at most the line being written — and [`load_journal`] tolerates
/// that torn tail.
///
/// Write errors are latched rather than panicking mid-sweep; callers
/// surface them through [`finish`](Self::finish).
pub struct JournalWriter {
    file: Mutex<File>,
    error: Mutex<Option<String>>,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path` and writes the header.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, SedaError> {
        let mut file = File::create(path).map_err(|e| {
            checkpoint_err(format!("cannot create journal {}: {e}", path.display()))
        })?;
        let line = serde_json::to_string(header)
            .map_err(|e| checkpoint_err(format!("cannot encode journal header: {e}")))?;
        writeln!(file, "{line}")
            .and_then(|()| file.flush())
            .map_err(|e| checkpoint_err(format!("cannot write journal header: {e}")))?;
        Ok(Self {
            file: Mutex::new(file),
            error: Mutex::new(None),
        })
    }

    /// Opens an existing journal for appending (resume continuation);
    /// the header written by the original run stays in place.
    pub fn append(path: &Path) -> Result<Self, SedaError> {
        let file = OpenOptions::new().append(true).open(path).map_err(|e| {
            checkpoint_err(format!("cannot append journal {}: {e}", path.display()))
        })?;
        Ok(Self {
            file: Mutex::new(file),
            error: Mutex::new(None),
        })
    }

    /// Records one completed point. Infallible by design (usable as a
    /// [`PointSink`] from worker threads); failures latch into
    /// [`finish`](Self::finish).
    pub fn record(&self, point: usize, runs: &[RunResult]) {
        let entry = JournalEntry {
            point,
            runs: runs.to_vec(),
        };
        let outcome = serde_json::to_string(&entry)
            .map_err(|e| format!("cannot encode journal entry: {e}"))
            .and_then(|line| {
                let mut file = match self.file.lock() {
                    Ok(f) => f,
                    Err(poisoned) => poisoned.into_inner(),
                };
                writeln!(file, "{line}")
                    .and_then(|()| file.flush())
                    .map_err(|e| format!("cannot write journal entry: {e}"))
            });
        if let Err(e) = outcome {
            let mut slot = match self.error.lock() {
                Ok(s) => s,
                Err(poisoned) => poisoned.into_inner(),
            };
            slot.get_or_insert(e);
        }
    }

    /// Surfaces the first latched write error, if any. Call after the
    /// sweep completes: a journal that silently dropped points would
    /// resume incorrectly.
    pub fn finish(&self) -> Result<(), SedaError> {
        let slot = match self.error.lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        match slot.as_ref() {
            Some(e) => Err(checkpoint_err(e.clone())),
            None => Ok(()),
        }
    }
}

/// Loads and validates a `seda-checkpoint/v1` journal.
///
/// Duplicate entries for a point keep the last one; a torn final line
/// (the run was killed mid-write) is ignored, everything before it
/// replays. Out-of-range point indices and schema mismatches are hard
/// errors: the journal does not describe this sweep.
///
/// # Errors
///
/// Returns [`ScenarioError::Checkpoint`] (wrapped in
/// [`SedaError::Scenario`]) for I/O failures, a bad or missing header,
/// or entries outside the header's point range.
pub fn load_journal(path: &Path) -> Result<JournalContents, SedaError> {
    let file = File::open(path)
        .map_err(|e| checkpoint_err(format!("cannot open journal {}: {e}", path.display())))?;
    let mut lines = BufReader::new(file).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| checkpoint_err(format!("journal {} is empty", path.display())))?
        .map_err(|e| checkpoint_err(format!("cannot read journal {}: {e}", path.display())))?;
    let header: JournalHeader = serde_json::from_str(&header_line)
        .map_err(|e| checkpoint_err(format!("bad journal header: {e}")))?;
    if header.schema != CHECKPOINT_SCHEMA {
        return Err(checkpoint_err(format!(
            "journal schema {:?} is not {CHECKPOINT_SCHEMA:?}",
            header.schema
        )));
    }
    let expected = header.npus.len() * header.models.len() * header.schemes.len();
    if header.points != expected {
        return Err(checkpoint_err(format!(
            "journal header declares {} points but its axes multiply to {expected}",
            header.points
        )));
    }
    let mut points: Vec<Option<Vec<RunResult>>> = vec![None; header.points];
    for line in lines {
        let line = line
            .map_err(|e| checkpoint_err(format!("cannot read journal {}: {e}", path.display())))?;
        if line.trim().is_empty() {
            continue;
        }
        let entry: JournalEntry = match serde_json::from_str(&line) {
            Ok(entry) => entry,
            // A torn tail is the expected artifact of killing a run
            // mid-write; everything before it is intact (each line was
            // flushed whole). Stop here and replay what we have.
            Err(_) => break,
        };
        if entry.point >= header.points {
            return Err(checkpoint_err(format!(
                "journal entry for point {} exceeds the declared {}-point sweep",
                entry.point, header.points
            )));
        }
        points[entry.point] = Some(entry.runs);
    }
    Ok(JournalContents { header, points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_model;
    use seda_models::zoo;
    use seda_scalesim::NpuConfig;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "seda-journal-test-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    fn sample_run() -> RunResult {
        let mut scheme = seda_protect::scheme_by_name("baseline").expect("registry scheme");
        run_model(&NpuConfig::edge(), &zoo::lenet(), scheme.as_mut())
    }

    fn sample_header() -> JournalHeader {
        JournalHeader {
            schema: CHECKPOINT_SCHEMA.to_owned(),
            scenario: "unit".to_owned(),
            points: 2,
            npus: vec!["edge".to_owned()],
            models: vec!["lenet".to_owned()],
            schemes: vec!["baseline".to_owned(), "SeDA".to_owned()],
        }
    }

    #[test]
    fn backoff_account_is_exponential_jitter_free_and_capped() {
        let p = FailurePolicy::Retry {
            max_attempts: 4,
            base_backoff_ms: 10,
        };
        assert_eq!(p.backoff_ms(1), 10);
        assert_eq!(p.backoff_ms(2), 20);
        assert_eq!(p.backoff_ms(3), 40);
        assert_eq!(p.backoff_ms(4), 0, "no backoff after the final attempt");
        assert_eq!(FailurePolicy::Skip.backoff_ms(1), 0);
        assert_eq!(FailurePolicy::FailFast.backoff_ms(1), 0);
        let saturating = FailurePolicy::Retry {
            max_attempts: u32::MAX,
            base_backoff_ms: u64::MAX,
        };
        // Must not overflow even for absurd attempt counts.
        assert_eq!(saturating.backoff_ms(63), u64::MAX);
    }

    #[test]
    fn failure_policy_json_round_trips() {
        for (json, policy) in [
            ("\"fail-fast\"", FailurePolicy::FailFast),
            ("\"skip\"", FailurePolicy::Skip),
            (
                "{\"retry\": {\"max_attempts\": 3, \"base_backoff_ms\": 50}}",
                FailurePolicy::Retry {
                    max_attempts: 3,
                    base_backoff_ms: 50,
                },
            ),
        ] {
            let parsed: FailurePolicy = serde_json::from_str(json).expect(json);
            assert_eq!(parsed, policy);
            let encoded = serde_json::to_string(&policy).expect("encode");
            let reparsed: FailurePolicy = serde_json::from_str(&encoded).expect("re-parse");
            assert_eq!(reparsed, policy);
        }
        let defaulted: FailurePolicy =
            serde_json::from_str("{\"retry\": {\"max_attempts\": 2}}").expect("default backoff");
        assert_eq!(
            defaulted,
            FailurePolicy::Retry {
                max_attempts: 2,
                base_backoff_ms: DEFAULT_BASE_BACKOFF_MS,
            }
        );
        assert!(serde_json::from_str::<FailurePolicy>("\"explode\"").is_err());
        assert!(serde_json::from_str::<FailurePolicy>("{\"rety\": {}}").is_err());
    }

    #[test]
    fn failure_report_renders_every_failure_with_source_chains() {
        let report = FailureReport {
            failures: vec![
                PointFailure {
                    npu: "edge".to_owned(),
                    model: "lenet".to_owned(),
                    scheme: "SeDA".to_owned(),
                    attempts: 2,
                    error: SedaError::Integrity(crate::functional::IntegrityViolation {
                        layer: 1,
                        tensor: seda_scalesim::TensorKind::Filter,
                        block: Some(3),
                        pa: 0x40,
                    }),
                },
                PointFailure {
                    npu: "server".to_owned(),
                    model: "dlrm".to_owned(),
                    scheme: "SGX-64B".to_owned(),
                    attempts: 1,
                    error: SedaError::PointPanicked {
                        point: "server/dlrm/SGX-64B".to_owned(),
                        message: "boom".to_owned(),
                    },
                },
            ],
        };
        assert_eq!(report.len(), 2);
        let text = report.render();
        assert!(
            text.contains("edge/lenet/SeDA failed after 2 attempts"),
            "{text}"
        );
        assert!(
            text.contains("server/dlrm/SGX-64B failed after 1 attempt:"),
            "{text}"
        );
        assert!(
            text.contains("caused by:"),
            "integrity failures must show their source chain: {text}"
        );
    }

    #[test]
    fn journal_round_trips_runs_bit_identically() {
        let run = sample_run();
        let path = temp_path("roundtrip");
        let header = sample_header();
        {
            let writer = JournalWriter::create(&path, &header).expect("create");
            writer.record(1, std::slice::from_ref(&run));
            writer.finish().expect("no write errors");
        }
        let contents = load_journal(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(contents.header, header);
        assert_eq!(contents.completed(), 1);
        assert!(contents.points[0].is_none());
        let replayed = contents.points[1].as_ref().expect("point 1 recorded");
        assert_eq!(replayed.len(), 1);
        // Bit-identity across the JSON round trip, f64 clock included.
        assert_eq!(replayed[0], run);
        assert!(replayed[0].clock_hz.to_bits() == run.clock_hz.to_bits());
    }

    #[test]
    fn torn_final_line_is_tolerated_and_duplicates_keep_the_last() {
        let run = sample_run();
        let path = temp_path("torn");
        let header = sample_header();
        {
            let writer = JournalWriter::create(&path, &header).expect("create");
            writer.record(0, std::slice::from_ref(&run));
            writer.record(0, std::slice::from_ref(&run));
            writer.finish().expect("no write errors");
        }
        // Simulate a kill mid-write: append half a JSON object.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            write!(f, "{{\"point\": 1, \"runs\": [").expect("tear");
        }
        let contents = load_journal(&path).expect("torn tail must not poison the journal");
        let _ = std::fs::remove_file(&path);
        assert_eq!(contents.completed(), 1, "only the whole lines replay");
        assert!(contents.points[1].is_none());
    }

    #[test]
    fn journal_rejects_wrong_schema_and_out_of_range_points() {
        let path = temp_path("badschema");
        std::fs::write(
            &path,
            "{\"schema\":\"seda-checkpoint/v0\",\"scenario\":\"x\",\"points\":1,\
             \"npus\":[\"edge\"],\"models\":[\"lenet\"],\"schemes\":[\"baseline\"]}\n",
        )
        .expect("write");
        let err = load_journal(&path).expect_err("schema mismatch");
        let _ = std::fs::remove_file(&path);
        assert!(err.to_string().contains("seda-checkpoint/v1"), "{err}");

        let run = sample_run();
        let path = temp_path("range");
        let writer = JournalWriter::create(&path, &sample_header()).expect("create");
        writer.record(7, std::slice::from_ref(&run));
        writer.finish().expect("write ok");
        let err = load_journal(&path).expect_err("out-of-range point");
        let _ = std::fs::remove_file(&path);
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn journal_rejects_inconsistent_header_axes() {
        let path = temp_path("axes");
        std::fs::write(
            &path,
            "{\"schema\":\"seda-checkpoint/v1\",\"scenario\":\"x\",\"points\":5,\
             \"npus\":[\"edge\"],\"models\":[\"lenet\"],\"schemes\":[\"baseline\"]}\n",
        )
        .expect("write");
        let err = load_journal(&path).expect_err("axes mismatch");
        let _ = std::fs::remove_file(&path);
        assert!(err.to_string().contains("multiply"), "{err}");
    }
}
