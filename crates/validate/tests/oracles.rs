//! Fixed-seed runs of every validation family — the `cargo test` face of
//! the harness. A failure message names the case index and sub-seed;
//! replay it with
//! `cargo run -p seda-validate -- --family <name> --seed 0xC1 --case <i>`.

use seda_validate::{run_family, Family};

const CI_SEED: u64 = 0xC1;

fn assert_family(family: Family) {
    let report = run_family(family, CI_SEED, family.default_cases());
    assert!(report.passed(), "{report}");
}

#[test]
fn gemm_oracles() {
    assert_family(Family::Gemm);
}

#[test]
fn otp_oracles() {
    assert_family(Family::Otp);
}

#[test]
fn scheme_invariants() {
    assert_family(Family::Schemes);
}

#[test]
fn dram_invariants() {
    assert_family(Family::Dram);
}

#[test]
fn dram_batch_conformance() {
    assert_family(Family::DramBatch);
}

#[test]
fn pipeline_invariants() {
    assert_family(Family::Pipeline);
}

#[test]
fn adversary_detection_matrix() {
    assert_family(Family::Adversary);
}

#[test]
fn resilience_invariants() {
    assert_family(Family::Resilience);
}

#[test]
fn serving_oracles() {
    assert_family(Family::Serving);
}

#[test]
fn single_case_replay_matches_family_run() {
    // The CLI's --case path must reproduce exactly what the family run
    // executed for that index.
    for case in 0..4 {
        assert!(seda_validate::run_case(Family::Gemm, CI_SEED, case).is_ok());
    }
}
