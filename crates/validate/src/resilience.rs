//! Resilience family: chaos-injected sweeps must recover bit-identically.
//!
//! The sweep engine's failure policies, watchdog, and checkpoint journal
//! claim a strong property: *fault handling is invisible in the results*.
//! A sweep that panicked, errored, or stalled at seeded points and
//! recovered via `retry` — or was killed and resumed from its journal —
//! must produce results bit-identical (`RunResult: PartialEq` compares
//! every `f64` exactly) to a clean run of the same sweep.
//!
//! Case 0 is the headline proof on the paper's full sweep (both NPUs ×
//! the 13-workload suite × all six schemes; debug builds substitute the
//! LeNet + DLRM subset for wall-clock): a seeded [`FaultPlan`] covering at
//! least 20% of points, one retried run, and one kill-then-resume run
//! through a real `seda-checkpoint/v1` journal file, each checked against
//! the clean run point for point. The remaining cases are randomized
//! small chaos sweeps exercising the `skip` policy's partial results and
//! journal-prefill recovery.

use crate::ensure;
use crate::rng::Rng;
use seda::pipeline::RunResult;
use seda::resilience::{
    load_journal, FailurePolicy, JournalHeader, JournalWriter, CHECKPOINT_SCHEMA,
};
use seda::sweep::{Sweep, SweepResults};
use seda::SedaError;
use seda_adversary::chaos::{FaultKind, FaultPlan};
use seda_models::zoo;
use seda_scalesim::NpuConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// The outcome of one flat point index, for label-free comparison.
fn point_outcome(results: &SweepResults, idx: usize) -> Result<&[RunResult], &SedaError> {
    let (_, m, s) = results.shape();
    results.outcome(idx / (m * s), (idx / s) % m, idx % s)
}

/// Asserts `chaos` reproduced `clean` bit for bit at every point.
fn ensure_bit_identical(
    clean: &SweepResults,
    chaos: &SweepResults,
    points: usize,
    what: &str,
) -> Result<(), String> {
    for idx in 0..points {
        let reference = point_outcome(clean, idx)
            .map_err(|e| format!("clean run failed at point {idx}: {e}"))?;
        match point_outcome(chaos, idx) {
            Ok(runs) => ensure!(
                runs == reference,
                "{what}: point {idx} recovered but is not bit-identical to the clean run"
            ),
            Err(e) => return Err(format!("{what}: point {idx} did not recover: {e}")),
        }
    }
    Ok(())
}

/// A process-unique journal path under the system temp directory.
fn journal_path(tag: &str, seed: u64) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "seda-resilience-{tag}-{}-{seed:x}-{n}.journal",
        std::process::id()
    ))
}

/// Case 0: the headline chaos-recovery proof on the paper's full sweep.
///
/// Clean run vs (a) a retried run under a ≥20%-coverage seeded fault plan
/// and (b) a kill-then-resume run replaying the first half of the clean
/// run's points from a real journal file — both must be bit-identical to
/// the clean run, with retry accounting matching the plan.
pub fn headline_proof(seed: u64) -> Result<(), String> {
    // Debug builds trade the 13-workload suite for the two cheapest
    // workloads; the release CI smoke runs the full 156-point sweep.
    let models = if cfg!(debug_assertions) {
        vec![zoo::lenet(), zoo::dlrm()]
    } else {
        zoo::all_models()
    };
    let schemes = seda::experiment::scheme_names();
    let points = 2 * models.len() * schemes.len();
    let make = || {
        Sweep::new()
            .npus([NpuConfig::server(), NpuConfig::edge()])
            .models(models.clone())
            .schemes(schemes.iter().copied())
    };

    let clean = make().run();
    for idx in 0..points {
        point_outcome(&clean, idx).map_err(|e| format!("clean point {idx} failed: {e}"))?;
    }

    // ≥20% of points faulted; every fault is transient past attempt 1.
    let plan = FaultPlan::seeded(seed, points, 20, 1, 25);
    ensure!(
        plan.len() * 5 >= points,
        "fault plan covers only {} of {points} points (below the 20% floor)",
        plan.len()
    );

    // (a) Retry recovery. The generous watchdog budget routes every
    // attempt through the timeout machinery without ever firing it, so
    // this also proves the watchdog path is bit-transparent.
    let retry = FailurePolicy::Retry {
        max_attempts: 3,
        base_backoff_ms: 1,
    };
    let chaos = make()
        .fault_hook(plan.hook())
        .on_failure(retry)
        .point_budget_ms(300_000)
        .run();
    ensure_bit_identical(&clean, &chaos, points, "retry run")?;
    for idx in 0..points {
        let report = &chaos.reports()[idx];
        let expected = match plan.fault_at(idx).map(|f| f.kind) {
            // Panics and typed errors burn attempt 1 and recover on 2.
            Some(FaultKind::Panic | FaultKind::Error) => 2,
            // A 25 ms stall finishes far inside the budget on attempt 1.
            Some(FaultKind::Stall { .. }) | None => 1,
        };
        ensure!(
            report.attempts_made() == expected,
            "retry run: point {idx} took {} attempts, planned {expected}",
            report.attempts_made()
        );
    }

    // (b) Kill-then-resume. Journal the first half of the clean run's
    // points (as a killed run would have), then resume the chaos sweep
    // from the journal file: the replayed half must skip its faults
    // entirely and the executed half must retry through them.
    let checkpointed = points / 2;
    let path = journal_path("headline", seed);
    let header = JournalHeader {
        schema: CHECKPOINT_SCHEMA.to_owned(),
        scenario: "resilience-headline".to_owned(),
        points,
        npus: clean.npu_labels().to_vec(),
        models: clean.model_labels().to_vec(),
        schemes: clean.scheme_labels().to_vec(),
    };
    let result = (|| {
        let writer = JournalWriter::create(&path, &header).map_err(|e| e.to_string())?;
        for idx in 0..checkpointed {
            let runs = point_outcome(&clean, idx).map_err(|e| format!("clean point {idx}: {e}"))?;
            writer.record(idx, runs);
        }
        writer.finish().map_err(|e| e.to_string())?;
        let journal = load_journal(&path).map_err(|e| e.to_string())?;
        ensure!(
            journal.completed() == checkpointed,
            "journal replays {} of the {checkpointed} recorded points",
            journal.completed()
        );
        let resumed = make()
            .fault_hook(plan.hook())
            .on_failure(retry)
            .resume_from(journal.points)
            .run();
        ensure_bit_identical(&clean, &resumed, points, "resumed run")?;
        ensure!(
            resumed.resumed_count() == checkpointed,
            "resumed run replayed {} points, journal held {checkpointed}",
            resumed.resumed_count()
        );
        for idx in 0..checkpointed {
            ensure!(
                resumed.reports()[idx].resumed && resumed.reports()[idx].attempts_made() == 0,
                "resumed run re-executed checkpointed point {idx}"
            );
        }
        Ok(())
    })();
    let _ = std::fs::remove_file(&path);
    result
}

/// One randomized case: a small chaos sweep checked under `retry`
/// (bit-identical recovery), `skip` (exactly the planned panic/error
/// points fail, in deterministic order), and journal-prefill resume
/// (faulted points replayed from a checkpoint never fire their faults).
pub fn check_case(rng: &mut Rng) -> Result<(), String> {
    let model = if rng.coin(1, 2) {
        zoo::lenet()
    } else {
        zoo::dlrm()
    };
    let pool = ["SGX-64B", "SGX-512B", "MGX-64B", "MGX-512B", "Securator"];
    let schemes = vec![
        "baseline",
        "SeDA",
        pool[rng.below(pool.len() as u64) as usize],
    ];
    let points = schemes.len();
    let fault_percent = rng.range(25, 100) as u32;
    let fail_attempts = rng.range(1, 2) as u32;
    let plan_seed = rng.next_u64();
    let plan = FaultPlan::seeded(plan_seed, points, fault_percent, fail_attempts, 5);
    let parallel = rng.coin(1, 2);
    let ctx = format!(
        "model={} schemes={schemes:?} faults={:?} fail_attempts={fail_attempts} parallel={parallel}",
        model.name(),
        plan.faulted_indices()
    );
    let make = || {
        let sweep = Sweep::new()
            .npu(NpuConfig::edge())
            .model(model.clone())
            .schemes(schemes.iter().copied());
        if parallel {
            sweep.threads(2)
        } else {
            sweep.serial()
        }
    };

    let clean = make().run();
    for idx in 0..points {
        point_outcome(&clean, idx).map_err(|e| format!("{ctx}: clean point {idx}: {e}"))?;
    }

    // Retry past the plan's transient horizon recovers bit-identically.
    let chaos = make()
        .fault_hook(plan.hook())
        .on_failure(FailurePolicy::Retry {
            max_attempts: fail_attempts + 1,
            base_backoff_ms: 1,
        })
        .run();
    ensure_bit_identical(&clean, &chaos, points, &ctx)?;
    for idx in 0..points {
        let expected = match plan.fault_at(idx).map(|f| f.kind) {
            Some(FaultKind::Panic | FaultKind::Error) => fail_attempts + 1,
            Some(FaultKind::Stall { .. }) | None => 1,
        };
        ensure!(
            chaos.reports()[idx].attempts_made() == expected,
            "{ctx}: retry point {idx} took {} attempts, planned {expected}",
            chaos.reports()[idx].attempts_made()
        );
    }

    // Skip leaves exactly the planned hard faults failed, everything else
    // bit-identical, and the failure report in ascending point order.
    let hard: Vec<usize> = plan
        .faulted_indices()
        .into_iter()
        .filter(|&i| {
            matches!(
                plan.fault_at(i).map(|f| f.kind),
                Some(FaultKind::Panic | FaultKind::Error)
            )
        })
        .collect();
    let skipped = make()
        .fault_hook(plan.hook())
        .on_failure(FailurePolicy::Skip)
        .run();
    for idx in 0..points {
        let reference =
            point_outcome(&clean, idx).map_err(|e| format!("{ctx}: clean point {idx}: {e}"))?;
        match point_outcome(&skipped, idx) {
            Ok(runs) => {
                ensure!(
                    !hard.contains(&idx),
                    "{ctx}: skip run succeeded at planned hard fault {idx}"
                );
                ensure!(
                    runs == reference,
                    "{ctx}: skip run point {idx} is not bit-identical to the clean run"
                );
            }
            Err(e) => ensure!(
                hard.contains(&idx),
                "{ctx}: skip run failed at unplanned point {idx}: {e}"
            ),
        }
    }
    let report = skipped.failure_report();
    ensure!(
        report.len() == hard.len(),
        "{ctx}: failure report holds {} entries for {} planned hard faults",
        report.len(),
        hard.len()
    );

    // Prefilling the faulted points from a checkpoint sidesteps their
    // faults entirely: the resumed sweep is all-green and bit-identical.
    let mut prefill: Vec<Option<Vec<RunResult>>> = vec![None; points];
    for &idx in &plan.faulted_indices() {
        let runs =
            point_outcome(&clean, idx).map_err(|e| format!("{ctx}: clean point {idx}: {e}"))?;
        prefill[idx] = Some(runs.to_vec());
    }
    let resumed = make()
        .fault_hook(plan.hook())
        .on_failure(FailurePolicy::Skip)
        .resume_from(prefill)
        .run();
    ensure_bit_identical(&clean, &resumed, points, &format!("{ctx}: prefilled run"))?;
    ensure!(
        resumed.resumed_count() == plan.len(),
        "{ctx}: prefilled run replayed {} of {} checkpointed points",
        resumed.resumed_count(),
        plan.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{run_family, Family};

    #[test]
    fn resilience_family_passes_fixed_seed() {
        let report = run_family(
            Family::Resilience,
            0xC4A0_5001,
            Family::Resilience.default_cases(),
        );
        assert!(report.passed(), "{report}");
    }
}
