//! A tiny deterministic PRNG (SplitMix64) for case generation.
//!
//! The harness needs reproducibility above statistical quality: every case
//! derives a sub-seed from `(root seed, case index)`, so a failure report
//! can name the exact case and the CLI can replay it in isolation.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The derived sub-seed for `case` under `seed` — one SplitMix64 step
    /// over the combined value, so neighbouring cases are uncorrelated.
    pub fn sub_seed(seed: u64, case: u32) -> u64 {
        let mut probe = Rng::new(seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        probe.next_u64()
    }

    /// A generator for one case of a run.
    pub fn for_case(seed: u64, case: u32) -> Self {
        Self::new(Self::sub_seed(seed, case))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Modulo bias is irrelevant at these bounds (all ≪ 2^32).
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// A biased coin: true with probability `num / den`.
    pub fn coin(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A random 16-byte block (AES key / plaintext material).
    pub fn block(&mut self) -> [u8; 16] {
        let a = self.next_u64().to_le_bytes();
        let b = self.next_u64().to_le_bytes();
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&a);
        out[8..].copy_from_slice(&b);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn sub_seeds_differ_across_cases() {
        let seeds: Vec<u64> = (0..64).map(|c| Rng::sub_seed(1, c)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn range_is_inclusive_and_in_bounds() {
        let mut rng = Rng::new(7);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = rng.range(3, 6);
            assert!((3..=6).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 6;
        }
        assert!(saw_lo && saw_hi);
    }
}
