//! DRAM timing invariants over randomized request streams.
//!
//! The controller model is approximate by design, but some properties are
//! not negotiable whatever the configuration: a 64 B transfer occupies a
//! channel's data bus for exactly `t_bl` cycles, transfers on one channel
//! never overlap, no burst starts inside a refresh window, channel clocks
//! only move forward, and the achieved bandwidth never exceeds what the
//! bus could physically carry.

use crate::ensure;
use crate::rng::Rng;
use seda_dram::{DramConfig, DramSim, Request, ACCESS_BYTES};

/// A randomized but physically sensible configuration, including
/// refresh-disabled and non-default burst-length variants.
fn random_config(rng: &mut Rng) -> DramConfig {
    // Address decoding is bit-sliced, so organization dims must be powers
    // of two.
    let channels = *rng.pick(&[1u32, 2, 4]);
    let mut cfg = DramConfig::ddr4_with_bandwidth(channels, 1.0e9 * rng.range(4, 24) as f64);
    cfg.banks = *rng.pick(&[4u32, 8, 16]);
    cfg.row_bytes = *rng.pick(&[2048u64, 4096, 8192]);
    cfg.t_bl = *rng.pick(&[2u64, 4, 8]);
    match rng.below(3) {
        0 => cfg.t_refi = 0, // refresh disabled
        1 => {
            // Aggressive refresh: short interval, long blocking window,
            // so many transfers actually collide with it.
            cfg.t_refi = rng.range(200, 2000);
            cfg.t_rfc = rng.range(1, cfg.t_refi / 2);
        }
        _ => {} // DDR4 defaults from the constructor
    }
    cfg
}

/// A stream mixing streaming runs (row hits) with random scatter
/// (conflicts) and writes.
fn random_stream(rng: &mut Rng, len: usize) -> Vec<Request> {
    let mut stream = Vec::with_capacity(len);
    let mut addr = rng.below(1 << 24) * ACCESS_BYTES;
    while stream.len() < len {
        if rng.coin(2, 3) {
            // A streaming run of sequential lines.
            for _ in 0..rng.range(4, 32) {
                stream.push(if rng.coin(1, 8) {
                    Request::write(addr)
                } else {
                    Request::read(addr)
                });
                addr += ACCESS_BYTES;
            }
        } else {
            addr = rng.below(1 << 24) * ACCESS_BYTES;
            stream.push(if rng.coin(1, 3) {
                Request::write(addr)
            } else {
                Request::read(addr)
            });
        }
    }
    stream.truncate(len);
    stream
}

/// One randomized case: a config and a stream, with per-access checks.
pub fn check_case(rng: &mut Rng) -> Result<(), String> {
    let cfg = random_config(rng);
    let stream = random_stream(rng, 1500);
    let ctx = format!(
        "channels={} banks={} row={} t_bl={} t_refi={} t_rfc={}",
        cfg.channels, cfg.banks, cfg.row_bytes, cfg.t_bl, cfg.t_refi, cfg.t_rfc
    );

    let mut sim = DramSim::new(cfg.clone());
    let mut bus_free = vec![0u64; cfg.channels as usize];
    let mut last_elapsed = 0u64;
    for (i, req) in stream.iter().enumerate() {
        let t = sim.access_timed(*req);
        ensure!(
            t.channel < cfg.channels,
            "{ctx}: request {i} mapped to channel {} of {}",
            t.channel,
            cfg.channels
        );
        ensure!(
            t.data_end - t.data_start == cfg.t_bl,
            "{ctx}: request {i} occupied the bus {} cycles, burst is {}",
            t.data_end - t.data_start,
            cfg.t_bl
        );
        let free = &mut bus_free[t.channel as usize];
        ensure!(
            t.data_start >= *free,
            "{ctx}: request {i} starts at {} while channel {} bus is busy until {}",
            t.data_start,
            t.channel,
            *free
        );
        *free = t.data_end;
        if cfg.t_refi > 0 {
            ensure!(
                t.data_start % cfg.t_refi >= cfg.t_rfc,
                "{ctx}: request {i} bursts at {} — inside the {}-cycle refresh \
                 window of a {}-cycle interval",
                t.data_start,
                cfg.t_rfc,
                cfg.t_refi
            );
        }
        let elapsed = sim.elapsed_cycles();
        ensure!(
            elapsed >= last_elapsed,
            "{ctx}: elapsed clock ran backwards at request {i} ({last_elapsed} -> {elapsed})"
        );
        last_elapsed = elapsed;
    }

    ensure!(
        sim.stats().accesses() == stream.len() as u64,
        "{ctx}: {} accesses recorded for {} requests",
        sim.stats().accesses(),
        stream.len()
    );
    // The bus physically carries 64 B per t_bl cycles per channel; the
    // achieved rate can approach but never exceed that (the constructor's
    // nominal peak assumes t_bl = 4, so derive the bound from the config).
    let bus_limit = f64::from(cfg.channels) * ACCESS_BYTES as f64 / cfg.t_bl as f64 * cfg.clock_hz;
    let within_limit = sim.achieved_bandwidth() <= bus_limit * (1.0 + 1e-9);
    ensure!(
        within_limit,
        "{ctx}: achieved {:.3e} B/s exceeds the bus limit {:.3e} B/s",
        sim.achieved_bandwidth(),
        bus_limit
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{run_family, Family};

    #[test]
    fn dram_family_passes_fixed_seed() {
        let report = run_family(Family::Dram, 0xD1FF_0004, Family::Dram.default_cases());
        assert!(report.passed(), "{report}");
    }
}
