//! Randomized differential validation harness for the SeDA workspace.
//!
//! The repository carries two implementations of nearly every claim — an
//! analytical and a cycle-accurate compute model, a streamed and a
//! per-segment B-AES pad path, scheme-level traffic models and the
//! functional crypto path — and this crate cross-checks them with seeded
//! randomized oracles instead of hand-picked shapes. Ten families:
//!
//! * [`gemm`] — `exact_gemm` vs `gemm_cycles` and MAC totals over random
//!   shapes for both dataflows, including fold/remainder edges.
//! * [`otp`] — `BandwidthAwareOtp::apply` vs the `segment_otp` reference
//!   across block sizes spanning multiple key-schedule groups, plus
//!   pairwise-distinctness, roundtrip, and evaluation-count properties
//!   for all three OTP strategies.
//! * [`schemes`] — traffic-conservation invariants for every
//!   [`seda_protect::ProtectionScheme`]: demand bytes preserved, every
//!   emitted request attributed in the [`seda_protect::TrafficBreakdown`],
//!   SeDA never overfetching, SGX/MGX metadata matching the `MetaCache`
//!   hit/miss accounting.
//! * [`dram`] — DRAM timing invariants (monotone channel clocks, burst
//!   length from config, refresh-window exclusion, achieved bandwidth at
//!   or below peak) over randomized request streams.
//! * [`dram_batch`] — the batched replay kernel (`DramSim::run_batch`)
//!   against the exact per-access kernel: bit-identical stats, elapsed
//!   clock, bank occupancy, and telemetry snapshots over streaming,
//!   row-thrash, refresh-straddling, channel-interleaved, and random
//!   streams.
//! * [`pipeline`] — `run_trace` totals invariant under `TraceCache` reuse
//!   and sweep parallelism.
//! * [`adversary`] — random fault-injection cells from `seda-adversary`'s
//!   detection matrix must match their paper-claimed verdicts without
//!   panicking, and random byte flips against the functional
//!   `run_protected` path must either abort with a typed integrity error
//!   or finish bit-identical to the unprotected reference.
//! * [`resilience`] — chaos-injected sweeps (seeded panics, typed errors,
//!   stalls from `seda-adversary`'s [`seda_adversary::chaos::FaultPlan`])
//!   must recover bit-identically under `retry`, degrade to exactly the
//!   planned failures under `skip`, and resume from a
//!   `seda-checkpoint/v1` journal without re-executing finished points.
//!   Case 0 is the headline proof on the paper's full sweep.
//! * [`serving`] — `seda-serve`'s event-driven kernel against its
//!   brute-force 1-cycle time-stepped reference over small random
//!   multi-tenant specs (every scheduler, open- and closed-loop
//!   arrivals, batching, preemption): completion times, queue-depth
//!   traces, latency histograms, busy cycles, and event counts must be
//!   bit-identical.
//! * [`stream`] — `seda-stream`'s sealed provisioning path: streamed
//!   unsealing bit-identical to at-rest sealing over random geometries
//!   and protection configs, chunk-size invariance, and every tamper
//!   class (bit flip, MAC corruption, reorder, truncation, cross-stream
//!   splice, stale-epoch replay) rejected with a typed error under
//!   `catch_unwind`.
//!
//! Every family is a pure function of a `(seed, cases)` pair, so a CI
//! failure reproduces locally with the seeded CLI:
//!
//! ```text
//! cargo run --release -p seda-validate -- --family gemm --seed 42 --cases 64
//! ```
//!
//! Each case derives its own sub-seed from `(seed, case index)`; failure
//! messages carry both so one case can be replayed in isolation with
//! `--seed <seed> --case <index>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod dram;
pub mod dram_batch;
pub mod gemm;
pub mod otp;
pub mod pipeline;
pub mod resilience;
pub mod rng;
pub mod schemes;
pub mod serving;
pub mod stream;

use rng::Rng;
use std::fmt;

/// The ten oracle/invariant families of the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Cycle-accurate vs analytical systolic-array model.
    Gemm,
    /// OTP strategies: streamed vs reference pads, distinctness, counts.
    Otp,
    /// Protection-scheme traffic conservation and attribution.
    Schemes,
    /// DRAM timing invariants over random request streams.
    Dram,
    /// Batched vs per-access DRAM replay kernels, bit for bit.
    DramBatch,
    /// Pipeline totals under trace caching and sweep parallelism.
    Pipeline,
    /// Fault-injection verdicts vs the paper-claimed detection matrix.
    Adversary,
    /// Chaos-injected sweeps: retry/skip/resume recovery, bit for bit.
    Resilience,
    /// Event-driven vs time-stepped serving kernels, bit for bit.
    Serving,
    /// Streamed vs at-rest model sealing, plus stream tamper rejection.
    Stream,
}

impl Family {
    /// All families in canonical order.
    pub fn all() -> [Family; 10] {
        [
            Family::Gemm,
            Family::Otp,
            Family::Schemes,
            Family::Dram,
            Family::DramBatch,
            Family::Pipeline,
            Family::Adversary,
            Family::Resilience,
            Family::Serving,
            Family::Stream,
        ]
    }

    /// The family's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Gemm => "gemm",
            Family::Otp => "otp",
            Family::Schemes => "schemes",
            Family::Dram => "dram",
            Family::DramBatch => "dram-batch",
            Family::Pipeline => "pipeline",
            Family::Adversary => "adversary",
            Family::Resilience => "resilience",
            Family::Serving => "serving",
            Family::Stream => "stream",
        }
    }

    /// Parses a CLI name (`gemm`, `otp`, `schemes`, `dram`, `dram-batch`,
    /// `pipeline`, `adversary`, `resilience`, `serving`, `stream`).
    pub fn parse(s: &str) -> Option<Family> {
        Family::all().into_iter().find(|f| f.name() == s)
    }

    /// A sensible default case count: the heavier families (which replay
    /// full DRAM traces per case) run fewer cases for the same wall-clock.
    pub fn default_cases(self) -> u32 {
        match self {
            Family::Gemm => 48,
            Family::Otp => 48,
            Family::Schemes => 32,
            Family::Dram => 12,
            Family::DramBatch => 12,
            Family::Pipeline => 4,
            Family::Adversary => 16,
            // Case 0 alone runs three full headline sweeps.
            Family::Resilience => 4,
            // Each case brute-force steps a full serving run.
            Family::Serving => 24,
            Family::Stream => 24,
        }
    }
}

/// One failed case: which case, its sub-seed, and what went wrong.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Case index within the run (replay with `--case`).
    pub case: u32,
    /// The case's derived sub-seed.
    pub sub_seed: u64,
    /// Human-readable description of the violated invariant, including
    /// the generated inputs.
    pub message: String,
}

/// Outcome of running one family.
#[derive(Debug, Clone)]
pub struct Report {
    /// Family that ran.
    pub family: Family,
    /// Root seed of the run.
    pub seed: u64,
    /// Number of cases executed.
    pub cases: u32,
    /// Every violated invariant, in case order.
    pub failures: Vec<Failure>,
}

impl Report {
    /// Whether every case passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:8} seed={:#x} cases={:3} ... {}",
            self.family.name(),
            self.seed,
            self.cases,
            if self.passed() {
                "ok".to_owned()
            } else {
                format!("{} FAILED", self.failures.len())
            }
        )?;
        for fail in &self.failures {
            write!(
                f,
                "\n  case {} (sub-seed {:#x}): {}",
                fail.case, fail.sub_seed, fail.message
            )?;
        }
        Ok(())
    }
}

/// Runs `cases` cases of `family` under `seed`.
pub fn run_family(family: Family, seed: u64, cases: u32) -> Report {
    let check = checker(family);
    let mut failures = Vec::new();
    for case in 0..cases {
        if let Err(message) = run_case(family, seed, case) {
            failures.push(Failure {
                case,
                sub_seed: Rng::sub_seed(seed, case),
                message,
            });
        }
    }
    let _ = check;
    Report {
        family,
        seed,
        cases,
        failures,
    }
}

/// Runs a single case of `family` — the replay entry point behind the
/// CLI's `--case` flag.
pub fn run_case(family: Family, seed: u64, case: u32) -> Result<(), String> {
    // The resilience family pins its headline chaos-recovery proof to
    // case 0 (a fixed sweep, not a randomized draw) so CI always runs it.
    if family == Family::Resilience && case == 0 {
        return resilience::headline_proof(seed);
    }
    let mut rng = Rng::for_case(seed, case);
    checker(family)(&mut rng)
}

fn checker(family: Family) -> fn(&mut Rng) -> Result<(), String> {
    match family {
        Family::Gemm => gemm::check_case,
        Family::Otp => otp::check_case,
        Family::Schemes => schemes::check_case,
        Family::Dram => dram::check_case,
        Family::DramBatch => dram_batch::check_case,
        Family::Pipeline => pipeline::check_case,
        Family::Adversary => adversary::check_case,
        Family::Resilience => resilience::check_case,
        Family::Serving => serving::check_case,
        Family::Stream => stream::check_case,
    }
}

/// Asserts an invariant inside a check, formatting the failure context.
#[macro_export]
macro_rules! ensure {
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_round_trip() {
        for f in Family::all() {
            assert_eq!(Family::parse(f.name()), Some(f));
        }
        assert_eq!(Family::parse("nope"), None);
    }

    #[test]
    fn reports_are_deterministic_per_seed() {
        let a = run_family(Family::Otp, 7, 4);
        let b = run_family(Family::Otp, 7, 4);
        assert_eq!(a.passed(), b.passed());
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
