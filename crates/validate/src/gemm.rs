//! Differential oracle: cycle-accurate vs analytical systolic-array model.
//!
//! `exact_gemm` simulates every fold wavefront by wavefront;
//! `gemm_cycles` is the closed-form SCALE-Sim formula. They were derived
//! independently, so agreement over randomized shapes — especially near
//! fold boundaries, where remainder folds change the per-fold fill/drain —
//! is strong evidence both are right.

use crate::ensure;
use crate::rng::Rng;
use seda_models::GemmShape;
use seda_scalesim::{exact_gemm, gemm_cycles, simulate_fold_ws, Dataflow, NpuConfig};

/// A small array keeps the cycle-accurate simulation cheap while still
/// producing multi-fold grids from modest dimensions.
fn random_array(rng: &mut Rng) -> NpuConfig {
    let mut cfg = NpuConfig::edge();
    cfg.rows = *rng.pick(&[2u32, 3, 4, 8, 16, 32]);
    cfg.cols = *rng.pick(&[2u32, 3, 4, 8, 16, 32]);
    cfg
}

/// A dimension biased toward fold boundaries: `k·n`, `k·n ± 1`, or a
/// uniform draw — the edges are where remainder-fold bookkeeping breaks.
fn random_dim(rng: &mut Rng, n: u32) -> u64 {
    let n = u64::from(n);
    match rng.below(4) {
        0 => rng.range(1, 3) * n,
        1 => (rng.range(1, 3) * n).saturating_sub(1).max(1),
        2 => rng.range(1, 3) * n + 1,
        _ => rng.range(1, 3 * n),
    }
}

/// One randomized case: a shape on a random array, checked under both
/// dataflows.
pub fn check_case(rng: &mut Rng) -> Result<(), String> {
    let cfg = random_array(rng);
    let shape = GemmShape {
        sr: random_dim(rng, cfg.rows),
        t: rng.range(1, 64),
        sc: random_dim(rng, cfg.cols),
        folds: rng.range(0, 3),
    };
    check_output_stationary(&cfg, shape)?;
    check_weight_stationary(&cfg, shape)
}

fn check_output_stationary(cfg: &NpuConfig, shape: GemmShape) -> Result<(), String> {
    let mut cfg = cfg.clone();
    cfg.dataflow = Dataflow::OutputStationary;
    let exact = exact_gemm(&cfg, shape);
    let analytical = gemm_cycles(&cfg, shape);
    let ctx = format!(
        "OS {}x{} array, shape sr={} t={} sc={} folds={}",
        cfg.rows, cfg.cols, shape.sr, shape.t, shape.sc, shape.folds
    );
    ensure!(
        exact.cycles == analytical,
        "{ctx}: exact {} cycles != analytical {}",
        exact.cycles,
        analytical
    );
    ensure!(
        exact.macs == shape.macs(),
        "{ctx}: exact {} MACs != shape's {}",
        exact.macs,
        shape.macs()
    );
    ensure!(
        exact.utilization.is_finite() && (0.0..=1.0).contains(&exact.utilization),
        "{ctx}: utilization {} outside [0, 1]",
        exact.utilization
    );
    Ok(())
}

fn check_weight_stationary(cfg: &NpuConfig, shape: GemmShape) -> Result<(), String> {
    let mut cfg = cfg.clone();
    cfg.dataflow = Dataflow::WeightStationary;
    let rows = u64::from(cfg.rows);
    let cols = u64::from(cfg.cols);
    let analytical = gemm_cycles(&cfg, shape);
    let ctx = format!(
        "WS {}x{} array, shape sr={} t={} sc={} folds={}",
        cfg.rows, cfg.cols, shape.sr, shape.t, shape.sc, shape.folds
    );

    // Cycle oracle: the analytical model charges every fold the full-array
    // pass `rows + sr + cols − 1`, so replay that fold cycle-accurately
    // and multiply by the fold grid.
    let ft = shape.t.div_ceil(rows);
    let fc = shape.sc.div_ceil(cols);
    let sim_cycles = ft * fc * simulate_fold_ws(rows, cols, shape.sr).cycles * shape.folds;
    ensure!(
        sim_cycles == analytical,
        "{ctx}: simulated {} cycles != analytical {}",
        sim_cycles,
        analytical
    );

    // MAC oracle: tile the reduction and columns onto the array with
    // remainder folds; the occupied-PE MAC total must reproduce the
    // shape's algebraic count even though the cycle model rounds up.
    let mut macs = 0u64;
    let mut add = |r: u64, c: u64, count: u64| {
        if r > 0 && c > 0 && count > 0 {
            macs += simulate_fold_ws(r, c, shape.sr).macs * count;
        }
    };
    add(rows, cols, (shape.t / rows) * (shape.sc / cols));
    add(rows, shape.sc % cols, shape.t / rows);
    add(shape.t % rows, cols, shape.sc / cols);
    add(shape.t % rows, shape.sc % cols, 1);
    macs *= shape.folds;
    ensure!(
        macs == shape.macs(),
        "{ctx}: tiled WS folds perform {} MACs, shape demands {}",
        macs,
        shape.macs()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_family, Family};

    #[test]
    fn gemm_family_passes_fixed_seed() {
        let report = run_family(Family::Gemm, 0xD1FF_0001, Family::Gemm.default_cases());
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn boundary_dims_cover_all_four_fold_kinds() {
        // The generator must actually hit exact multiples and ±1 edges.
        let mut rng = Rng::new(99);
        let mut kinds = [false; 3];
        for _ in 0..200 {
            let d = random_dim(&mut rng, 8);
            if d.is_multiple_of(8) {
                kinds[0] = true;
            } else if d % 8 == 7 {
                kinds[1] = true;
            } else if d % 8 == 1 {
                kinds[2] = true;
            }
        }
        assert!(kinds.iter().all(|&k| k), "{kinds:?}");
    }
}
