//! Stream-family oracle: sealed-model provisioning streams must unseal
//! bit-identical to at-rest sealing, and every tamper class must degrade
//! into a typed error — never a panic, never silent acceptance.
//!
//! Each case draws a random geometry (layer count and 64-byte-multiple
//! region lengths), a random [`ProtectConfig`] from the detection matrix,
//! and fresh random keys, then checks:
//!
//! * **Differential oracle** — [`seda_stream::seal()`] followed by
//!   [`seda_stream::unseal()`] yields a [`ProtectedImage`] whose
//!   ciphertext, model root, and recovered plaintext are bit-identical
//!   to sealing the same layers at rest through
//!   [`ProtectedImage::write_layer`]; a chunked
//!   [`seda_stream::StreamUnsealer`] fed random-sized
//!   slices must land on the same root.
//! * **Adversarial classes** — a random bit flip anywhere in the stream,
//!   a corrupted frame MAC, a frame reorder, a truncation at a random
//!   byte, a cross-stream frame splice, and a stale-epoch replay after
//!   key rotation must each fail with [`SedaError::Tag`] or
//!   [`SedaError::Stream`] under `catch_unwind`.
//!
//! [`ProtectedImage`]: seda_adversary::ProtectedImage
//! [`ProtectedImage::write_layer`]: seda_adversary::ProtectedImage::write_layer

use crate::ensure;
use crate::rng::Rng;
use seda::error::StreamViolation;
use seda::SedaError;
use seda_adversary::{ProtectConfig, ProtectedImage};
use seda_stream::{seal, unseal, StreamSpec, StreamUnsealer};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs a tampered stream through `unseal` and requires a typed
/// stream-layer rejection: no panic, no silent acceptance, no
/// unrelated error class.
fn expect_typed(ctx: &str, label: &str, spec: &StreamSpec, bytes: &[u8]) -> Result<(), String> {
    let spec = spec.clone();
    let data = bytes.to_vec();
    let outcome = catch_unwind(AssertUnwindSafe(|| unseal(&spec, &data)));
    let Ok(result) = outcome else {
        return Err(format!("{ctx}: {label}: unseal panicked"));
    };
    match result {
        Ok(_) => Err(format!("{ctx}: {label}: tamper went undetected")),
        Err(SedaError::Tag(_) | SedaError::Stream(_)) => Ok(()),
        Err(e) => Err(format!("{ctx}: {label}: non-stream error {e}")),
    }
}

/// One randomized differential-plus-adversarial case.
pub fn check_case(rng: &mut Rng) -> Result<(), String> {
    // Random geometry: 1–4 layers, each 2–6 protection blocks, so every
    // stream carries at least two frames (the reorder class needs them).
    let layers = rng.range(1, 4) as usize;
    let lens: Vec<usize> = (0..layers).map(|_| rng.range(2, 6) as usize * 64).collect();
    let config = *rng.pick(&ProtectConfig::matrix());
    let spec = StreamSpec {
        stream_id: rng.next_u64() | 1,
        key_epoch: rng.range(1, 8),
        config,
        lens: lens.clone(),
        enc_key: rng.block(),
        mac_key: rng.block(),
        transport_key: rng.block(),
    };
    let plains: Vec<Vec<u8>> = lens
        .iter()
        .map(|&len| (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect())
        .collect();
    let ctx = format!(
        "config={} lens={lens:?} stream={:#x} epoch={}",
        config.name, spec.stream_id, spec.key_epoch
    );

    let stream = seal(&spec, &plains).map_err(|e| format!("{ctx}: seal failed: {e}"))?;

    // Differential oracle: the streamed image must be bit-identical to
    // sealing the same plaintext at rest.
    let streamed =
        unseal(&spec, stream.bytes()).map_err(|e| format!("{ctx}: clean unseal failed: {e}"))?;
    let mut at_rest = ProtectedImage::new(config, &lens, spec.enc_key, spec.mac_key)
        .map_err(|e| format!("{ctx}: at-rest image failed: {e}"))?;
    for (layer, plain) in plains.iter().enumerate() {
        at_rest
            .write_layer(layer, plain)
            .map_err(|e| format!("{ctx}: write_layer {layer} failed: {e}"))?;
    }
    ensure!(
        streamed.offchip_bytes() == at_rest.offchip_bytes(),
        "{ctx}: streamed ciphertext differs from at-rest sealing"
    );
    ensure!(
        streamed.model_root() == at_rest.model_root(),
        "{ctx}: streamed model root differs from at-rest sealing"
    );
    let read = streamed
        .read_model()
        .map_err(|e| format!("{ctx}: streamed image failed verification: {e}"))?;
    ensure!(
        read == plains,
        "{ctx}: streamed image recovered the wrong plaintext"
    );

    // The incremental consumer fed random-sized chunks must converge on
    // the same image as the one-shot path.
    let mut unsealer =
        StreamUnsealer::new(spec.clone()).map_err(|e| format!("{ctx}: unsealer: {e}"))?;
    let mut rest = stream.bytes();
    while !rest.is_empty() {
        let take = (rng.range(1, 96) as usize).min(rest.len());
        unsealer
            .push(&rest[..take])
            .map_err(|e| format!("{ctx}: chunked push failed: {e}"))?;
        rest = &rest[take..];
    }
    let chunked = unsealer
        .finish()
        .map_err(|e| format!("{ctx}: chunked finish failed: {e}"))?;
    ensure!(
        chunked.model_root() == streamed.model_root(),
        "{ctx}: chunk size changed the unsealed image"
    );

    // Adversarial classes — each one typed, none a panic.
    let total = stream.len();
    let frames = stream.frame_count();

    let mut flipped = stream.clone();
    flipped.flip_bit(rng.below(total as u64) as usize, 1 << rng.below(8));
    expect_typed(&ctx, "random bit flip", &spec, flipped.bytes())?;

    let mut bad_mac = stream.clone();
    bad_mac.corrupt_frame_mac(rng.below(frames as u64) as usize, 1 << rng.below(8));
    expect_typed(&ctx, "frame MAC corruption", &spec, bad_mac.bytes())?;

    let mut reordered = stream.clone();
    let a = rng.below(frames as u64 - 1) as usize;
    reordered.swap_frames(a, a + 1);
    expect_typed(&ctx, "frame reorder", &spec, reordered.bytes())?;

    let keep = rng.below(total as u64) as usize;
    expect_typed(&ctx, "truncation", &spec, &stream.bytes()[..keep])?;

    // Cross-stream splice: a frame sealed for another stream id under
    // the same keys must not verify here.
    let mut foreign_spec = spec.clone();
    foreign_spec.stream_id ^= 0x5EDA;
    let foreign = seal(&foreign_spec, &plains).map_err(|e| format!("{ctx}: foreign seal: {e}"))?;
    let mut spliced = stream.clone();
    spliced.splice_frame_from(&foreign, rng.below(frames as u64) as usize);
    expect_typed(&ctx, "cross-stream splice", &spec, spliced.bytes())?;

    // Stale replay: after the receiver rotates its key epoch, the old
    // stream must be rejected up front with the exact violation.
    let mut rotated = spec.clone();
    rotated.key_epoch = spec.key_epoch + 1;
    let err = unseal(&rotated, stream.bytes())
        .err()
        .ok_or_else(|| format!("{ctx}: stale-epoch replay went undetected"))?;
    ensure!(
        err == SedaError::Stream(StreamViolation::StaleEpoch {
            stream: spec.key_epoch,
            current: rotated.key_epoch,
        }),
        "{ctx}: stale-epoch replay not rejected as StaleEpoch: {err:?}"
    );

    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{run_family, Family};

    #[test]
    fn stream_family_passes_fixed_seed() {
        let report = run_family(Family::Stream, 0xD1FF_000A, Family::Stream.default_cases());
        assert!(report.passed(), "{report}");
    }
}
