//! Adversary-family oracle: random faults must land exactly where the
//! detection matrix says, and never as a panic.
//!
//! Each case fuzzes the fault-injection engine two ways:
//!
//! * Random `(configuration, tamper class)` cells from
//!   [`seda_adversary`]'s detection matrix, run under `catch_unwind`:
//!   the observed verdict must match the paper-claimed one, detections
//!   must carry a typed error, and undetected integrity faults must have
//!   actually corrupted or leaked something (no vacuous "undetected
//!   no-op" cells).
//! * A random single-byte flip somewhere in
//!   [`SecureMemory`](seda::functional::SecureMemory) mid-
//!   [`run_protected`]: the inference must either abort with a localized
//!   integrity violation or — when the flip hit a region that is
//!   rewritten before it is ever read — finish bit-identical to the
//!   unprotected reference. Nothing in between, and never a panic.

use crate::ensure;
use crate::rng::Rng;
use seda::functional::{run_protected, run_reference};
use seda_adversary::{run_cell, ProtectConfig, TamperClass, Verdict};
use seda_models::zoo;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Cells fuzzed per case (on top of the `run_protected` flip).
const CELLS_PER_CASE: usize = 3;

/// One randomized case over matrix cells and a functional-path flip.
pub fn check_case(rng: &mut Rng) -> Result<(), String> {
    let configs = ProtectConfig::matrix();
    let classes = TamperClass::all();

    for _ in 0..CELLS_PER_CASE {
        let config = *rng.pick(&configs);
        let class = *rng.pick(&classes);
        let cell_seed = rng.next_u64();
        let ctx = format!("{}/{} cell-seed={cell_seed:#x}", config.name, class.name());

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut cell_rng = seda_adversary::Rng::new(cell_seed);
            run_cell(&config, class, &mut cell_rng)
        }));
        let Ok(result) = outcome else {
            return Err(format!("{ctx}: fault injection panicked"));
        };
        let cell = result.map_err(|e| format!("{ctx}: harness-level failure: {e}"))?;
        ensure!(
            cell.matches(),
            "{ctx}: expected {:?}, observed {:?} ({})",
            cell.expected,
            cell.observed,
            cell.description
        );
        if cell.observed == Verdict::Detected && class != TamperClass::SecaDisclosure {
            ensure!(
                cell.error.is_some(),
                "{ctx}: detected without a typed error"
            );
        }
        if cell.observed == Verdict::Undetected {
            ensure!(
                cell.silent_corruption,
                "{ctx}: undetected fault neither corrupted nor leaked anything"
            );
        }
    }

    // A random byte flip against the functional secure-memory path. The
    // offset is drawn over the whole image, so some flips land in ofmap
    // slots that are rewritten before their first read — those must
    // complete with the reference output; every other flip must surface
    // as a typed integrity error.
    let model = zoo::lenet();
    let input: Vec<u8> = (0..32 * 32)
        .map(|_| (rng.next_u64() & 0xFF) as u8)
        .collect();
    let reference = run_reference(&model, &input);
    let offset_seed = rng.next_u64();
    let mask = 1u8 << rng.below(8);
    let ctx = format!("run_protected flip offset-seed={offset_seed:#x} mask={mask:#04x}");

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_protected(&model, &input, |mem| {
            let raw = mem.raw_mut();
            let at = (offset_seed % raw.len() as u64) as usize;
            raw[at] ^= mask;
        })
    }));
    let Ok(result) = outcome else {
        return Err(format!(
            "{ctx}: panicked instead of returning a typed error"
        ));
    };
    match result {
        Ok(output) => ensure!(
            output == reference,
            "{ctx}: verified run diverged from the unprotected reference"
        ),
        Err(err) => {
            let violation = err
                .integrity()
                .ok_or_else(|| format!("{ctx}: non-integrity error {err}"))?;
            ensure!(
                (violation.layer as usize) < model.layers().len(),
                "{ctx}: violation names out-of-range layer {}",
                violation.layer
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{run_family, Family};

    #[test]
    fn adversary_family_passes_fixed_seed() {
        let report = run_family(
            Family::Adversary,
            0xD1FF_0006,
            Family::Adversary.default_cases(),
        );
        assert!(report.passed(), "{report}");
    }
}
