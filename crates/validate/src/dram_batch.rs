//! Differential conformance oracle for the batched DRAM replay kernel.
//!
//! [`DramSim::run_batch`] coalesces streaming streaks into closed-form
//! timing updates; this family replays every generated stream through
//! both the exact per-access kernel and the batched kernel from identical
//! cold starts and demands *bit-identical* outcomes: [`seda_dram::DramStats`], the
//! elapsed channel clock, per-bank occupancy, and the full telemetry
//! snapshot ([`DramSim::emit_telemetry_to`] into a private sink, so the
//! comparison never races the process-global one).
//!
//! Streams are chosen to hit every fast-path boundary: pure streaming
//! (maximum coalescing), row thrash (no coalescing), refresh-straddling
//! runs (the closed form's period walk), multi-channel interleave (the
//! per-channel decomposition), random scatter, singleton-heavy hot-line
//! revisits, short mixed streaks (the buffered per-channel substream
//! path), and read/write turnaround. Every stream is additionally
//! replayed pre-packed through [`DramSim::run_batch_packed`] with the
//! channel-sharded flush forced on, pinning the scoped-thread stats
//! merge to the same bit-identity bar.

use crate::ensure;
use crate::rng::Rng;
use seda_dram::{DramConfig, DramSim, Request, ACCESS_BYTES};
use seda_telemetry::SharedSink;

/// A randomized organization biased toward fast-path boundaries:
/// multi-channel interleave, small rows (frequent row changes), short
/// refresh intervals (frequent window straddles), and the degenerate
/// `t_rfc >= t_refi` case the batched kernel must refuse to coalesce.
fn random_config(rng: &mut Rng) -> DramConfig {
    let channels = *rng.pick(&[1u32, 2, 4, 8]);
    let mut cfg = DramConfig::ddr4_with_bandwidth(channels, 1.0e9 * rng.range(4, 24) as f64);
    cfg.banks = *rng.pick(&[4u32, 8, 16]);
    cfg.ranks = *rng.pick(&[1u32, 2]);
    cfg.row_bytes = *rng.pick(&[1024u64, 2048, 8192]);
    cfg.t_bl = *rng.pick(&[1u64, 2, 4, 8]);
    cfg.t_wr = rng.range(0, 20);
    match rng.below(4) {
        0 => cfg.t_refi = 0, // refresh disabled
        1 => {
            // Aggressive refresh: streaks straddle many windows.
            cfg.t_refi = rng.range(100, 1200);
            cfg.t_rfc = rng.range(1, cfg.t_refi - 1);
        }
        2 => {
            // Pathological: the blocking window covers the whole interval,
            // which forces run_batch onto its exact per-access fallback.
            cfg.t_refi = rng.range(16, 64);
            cfg.t_rfc = cfg.t_refi + rng.range(0, 8);
        }
        _ => {} // DDR4 defaults
    }
    cfg
}

/// The generated stream shapes, one per oracle emphasis.
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// Long sequential runs — maximum coalescing.
    Streaming,
    /// Alternating far-apart rows on one bank — zero coalescing.
    RowThrash,
    /// Sequential runs long enough to straddle refresh windows.
    RefreshStraddle,
    /// Sequential runs, so every consecutive pair lands on a different
    /// channel — exercises the per-channel streak decomposition.
    Interleave,
    /// Uniform scatter with mixed directions.
    Random,
    /// A small pool of hot lines revisited in scattered order — every
    /// access is a one-request streak, but keys recur, so the buffered
    /// mixed-streak kernel's same-key coalescing and read/write
    /// turnaround logic run on singleton-heavy traffic.
    Singleton,
    /// Runs of 2–4 sequential lines with frequent direction flips and
    /// jumps between runs — streaks too short for the closed form, so
    /// everything lands in the per-channel substream buffers.
    ShortMixed,
}

const SHAPES: [Shape; 7] = [
    Shape::Streaming,
    Shape::RowThrash,
    Shape::RefreshStraddle,
    Shape::Interleave,
    Shape::Random,
    Shape::Singleton,
    Shape::ShortMixed,
];

fn stream_of(shape: Shape, rng: &mut Rng, cfg: &DramConfig, len: usize) -> Vec<Request> {
    let mut stream = Vec::with_capacity(len);
    match shape {
        Shape::Streaming | Shape::Interleave => {
            // One long sequential walk with occasional direction flips and
            // rare jumps; under a multi-channel config this *is* the
            // interleave case, since consecutive lines alternate channels.
            let mut addr = rng.below(1 << 22) * ACCESS_BYTES;
            let mut write = false;
            while stream.len() < len {
                if rng.coin(1, 64) {
                    addr = rng.below(1 << 22) * ACCESS_BYTES;
                }
                if rng.coin(1, 24) {
                    write = !write;
                }
                stream.push(Request {
                    addr,
                    is_write: write,
                });
                addr += ACCESS_BYTES;
            }
        }
        Shape::RowThrash => {
            // Two rows of the same bank: every access conflicts, so the
            // batched path must degrade to the exact kernel per request.
            let row_span = cfg.row_bytes / ACCESS_BYTES * u64::from(cfg.channels) * ACCESS_BYTES;
            let bank_span = row_span * u64::from(cfg.banks) * u64::from(cfg.ranks);
            let base = rng.below(1 << 12) * bank_span;
            for i in 0..len {
                let row = (i as u64 % 2) * bank_span;
                stream.push(Request::read(base + row));
            }
        }
        Shape::RefreshStraddle => {
            // Long same-row bursts: with a short t_refi each burst crosses
            // several refresh windows, exercising the closed-form walk.
            let mut addr = rng.below(1 << 20) * ACCESS_BYTES;
            while stream.len() < len {
                for _ in 0..rng.range(64, 256) {
                    stream.push(Request::read(addr));
                    addr += ACCESS_BYTES;
                }
                addr += rng.below(1 << 16) * ACCESS_BYTES;
            }
            stream.truncate(len);
        }
        Shape::Random => {
            for _ in 0..len {
                let addr = rng.below(1 << 22) * ACCESS_BYTES;
                stream.push(if rng.coin(1, 3) {
                    Request::write(addr)
                } else {
                    Request::read(addr)
                });
            }
        }
        Shape::Singleton => {
            let pool: Vec<u64> = (0..32).map(|_| rng.below(1 << 22) * ACCESS_BYTES).collect();
            for _ in 0..len {
                let addr = *rng.pick(&pool);
                stream.push(if rng.coin(1, 2) {
                    Request::write(addr)
                } else {
                    Request::read(addr)
                });
            }
        }
        Shape::ShortMixed => {
            let mut write = false;
            while stream.len() < len {
                let mut addr = rng.below(1 << 22) * ACCESS_BYTES;
                if rng.coin(1, 2) {
                    write = !write;
                }
                for _ in 0..rng.range(2, 4) {
                    stream.push(Request {
                        addr,
                        is_write: write,
                    });
                    addr += ACCESS_BYTES;
                }
            }
            stream.truncate(len);
        }
    }
    stream
}

/// Replays `stream` through the exact per-access kernel.
fn replay_exact(cfg: &DramConfig, stream: &[Request]) -> DramSim {
    let mut sim = DramSim::new(cfg.clone());
    for req in stream {
        sim.access(*req);
    }
    sim
}

/// Replays `stream` through the batched kernel, split at a random point
/// so streaks also cross `run_batch` call boundaries.
fn replay_batched(cfg: &DramConfig, stream: &[Request], split: usize) -> DramSim {
    let mut sim = DramSim::new(cfg.clone());
    let (a, b) = stream.split_at(split.min(stream.len()));
    sim.run_batch(a);
    sim.run_batch(b);
    sim
}

/// Replays `stream` pre-packed through `run_batch_packed` with the
/// channel-sharded flush forced on (`set_replay_threads`), exactly as
/// the pipeline's layer slices drive the kernel — covering both the
/// packed entry point and the scoped-thread stats merge.
fn replay_sharded(cfg: &DramConfig, stream: &[Request], split: usize, threads: usize) -> DramSim {
    let packed: Vec<u64> = stream.iter().map(|r| r.pack()).collect();
    let mut sim = DramSim::new(cfg.clone());
    sim.set_replay_threads(threads);
    let (a, b) = packed.split_at(split.min(packed.len()));
    sim.run_batch_packed(a);
    sim.run_batch_packed(b);
    sim
}

fn telemetry_snapshot(sim: &DramSim) -> seda_telemetry::Snapshot {
    let sink = SharedSink::new();
    sim.emit_telemetry_to(&sink);
    sink.snapshot()
}

/// One randomized case: one config, all five stream shapes, bit-identity
/// of the batched kernel against the exact kernel on each.
pub fn check_case(rng: &mut Rng) -> Result<(), String> {
    let cfg = random_config(rng);
    for shape in SHAPES {
        let stream = stream_of(shape, rng, &cfg, 1500);
        let split = rng.below(stream.len() as u64 + 1) as usize;
        let ctx = format!(
            "{shape:?}: channels={} ranks={} banks={} row={} t_bl={} t_wr={} \
             t_refi={} t_rfc={} split={split}",
            cfg.channels,
            cfg.ranks,
            cfg.banks,
            cfg.row_bytes,
            cfg.t_bl,
            cfg.t_wr,
            cfg.t_refi,
            cfg.t_rfc
        );

        let exact = replay_exact(&cfg, &stream);
        let batched = replay_batched(&cfg, &stream, split);

        ensure!(
            exact.stats() == batched.stats(),
            "{ctx}: stats diverge\n  exact:   {:?}\n  batched: {:?}",
            exact.stats(),
            batched.stats()
        );
        ensure!(
            exact.elapsed_cycles() == batched.elapsed_cycles(),
            "{ctx}: elapsed {} (exact) != {} (batched)",
            exact.elapsed_cycles(),
            batched.elapsed_cycles()
        );
        ensure!(
            exact.bank_occupancy_cycles() == batched.bank_occupancy_cycles(),
            "{ctx}: per-bank occupancy diverges"
        );
        ensure!(
            telemetry_snapshot(&exact) == telemetry_snapshot(&batched),
            "{ctx}: telemetry snapshots diverge\n  exact:   {}\n  batched: {}",
            telemetry_snapshot(&exact).to_json(),
            telemetry_snapshot(&batched).to_json()
        );

        let threads = *rng.pick(&[2usize, 3, 8]);
        let sharded = replay_sharded(&cfg, &stream, split, threads);
        ensure!(
            exact.stats() == sharded.stats(),
            "{ctx} threads={threads}: sharded stats diverge\n  exact:   {:?}\n  sharded: {:?}",
            exact.stats(),
            sharded.stats()
        );
        ensure!(
            exact.elapsed_cycles() == sharded.elapsed_cycles(),
            "{ctx} threads={threads}: elapsed {} (exact) != {} (sharded)",
            exact.elapsed_cycles(),
            sharded.elapsed_cycles()
        );
        ensure!(
            exact.bank_occupancy_cycles() == sharded.bank_occupancy_cycles(),
            "{ctx} threads={threads}: sharded per-bank occupancy diverges"
        );
        ensure!(
            telemetry_snapshot(&exact) == telemetry_snapshot(&sharded),
            "{ctx} threads={threads}: sharded telemetry snapshots diverge"
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{run_family, Family};

    #[test]
    fn dram_batch_family_passes_fixed_seed() {
        let report = run_family(
            Family::DramBatch,
            0xD1FF_0005,
            Family::DramBatch.default_cases(),
        );
        assert!(report.passed(), "{report}");
    }
}
