//! Differential serving oracle: event-driven vs time-stepped kernel.
//!
//! `seda-serve` ships two simulation kernels built over the same shared
//! scheduling policy — [`seda_serve::simulate`] advances a binary-heap
//! event queue, [`seda_serve::simulate_stepped`] literally increments
//! the clock one cycle at a time. This family generates small random
//! [`SimSpec`]s (at most 4 tenants, hundreds of requests, tiny cycle
//! counts so the brute-force reference stays tractable) spanning every
//! scheduler, both arrival processes, burst/diurnal modulation,
//! batching, and preemption, replays each through both kernels, and
//! demands the full [`seda_serve::SimOutcome`] be bit-identical:
//! completion times in recording order, the queue-depth trace, per-tenant
//! latency and queue-depth histograms, per-replica busy cycles, and the
//! event count. Any divergence pins a bug in the fast kernel's heap
//! ordering, boundary arithmetic, or closed-loop draw points.

use crate::ensure;
use crate::rng::Rng;
use seda_serve::{simulate, simulate_stepped, ArrivalSim, BurstSim, DiurnalSim};
use seda_serve::{Scheduler, SimSpec, SwapSim, TenantSim};

/// A random small batch cost model: depths up to 3, the cold first
/// inference the priciest, every duration strictly positive.
fn random_profiles(rng: &mut Rng) -> Vec<Vec<u64>> {
    let depth = rng.range(1, 3) as usize;
    let layer_count = rng.range(1, 4) as usize;
    (0..depth)
        .map(|d| {
            (0..layer_count)
                .map(|_| {
                    let base = rng.range(1, 40);
                    if d == 0 {
                        base + rng.range(0, 39)
                    } else {
                        base
                    }
                })
                .collect()
        })
        .collect()
}

/// One random tenant with a small, strictly positive cost model.
fn random_tenant(rng: &mut Rng, index: usize) -> TenantSim {
    let profiles = random_profiles(rng);
    TenantSim {
        name: format!("t{index}"),
        profiles,
        sla_cycles: rng.coin(1, 2).then(|| rng.range(20, 400)),
        weight: rng.range(1, 4),
    }
}

/// One random small spec the stepped reference can chew through.
fn random_spec(rng: &mut Rng) -> SimSpec {
    let tenant_count = rng.range(1, 4) as usize;
    let tenants = (0..tenant_count).map(|i| random_tenant(rng, i)).collect();
    let scheduler = match rng.below(4) {
        0 => Scheduler::Fcfs,
        1 => Scheduler::Rr,
        2 => Scheduler::Edf { preempt: false },
        _ => Scheduler::Edf { preempt: true },
    };
    let arrival = if rng.coin(1, 2) {
        ArrivalSim::OpenLoop {
            mean_cycles: rng.range(2, 60) as f64,
            requests: rng.range(50, 600),
            burst: rng.coin(1, 3).then(|| BurstSim {
                period_cycles: rng.range(50, 2000) as f64,
                duty_pct: rng.range(5, 95) as f64,
                factor: rng.range(2, 8) as f64,
            }),
            diurnal: rng.coin(1, 3).then(|| DiurnalSim {
                period_cycles: rng.range(100, 4000) as f64,
                amplitude: rng.range(1, 9) as f64 / 10.0,
            }),
        }
    } else {
        ArrivalSim::ClosedLoop {
            clients: rng.range(1, 8) as u32,
            think_cycles: rng.range(1, 100) as f64,
            requests: rng.range(50, 400),
        }
    };
    // A third of the cases schedule hot model-swaps mid-run, so the
    // oracle also pins the swap phase: due marking, the drained-tenant
    // cutover predicate, and replacement-profile batch formation.
    let swaps = if rng.coin(1, 3) {
        (0..rng.range(1, 2))
            .map(|_| SwapSim {
                tenant: rng.below(tenant_count as u64) as usize,
                at_cycle: rng.range(1, 3000),
                profiles: random_profiles(rng),
            })
            .collect()
    } else {
        Vec::new()
    };
    SimSpec {
        seed: rng.next_u64(),
        scheduler,
        replicas: rng.range(1, 3) as u32,
        max_batch: rng.range(1, 3) as u32,
        tenants,
        arrival,
        swaps,
    }
}

/// One differential case: both kernels over one random spec.
pub fn check_case(rng: &mut Rng) -> Result<(), String> {
    let spec = random_spec(rng);
    let fast = simulate(&spec);
    let slow = simulate_stepped(&spec);
    let label = format!(
        "scheduler={} tenants={} replicas={} max_batch={} arrival={:?} seed={:#x}",
        spec.scheduler.name(),
        spec.tenants.len(),
        spec.replicas,
        spec.max_batch,
        spec.arrival,
        spec.seed
    );
    ensure!(
        fast.completions.len() as u64 == spec.arrival.requests(),
        "kernel dropped requests: {} of {} completed ({label})",
        fast.completions.len(),
        spec.arrival.requests()
    );
    ensure!(
        fast.completions == slow.completions,
        "completion records diverge at index {:?} ({label})",
        fast.completions
            .iter()
            .zip(&slow.completions)
            .position(|(a, b)| a != b)
    );
    ensure!(
        fast.queue_trace == slow.queue_trace,
        "queue-depth traces diverge at index {:?} ({label})",
        fast.queue_trace
            .iter()
            .zip(&slow.queue_trace)
            .position(|(a, b)| a != b)
    );
    ensure!(
        fast.tenant_latency == slow.tenant_latency,
        "per-tenant latency histograms diverge ({label})"
    );
    ensure!(
        fast.tenant_queue_depth == slow.tenant_queue_depth,
        "per-tenant queue-depth histograms diverge ({label})"
    );
    ensure!(
        fast == slow,
        "outcomes diverge: busy {:?} vs {:?}, end {} vs {}, events {} vs {} ({label})",
        fast.busy_cycles,
        slow.busy_cycles,
        fast.end_cycle,
        slow.end_cycle,
        fast.events,
        slow.events
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_stay_within_the_oracle_envelope() {
        // The issue caps oracle cases at 4 tenants and a tractable event
        // count; the generator must respect that envelope.
        for case in 0..16 {
            let mut rng = Rng::for_case(0xE5, case);
            let spec = random_spec(&mut rng);
            assert!((1..=4).contains(&spec.tenants.len()));
            assert!(spec.arrival.requests() <= 600);
            assert!((1..=3).contains(&spec.replicas));
        }
    }

    #[test]
    fn a_fixed_case_passes() {
        let mut rng = Rng::for_case(0xE5, 0);
        check_case(&mut rng).expect("differential case");
    }
}
