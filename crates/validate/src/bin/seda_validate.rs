//! Seeded CLI driver for the validation harness.
//!
//! ```text
//! seda_validate [--seed N] [--family NAME] [--cases N] [--case N]
//! ```
//!
//! Runs every family (or one, with `--family`) and exits non-zero if any
//! case fails, printing each failure with its case index and sub-seed so
//! it can be replayed in isolation:
//!
//! ```text
//! seda_validate --family dram --seed 42 --case 7
//! ```

use seda_validate::{run_case, run_family, Family};
use std::process::ExitCode;

struct Args {
    seed: u64,
    family: Option<Family>,
    cases: Option<u32>,
    case: Option<u32>,
}

fn usage() -> ! {
    eprintln!(
        "usage: seda_validate [--seed N] [--family {}] [--cases N] [--case N]",
        Family::all().map(|f| f.name()).join("|")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 0x5EDA,
        family: None,
        cases: None,
        case: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().filter(|_| flag != "--help" && flag != "-h");
        match (flag.as_str(), value) {
            ("--seed", Some(v)) => args.seed = parse_u64(&v).unwrap_or_else(|| usage()),
            ("--family", Some(v)) => {
                args.family = Some(Family::parse(&v).unwrap_or_else(|| usage()));
            }
            ("--cases", Some(v)) => {
                args.cases = Some(parse_u64(&v).unwrap_or_else(|| usage()) as u32);
            }
            ("--case", Some(v)) => {
                args.case = Some(parse_u64(&v).unwrap_or_else(|| usage()) as u32);
            }
            _ => usage(),
        }
    }
    args
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let families: Vec<Family> = match args.family {
        Some(f) => vec![f],
        None => Family::all().to_vec(),
    };

    // Single-case replay mode.
    if let Some(case) = args.case {
        let family = args.family.unwrap_or_else(|| {
            eprintln!("--case needs --family");
            std::process::exit(2);
        });
        return match run_case(family, args.seed, case) {
            Ok(()) => {
                println!("{} seed={:#x} case={case} ... ok", family.name(), args.seed);
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!(
                    "{} seed={:#x} case={case} FAILED: {message}",
                    family.name(),
                    args.seed
                );
                ExitCode::FAILURE
            }
        };
    }

    let mut failed = 0usize;
    for family in families {
        let cases = args.cases.unwrap_or_else(|| family.default_cases());
        let report = run_family(family, args.seed, cases);
        println!("{report}");
        failed += report.failures.len();
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failed} case(s) failed");
        ExitCode::FAILURE
    }
}
