//! Pipeline-level invariants: simulation results must not depend on *how*
//! they were computed.
//!
//! The sweep engine caches burst traces per (NPU, model) and runs points
//! on a thread pool; both are pure plumbing, so `run_trace` totals must be
//! bit-identical whether the trace was freshly simulated or cache-shared,
//! and whether the sweep ran serially or in parallel. A shared cache must
//! also actually share: a second sweep over the same points may not
//! re-simulate anything.

use crate::ensure;
use crate::rng::Rng;
use seda::pipeline::run_trace;
use seda::sweep::Sweep;
use seda_models::{zoo, Model};
use seda_protect::{scheme_by_name, HashEngine};
use seda_scalesim::{NpuConfig, TraceCache};

/// The cheap end of the zoo — a case replays a full inference per scheme,
/// so the generator sticks to the two smallest workloads.
fn random_model(rng: &mut Rng) -> Model {
    if rng.coin(1, 2) {
        zoo::lenet()
    } else {
        zoo::dlrm()
    }
}

fn random_schemes(rng: &mut Rng) -> Vec<&'static str> {
    let pool = ["SGX-64B", "SGX-512B", "MGX-64B", "MGX-512B", "Securator"];
    let mut picked = vec!["baseline", "SeDA"];
    picked.push(pool[rng.below(pool.len() as u64) as usize]);
    picked
}

/// Digest of one run for exact comparison across execution strategies.
fn fingerprint(runs: &[seda::pipeline::RunResult]) -> Vec<(u64, u64, u64)> {
    runs.iter()
        .map(|r| (r.total_cycles, r.traffic.total(), r.dram.bytes()))
        .collect()
}

/// One randomized case over a (model, scheme set, repeats, verifier)
/// draw.
pub fn check_case(rng: &mut Rng) -> Result<(), String> {
    let npu = NpuConfig::edge();
    let model = random_model(rng);
    let schemes = random_schemes(rng);
    let repeats = rng.range(1, 2) as u32;
    let verifier = rng.coin(1, 2).then(|| HashEngine::new(32.0, 64));
    let ctx = format!(
        "model={} schemes={:?} repeats={repeats} verifier={}",
        model.name(),
        schemes,
        verifier.is_some()
    );

    // run_trace totals are invariant under TraceCache reuse: simulating
    // fresh and replaying the cached Arc must agree exactly.
    let cache = TraceCache::new();
    let sim_fresh = cache.get_or_simulate(&npu, &model);
    let sim_cached = cache.get_or_simulate(&npu, &model);
    ensure!(
        cache.misses() == 1 && cache.hits() == 1,
        "{ctx}: trace cache simulated {} times for two lookups",
        cache.misses()
    );
    for name in &schemes {
        let mut a = scheme_by_name(name).ok_or_else(|| format!("unknown scheme {name}"))?;
        let mut b = scheme_by_name(name).ok_or_else(|| format!("unknown scheme {name}"))?;
        let fresh = run_trace(&sim_fresh, &npu, a.as_mut(), verifier.as_ref(), repeats);
        let cached = run_trace(&sim_cached, &npu, b.as_mut(), verifier.as_ref(), repeats);
        ensure!(
            fingerprint(&fresh) == fingerprint(&cached),
            "{ctx}: {name} totals changed under trace-cache reuse"
        );
        ensure!(
            fresh.len() == repeats as usize,
            "{ctx}: {name} returned {} results for {repeats} repeats",
            fresh.len()
        );
    }

    // Sweep results are invariant under parallelism, point for point.
    // (Sweep holds boxed scheme builders, so rebuild it per execution.)
    let make_sweep = || {
        let mut sweep = Sweep::new()
            .npu(npu.clone())
            .model(model.clone())
            .schemes(schemes.iter().copied())
            .repeats(repeats);
        if let Some(v) = &verifier {
            sweep = sweep.verifier(*v);
        }
        sweep
    };
    let serial = make_sweep().serial().run();
    let parallel = make_sweep().threads(3).run();
    for (si, name) in schemes.iter().enumerate() {
        ensure!(
            fingerprint(serial.runs_at(0, 0, si)) == fingerprint(parallel.runs_at(0, 0, si)),
            "{ctx}: scheme {name} differs between serial and 3-thread sweeps"
        );
    }

    // A shared cache across sweeps must eliminate re-simulation entirely.
    let shared = TraceCache::new();
    let sweep = make_sweep();
    let first = sweep.run_with_cache(&shared);
    let second = sweep.run_with_cache(&shared);
    ensure!(
        first.stats.trace_misses == 1,
        "{ctx}: first sweep simulated {} traces for one (NPU, model) pair",
        first.stats.trace_misses
    );
    ensure!(
        second.stats.trace_misses == 0 && second.stats.trace_hits == schemes.len() as u64,
        "{ctx}: second sweep re-simulated ({} misses, {} hits)",
        second.stats.trace_misses,
        second.stats.trace_hits
    );
    for (si, name) in schemes.iter().enumerate() {
        ensure!(
            fingerprint(first.runs_at(0, 0, si)) == fingerprint(second.runs_at(0, 0, si)),
            "{ctx}: scheme {name} differs between first and second shared-cache sweeps"
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{run_family, Family};

    #[test]
    fn pipeline_family_passes_fixed_seed() {
        let report = run_family(
            Family::Pipeline,
            0xD1FF_0005,
            Family::Pipeline.default_cases(),
        );
        assert!(report.passed(), "{report}");
    }
}
