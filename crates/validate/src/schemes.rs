//! Traffic-conservation invariants for every protection scheme.
//!
//! A scheme rewrites demand bursts into 64 B DRAM requests and tallies a
//! [`TrafficBreakdown`]. Whatever the scheme, three things must hold on
//! any burst stream: the demand bytes the accelerator asked for survive
//! the rewrite unchanged, every emitted request is attributed to exactly
//! one tally category (`requests × 64 == total()`), and scheme-specific
//! metadata costs match their first-principles counts — SeDA's two lines
//! per distinct layer, Securator's two lines per layer switch, SGX/MGX
//! MAC traffic equal to the metadata-cache miss/writeback counts.

use crate::ensure;
use crate::rng::Rng;
use seda_protect::scheme::{line_down, line_up, LINE_BYTES};
use seda_protect::{
    scheme_by_name, BlockMacKind, BlockMacScheme, ProtectionScheme, TrafficBreakdown,
    PROTECTED_BYTES,
};
use seda_scalesim::{Burst, TensorKind};
use std::collections::BTreeSet;

/// All registry labels the harness exercises.
const SCHEMES: [&str; 7] = [
    "baseline",
    "SGX-64B",
    "SGX-512B",
    "MGX-64B",
    "MGX-512B",
    "SeDA",
    "Securator",
];

/// A randomized burst stream: several layers, interleaved with
/// double-buffering-style overlap, mixed tensors, unaligned runs, and
/// both reads and writes.
fn random_stream(rng: &mut Rng) -> Vec<Burst> {
    let layers = rng.range(1, 4) as u32;
    let count = rng.range(8, 40);
    let mut stream = Vec::new();
    for _ in 0..count {
        let layer = rng.below(u64::from(layers)) as u32;
        let tensor = *rng.pick(&[TensorKind::Ifmap, TensorKind::Filter, TensorKind::Ofmap]);
        // Unaligned starts and odd lengths exercise the 64 B-grid and
        // protection-block edge handling (overfetch, RMW fills).
        let addr = rng.below(1 << 22) + u64::from(layer) * (1 << 24);
        let bytes = rng.range(1, 4096);
        stream.push(if tensor == TensorKind::Ofmap || rng.coin(1, 5) {
            Burst::write(addr, bytes, tensor, layer)
        } else {
            Burst::read(addr, bytes, tensor, layer)
        });
    }
    stream
}

/// Grid-aligned demand bytes a scheme must tally for one burst.
fn demand_span(b: &Burst) -> u64 {
    line_up(b.end()) - line_down(b.addr)
}

fn run_scheme(
    scheme: &mut dyn ProtectionScheme,
    stream: &[Burst],
) -> (Vec<seda_dram::Request>, TrafficBreakdown) {
    let mut requests = Vec::new();
    for burst in stream {
        scheme.transform(burst, &mut |r| requests.push(r));
    }
    scheme.finish(&mut |r| requests.push(r));
    (requests, scheme.breakdown())
}

fn check_conservation(
    name: &str,
    stream: &[Burst],
    requests: &[seda_dram::Request],
    tally: &TrafficBreakdown,
) -> Result<(), String> {
    // Demand bytes are preserved exactly, per direction.
    let want_read: u64 = stream.iter().filter(|b| !b.is_write).map(demand_span).sum();
    let want_write: u64 = stream.iter().filter(|b| b.is_write).map(demand_span).sum();
    ensure!(
        tally.demand_read == want_read,
        "{name}: demand_read {} != grid-aligned burst reads {}",
        tally.demand_read,
        want_read
    );
    ensure!(
        tally.demand_write == want_write,
        "{name}: demand_write {} != grid-aligned burst writes {}",
        tally.demand_write,
        want_write
    );
    // Every emitted request lands in exactly one tally category.
    ensure!(
        requests.len() as u64 * LINE_BYTES == tally.total(),
        "{name}: {} requests x 64 B != breakdown total {} \
         (unattributed or double-counted traffic)",
        requests.len(),
        tally.total()
    );
    // Requests sit on the 64 B grid.
    ensure!(
        requests.iter().all(|r| r.addr % LINE_BYTES == 0),
        "{name}: emitted a misaligned request"
    );
    Ok(())
}

/// One randomized case: a stream replayed through every scheme.
pub fn check_case(rng: &mut Rng) -> Result<(), String> {
    let stream = random_stream(rng);
    let mut totals = std::collections::HashMap::new();
    for name in SCHEMES {
        let mut scheme =
            scheme_by_name(name).ok_or_else(|| format!("{name} missing from registry"))?;
        let (requests, tally) = run_scheme(scheme.as_mut(), &stream);
        check_conservation(name, &stream, &requests, &tally)?;
        totals.insert(name, tally.total());

        match name {
            "baseline" => ensure!(
                tally.total() == tally.demand(),
                "baseline moved non-demand bytes"
            ),
            "SeDA" => check_seda(&stream, &requests, &tally)?,
            "Securator" => check_securator(&stream, &tally)?,
            _ => {}
        }
    }
    // SGX pays for VNs and tree walks on top of the same MAC structure, so
    // it can never beat MGX at equal granularity.
    for g in ["64B", "512B"] {
        ensure!(
            totals[format!("SGX-{g}").as_str()] >= totals[format!("MGX-{g}").as_str()],
            "SGX-{g} moved fewer bytes than MGX-{g}"
        );
    }
    check_block_mac_cache_accounting(&stream)
}

fn check_seda(
    stream: &[Burst],
    requests: &[seda_dram::Request],
    tally: &TrafficBreakdown,
) -> Result<(), String> {
    ensure!(
        tally.overfetch_read == 0,
        "SeDA overfetched {} bytes; optBlk granularity must match runs",
        tally.overfetch_read
    );
    ensure!(
        tally.mac_read == 0 && tally.vn_read == 0 && tally.tree_read == 0,
        "SeDA fetched block-MAC/VN/tree metadata"
    );
    // Exactly one layer-MAC line read and one written per distinct layer.
    let layers: BTreeSet<u32> = stream.iter().map(|b| b.layer).collect();
    let want = layers.len() as u64 * 2 * LINE_BYTES;
    ensure!(
        tally.layer_mac == want,
        "SeDA layer_mac {} != {} ({} distinct layers x 2 lines)",
        tally.layer_mac,
        want,
        layers.len()
    );
    let meta: Vec<_> = requests
        .iter()
        .filter(|r| r.addr >= 2 * PROTECTED_BYTES)
        .collect();
    ensure!(
        meta.len() as u64 * LINE_BYTES == want
            && meta.iter().filter(|r| r.is_write).count() == layers.len(),
        "SeDA metadata requests don't match one read + one write per layer"
    );
    Ok(())
}

fn check_securator(stream: &[Burst], tally: &TrafficBreakdown) -> Result<(), String> {
    // Securator tracks only the current layer: every change of layer in
    // the stream costs one MAC read (and one write retiring the previous
    // layer), with the final layer retired by finish().
    let mut switches = 0u64;
    let mut current = None;
    for b in stream {
        if current != Some(b.layer) {
            switches += 1;
            current = Some(b.layer);
        }
    }
    let want = 2 * switches * LINE_BYTES;
    ensure!(
        tally.layer_mac == want,
        "Securator layer_mac {} != {} ({switches} layer switches x 2 lines)",
        tally.layer_mac,
        want
    );
    Ok(())
}

/// The SGX/MGX traffic tallies must agree with the metadata caches' own
/// accounting: a MAC line read is exactly a MAC-cache miss, a MAC line
/// write exactly a writeback, and likewise for the shared VN/tree cache.
fn check_block_mac_cache_accounting(stream: &[Burst]) -> Result<(), String> {
    for (kind, granularity) in [
        (BlockMacKind::Sgx, 64),
        (BlockMacKind::Sgx, 512),
        (BlockMacKind::Mgx, 64),
        (BlockMacKind::Mgx, 512),
    ] {
        let mut scheme = BlockMacScheme::new(kind, granularity, PROTECTED_BYTES);
        let (_, tally) = run_scheme(&mut scheme, stream);
        let name = format!("{kind:?}-{granularity}B");
        let (_, mac_misses, mac_wb) = scheme.mac_cache_stats();
        ensure!(
            tally.mac_read == mac_misses * LINE_BYTES,
            "{name}: mac_read {} != {mac_misses} cache misses x 64",
            tally.mac_read
        );
        ensure!(
            tally.mac_write == mac_wb * LINE_BYTES,
            "{name}: mac_write {} != {mac_wb} writebacks x 64",
            tally.mac_write
        );
        match scheme.vn_cache_stats() {
            Some((_, vn_misses, vn_wb)) => {
                ensure!(
                    tally.vn_read + tally.tree_read == vn_misses * LINE_BYTES,
                    "{name}: VN+tree reads {} != {vn_misses} cache misses x 64",
                    tally.vn_read + tally.tree_read
                );
                ensure!(
                    tally.vn_write + tally.tree_write == vn_wb * LINE_BYTES,
                    "{name}: VN+tree writes {} != {vn_wb} writebacks x 64",
                    tally.vn_write + tally.tree_write
                );
            }
            None => ensure!(
                tally.vn_read + tally.vn_write + tally.tree_read + tally.tree_write == 0,
                "{name}: MGX moved VN/tree bytes despite on-chip VNs"
            ),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{run_family, Family};

    #[test]
    fn schemes_family_passes_fixed_seed() {
        let report = run_family(
            Family::Schemes,
            0xD1FF_0003,
            Family::Schemes.default_cases(),
        );
        assert!(report.passed(), "{report}");
    }
}
