//! Differential oracle: streamed OTP application vs per-segment reference.
//!
//! [`BandwidthAwareOtp`] overrides the trait's generic `apply` with a
//! streaming datapath that reuses the base pad and each derived key
//! schedule. This family checks that the optimization is invisible: for
//! every strategy, `apply` must XOR exactly the pads `segment_otp`
//! defines, be self-inverse, and report evaluation counts with the right
//! edge behaviour — across block sizes spanning several schedule groups.

use crate::ensure;
use crate::rng::Rng;
use seda_crypto::ctr::CounterSeed;
use seda_crypto::otp::{
    BandwidthAwareOtp, OtpStrategy, SharedOtp, TraditionalOtp, PADS_PER_SCHEDULE,
};

/// Reference application: one `segment_otp` call per 16 B chunk, the
/// definitionally-correct (and slow) path every strategy must match.
fn reference_apply(otp: &dyn OtpStrategy, seed: CounterSeed, data: &[u8]) -> Vec<u8> {
    data.chunks(16)
        .enumerate()
        .flat_map(|(i, chunk)| {
            let pad = otp.segment_otp(seed, i);
            chunk
                .iter()
                .zip(pad.iter())
                .map(|(b, p)| b ^ p)
                .collect::<Vec<u8>>()
        })
        .collect()
}

/// A block length in bytes: 0, a partial trailing segment, or a span
/// crossing up to four schedule groups (> 640 B).
fn random_len(rng: &mut Rng) -> usize {
    match rng.below(4) {
        0 => rng.below(16) as usize,
        1 => (rng.range(1, 4) * 16 * PADS_PER_SCHEDULE as u64) as usize,
        2 => (rng.range(1, 4) * 16 * PADS_PER_SCHEDULE as u64) as usize + rng.range(1, 15) as usize,
        _ => rng.below(720) as usize,
    }
}

/// One randomized case over all three strategies.
pub fn check_case(rng: &mut Rng) -> Result<(), String> {
    let key = rng.block();
    let seed = CounterSeed::new(rng.below(1 << 40) & !0x3F, rng.below(1 << 20));
    let len = random_len(rng);
    let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();

    let baes = BandwidthAwareOtp::new(key);
    let taes = TraditionalOtp::new(key);
    let shared = SharedOtp::new(key);
    let strategies: [(&str, &dyn OtpStrategy); 3] =
        [("B-AES", &baes), ("T-AES", &taes), ("Shared", &shared)];
    let segments = len.div_ceil(16);

    for (name, otp) in strategies {
        let ctx = format!("{name}, len={len}, seed=({:#x},{})", seed.pa, seed.vn);

        // apply == the per-segment reference.
        let mut fast = data.clone();
        otp.apply(seed, &mut fast);
        let reference = reference_apply(otp, seed, &data);
        ensure!(
            fast == reference,
            "{ctx}: streamed apply diverges from per-segment reference \
             (first mismatch at byte {:?})",
            fast.iter().zip(&reference).position(|(a, b)| a != b)
        );

        // apply is self-inverse.
        otp.apply(seed, &mut fast);
        ensure!(fast == data, "{ctx}: double apply is not the identity");

        // Evaluation counts: zero blocks are free, counts are monotone in
        // the segment count, and T-AES dominates B-AES dominates nothing
        // below one evaluation per non-empty block.
        ensure!(
            otp.aes_evaluations(0) == 0,
            "{ctx}: empty block costs {} evaluations",
            otp.aes_evaluations(0)
        );
        if segments > 0 {
            let evals = otp.aes_evaluations(segments);
            ensure!(
                (1..=segments).contains(&evals),
                "{ctx}: {segments} segments cost {evals} evaluations"
            );
            ensure!(
                otp.aes_evaluations(segments + 1) >= evals,
                "{ctx}: evaluation count not monotone at {segments} segments"
            );
        }
    }

    // Pad-structure properties over the first `segments` pads.
    if segments >= 2 {
        let b_pads: Vec<[u8; 16]> = (0..segments).map(|i| baes.segment_otp(seed, i)).collect();
        let t_pads: Vec<[u8; 16]> = (0..segments).map(|i| taes.segment_otp(seed, i)).collect();
        for i in 0..segments {
            for j in i + 1..segments {
                ensure!(
                    b_pads[i] != b_pads[j],
                    "B-AES pads {i} and {j} collide at len={len}"
                );
                ensure!(
                    t_pads[i] != t_pads[j],
                    "T-AES pads {i} and {j} collide at len={len}"
                );
            }
        }
        // The strawman really is a strawman: all its pads coincide.
        let s0 = shared.segment_otp(seed, 0);
        ensure!(
            (1..segments).all(|i| shared.segment_otp(seed, i) == s0),
            "Shared OTP pads differ across segments at len={len}"
        );
    }

    // Distinct blocks never share a base pad (AES is a permutation, and
    // distinct (PA, VN) pairs produce distinct counter blocks).
    let other = CounterSeed::new(seed.pa ^ 0x40, seed.vn);
    ensure!(
        baes.segment_otp(seed, 0) != baes.segment_otp(other, 0),
        "adjacent blocks share a B-AES pad at seed ({:#x},{})",
        seed.pa,
        seed.vn
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{run_family, Family};

    #[test]
    fn otp_family_passes_fixed_seed() {
        let report = run_family(Family::Otp, 0xD1FF_0002, Family::Otp.default_cases());
        assert!(report.passed(), "{report}");
    }
}
