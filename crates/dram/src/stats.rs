//! Aggregate DRAM access statistics.

use crate::config::ACCESS_BYTES;
use crate::request::{Request, RowOutcome};
use serde::{Deserialize, Serialize};

/// Counters accumulated over a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses to a precharged bank.
    pub row_empties: u64,
    /// Accesses that had to close another row first.
    pub row_conflicts: u64,
    /// Cycles data transfers slipped past all-bank refresh windows.
    pub refresh_stall_cycles: u64,
    /// Cycles the data bus carried bursts (`accesses × t_bl`); dividing by
    /// the elapsed window gives achieved bus utilization.
    pub bus_busy_cycles: u64,
}

impl DramStats {
    /// Records one access outcome.
    pub fn record(&mut self, req: Request, outcome: RowOutcome) {
        self.record_kind(req.is_write, outcome);
    }

    /// Records one access outcome by direction, without a [`Request`] in
    /// hand — the batched replay kernels work on pre-decoded streams.
    #[inline]
    pub fn record_kind(&mut self, is_write: bool, outcome: RowOutcome) {
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        match outcome {
            RowOutcome::Hit => self.row_hits += 1,
            RowOutcome::Empty => self.row_empties += 1,
            RowOutcome::Conflict => self.row_conflicts += 1,
        }
    }

    /// Adds another set of counters into this one, field by field.
    ///
    /// Every counter is a commutative sum over accesses, so merging
    /// per-worker statistics in any order reproduces the serial totals —
    /// the property the sharded replay path relies on.
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_empties += other.row_empties;
        self.row_conflicts += other.row_conflicts;
        self.refresh_stall_cycles += other.refresh_stall_cycles;
        self.bus_busy_cycles += other.bus_busy_cycles;
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.accesses() * ACCESS_BYTES
    }

    /// Row-buffer hit rate in [0, 1]; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_of_empty_stats_is_zero() {
        assert_eq!(DramStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = DramStats::default();
        a.record(Request::read(0), RowOutcome::Empty);
        a.record(Request::write(64), RowOutcome::Hit);
        a.refresh_stall_cycles = 5;
        a.bus_busy_cycles = 8;
        let mut b = DramStats::default();
        b.record(Request::read(128), RowOutcome::Conflict);
        b.refresh_stall_cycles = 2;
        b.bus_busy_cycles = 4;
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.reads, 2);
        assert_eq!(merged.writes, 1);
        assert_eq!(merged.row_hits, 1);
        assert_eq!(merged.row_empties, 1);
        assert_eq!(merged.row_conflicts, 1);
        assert_eq!(merged.refresh_stall_cycles, 7);
        assert_eq!(merged.bus_busy_cycles, 12);
    }

    #[test]
    fn record_tallies_by_kind() {
        let mut s = DramStats::default();
        s.record(Request::read(0), RowOutcome::Empty);
        s.record(Request::write(64), RowOutcome::Hit);
        s.record(Request::read(128), RowOutcome::Conflict);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_empties, 1);
        assert_eq!(s.row_conflicts, 1);
        assert_eq!(s.bytes(), 192);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
