//! DRAM organization and timing configuration.
//!
//! Timing parameters are expressed in memory-controller clock cycles of a
//! DDR4-style device. The evaluation (Table II) attaches four 64-bit DDR
//! channels to both NPUs; per-channel peak bandwidth is
//! `8 B × 2 × f_mem`, so the memory clock is derived from the paper's
//! aggregate bandwidth figure.

use serde::{Deserialize, Serialize};

/// Size of one DRAM access (a burst of eight 64-bit beats) in bytes.
pub const ACCESS_BYTES: u64 = 64;

/// DRAM organization and timing, DDR4-flavoured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Memory-controller clock in Hz (command clock; data moves at 2×).
    pub clock_hz: f64,
    /// ACT-to-column command delay (tRCD), cycles.
    pub t_rcd: u64,
    /// Precharge delay (tRP), cycles.
    pub t_rp: u64,
    /// Read column-access latency (CL), cycles.
    pub t_cl: u64,
    /// Write column-access latency (CWL), cycles.
    pub t_cwl: u64,
    /// Minimum ACT-to-PRE interval (tRAS), cycles.
    pub t_ras: u64,
    /// Burst length on the data bus (BL8 on a DDR bus = 4 clock cycles).
    pub t_bl: u64,
    /// Write recovery time (tWR), cycles.
    pub t_wr: u64,
    /// Average refresh interval (tREFI), cycles. Zero disables refresh.
    pub t_refi: u64,
    /// Refresh cycle time (tRFC), cycles the channel is blocked per refresh.
    pub t_rfc: u64,
}

impl DramConfig {
    /// A DDR4-2400-class device behind four channels delivering the
    /// requested aggregate peak bandwidth in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or `peak_bandwidth` is not positive.
    pub fn ddr4_with_bandwidth(channels: u32, peak_bandwidth: f64) -> Self {
        assert!(channels > 0, "need at least one channel");
        assert!(peak_bandwidth > 0.0, "bandwidth must be positive");
        // Per channel: 8 B bus × 2 transfers/clock.
        let clock_hz = peak_bandwidth / f64::from(channels) / 16.0;
        Self {
            channels,
            ranks: 1,
            banks: 16,
            row_bytes: 8192,
            clock_hz,
            t_rcd: 16,
            t_rp: 16,
            t_cl: 16,
            t_cwl: 12,
            t_ras: 39,
            t_bl: 4,
            t_wr: 18,
            // 7.8 µs tREFI / 350 ns tRFC at the derived clock.
            t_refi: (7.8e-6 * clock_hz) as u64,
            t_rfc: (350.0e-9 * clock_hz) as u64,
        }
    }

    /// Table II server NPU memory system: 20 GB/s over 4 channels.
    pub fn server() -> Self {
        Self::ddr4_with_bandwidth(4, 20.0e9)
    }

    /// Table II edge NPU memory system: 10 GB/s over 4 channels.
    pub fn edge() -> Self {
        Self::ddr4_with_bandwidth(4, 10.0e9)
    }

    /// Aggregate peak bandwidth in bytes/second.
    pub fn peak_bandwidth(&self) -> f64 {
        f64::from(self.channels) * 16.0 * self.clock_hz
    }

    /// Number of 64 B column slots in one row.
    pub fn columns_per_row(&self) -> u64 {
        self.row_bytes / ACCESS_BYTES
    }

    /// Converts memory-controller cycles to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_round_trips() {
        let c = DramConfig::server();
        assert!((c.peak_bandwidth() - 20.0e9).abs() < 1.0);
        let e = DramConfig::edge();
        assert!((e.peak_bandwidth() - 10.0e9).abs() < 1.0);
    }

    #[test]
    fn row_holds_power_of_two_columns() {
        let c = DramConfig::server();
        assert_eq!(c.columns_per_row(), 128);
        assert!(c.columns_per_row().is_power_of_two());
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = DramConfig::ddr4_with_bandwidth(0, 1.0e9);
    }
}
