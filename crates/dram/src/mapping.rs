//! Physical-address to DRAM-coordinate mapping.
//!
//! The interleaving order, from least-significant block bits upward, is
//! `channel : column : bank : rank : row` — 64 B blocks stripe across
//! channels first (maximizing channel parallelism for streaming tensors),
//! then walk a row's columns, then rotate banks. This matches the
//! bandwidth-balanced mapping DNN accelerator studies assume.

use crate::config::{DramConfig, ACCESS_BYTES};
use serde::{Deserialize, Serialize};

/// A decoded DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramCoord {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// Column (64 B slot) index within the row.
    pub column: u64,
}

/// Maps byte addresses to DRAM coordinates for a given organization.
#[derive(Debug, Clone)]
pub struct AddressMapping {
    channels: u64,
    ranks: u64,
    banks: u64,
    columns: u64,
}

impl AddressMapping {
    /// Builds the mapping for `config`.
    ///
    /// # Panics
    ///
    /// Panics if channel, rank, bank, or column counts are not powers of
    /// two (required for bit-sliced decoding).
    pub fn new(config: &DramConfig) -> Self {
        let m = Self {
            channels: u64::from(config.channels),
            ranks: u64::from(config.ranks),
            banks: u64::from(config.banks),
            columns: config.columns_per_row(),
        };
        assert!(
            m.channels.is_power_of_two()
                && m.ranks.is_power_of_two()
                && m.banks.is_power_of_two()
                && m.columns.is_power_of_two(),
            "DRAM organization dims must be powers of two"
        );
        m
    }

    /// Decodes a byte address into its DRAM coordinate.
    pub fn decode(&self, addr: u64) -> DramCoord {
        let mut block = addr / ACCESS_BYTES;
        let channel = block % self.channels;
        block /= self.channels;
        let column = block % self.columns;
        block /= self.columns;
        let bank = block % self.banks;
        block /= self.banks;
        let rank = block % self.ranks;
        block /= self.ranks;
        DramCoord {
            channel: channel as u32,
            rank: rank as u32,
            bank: bank as u32,
            row: block,
            column,
        }
    }

    /// Re-encodes a coordinate into the base byte address of its 64 B slot.
    pub fn encode(&self, coord: DramCoord) -> u64 {
        let mut block = coord.row;
        block = block * self.ranks + u64::from(coord.rank);
        block = block * self.banks + u64::from(coord.bank);
        block = block * self.columns + coord.column;
        block = block * self.channels + u64::from(coord.channel);
        block * ACCESS_BYTES
    }

    /// Number of channels the mapping stripes over.
    pub fn channels(&self) -> u32 {
        self.channels as u32
    }

    /// Number of banks per rank.
    pub fn banks(&self) -> u32 {
        self.banks as u32
    }

    /// Number of ranks per channel.
    pub fn ranks(&self) -> u32 {
        self.ranks as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_round_trip() {
        let m = AddressMapping::new(&DramConfig::server());
        for addr in [0u64, 64, 4096, 1 << 20, (1 << 34) + 8 * 64] {
            let coord = m.decode(addr);
            assert_eq!(m.encode(coord), addr & !(ACCESS_BYTES - 1));
        }
    }

    #[test]
    fn consecutive_blocks_stripe_channels() {
        let m = AddressMapping::new(&DramConfig::server());
        let c0 = m.decode(0);
        let c1 = m.decode(64);
        let c2 = m.decode(128);
        assert_eq!(c0.channel, 0);
        assert_eq!(c1.channel, 1);
        assert_eq!(c2.channel, 2);
        assert_eq!(c0.row, c1.row);
    }

    #[test]
    fn same_slot_bytes_share_coordinate() {
        let m = AddressMapping::new(&DramConfig::edge());
        assert_eq!(m.decode(100), m.decode(64));
        assert_ne!(m.decode(100), m.decode(128));
    }

    #[test]
    fn row_changes_after_walking_columns() {
        let cfg = DramConfig::server();
        let m = AddressMapping::new(&cfg);
        // One full row per channel spans columns*channels blocks.
        let row_span = cfg.columns_per_row() * u64::from(cfg.channels) * ACCESS_BYTES;
        let a = m.decode(0);
        let b = m.decode(row_span);
        assert_eq!(b.channel, a.channel);
        assert_ne!((b.bank, b.row), (a.bank, a.row));
    }
}
