//! Physical-address to DRAM-coordinate mapping.
//!
//! The interleaving order, from least-significant block bits upward, is
//! `channel : column : bank : rank : row` — 64 B blocks stripe across
//! channels first (maximizing channel parallelism for streaming tensors),
//! then walk a row's columns, then rotate banks. This matches the
//! bandwidth-balanced mapping DNN accelerator studies assume.
//!
//! Every organization dimension is a power of two, so the mapping is a
//! pure bit-slicing: decoding is shifts and masks, with no division or
//! remainder anywhere on the path. The replay fast path decodes every
//! request, so this is one of the hottest few instructions sequences in
//! the workspace; the property suite in `tests/properties.rs` pins the
//! bit-sliced form against an independent div/mod oracle.

use crate::config::{DramConfig, ACCESS_BYTES};
use serde::{Deserialize, Serialize};

/// Shift from a byte address to its 64 B block index.
const BLOCK_SHIFT: u32 = ACCESS_BYTES.trailing_zeros();

/// A decoded DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramCoord {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// Column (64 B slot) index within the row.
    pub column: u64,
}

/// Maps byte addresses to DRAM coordinates for a given organization.
///
/// Construction precomputes the bit widths of every field; [`decode`]
/// and [`encode`] are then pure shift/mask pipelines.
///
/// [`decode`]: AddressMapping::decode
/// [`encode`]: AddressMapping::encode
#[derive(Debug, Clone)]
pub struct AddressMapping {
    /// log2(channels).
    ch_bits: u32,
    /// log2(columns per row).
    col_bits: u32,
    /// log2(banks per rank).
    bank_bits: u32,
    /// log2(ranks per channel).
    rank_bits: u32,
}

impl AddressMapping {
    /// Builds the mapping for `config`.
    ///
    /// # Panics
    ///
    /// Panics if channel, rank, bank, or column counts are not powers of
    /// two (required for bit-sliced decoding).
    pub fn new(config: &DramConfig) -> Self {
        let channels = u64::from(config.channels);
        let ranks = u64::from(config.ranks);
        let banks = u64::from(config.banks);
        let columns = config.columns_per_row();
        assert!(
            channels.is_power_of_two()
                && ranks.is_power_of_two()
                && banks.is_power_of_two()
                && columns.is_power_of_two(),
            "DRAM organization dims must be powers of two"
        );
        Self {
            ch_bits: channels.trailing_zeros(),
            col_bits: columns.trailing_zeros(),
            bank_bits: banks.trailing_zeros(),
            rank_bits: ranks.trailing_zeros(),
        }
    }

    /// Decodes a byte address into its DRAM coordinate.
    #[inline]
    pub fn decode(&self, addr: u64) -> DramCoord {
        let block = addr >> BLOCK_SHIFT;
        let channel = block & mask(self.ch_bits);
        let column = (block >> self.ch_bits) & mask(self.col_bits);
        let bank = (block >> (self.ch_bits + self.col_bits)) & mask(self.bank_bits);
        let rank =
            (block >> (self.ch_bits + self.col_bits + self.bank_bits)) & mask(self.rank_bits);
        let row = block >> (self.ch_bits + self.col_bits + self.bank_bits + self.rank_bits);
        DramCoord {
            channel: channel as u32,
            rank: rank as u32,
            bank: bank as u32,
            row,
            column,
        }
    }

    /// Re-encodes a coordinate into the base byte address of its 64 B slot.
    #[inline]
    pub fn encode(&self, coord: DramCoord) -> u64 {
        let mut block = coord.row;
        block = (block << self.rank_bits) | u64::from(coord.rank);
        block = (block << self.bank_bits) | u64::from(coord.bank);
        block = (block << self.col_bits) | coord.column;
        block = (block << self.ch_bits) | u64::from(coord.channel);
        block << BLOCK_SHIFT
    }

    /// Number of channels the mapping stripes over.
    pub fn channels(&self) -> u32 {
        1 << self.ch_bits
    }

    /// Number of banks per rank.
    pub fn banks(&self) -> u32 {
        1 << self.bank_bits
    }

    /// Number of ranks per channel.
    pub fn ranks(&self) -> u32 {
        1 << self.rank_bits
    }

    /// The 64 B block index of `addr` (its channel-interleaved slot).
    #[inline]
    pub(crate) fn block_of(addr: u64) -> u64 {
        addr >> BLOCK_SHIFT
    }

    /// log2(channels), for the test suite's channel extraction.
    #[cfg(test)]
    pub(crate) fn ch_bits(&self) -> u32 {
        self.ch_bits
    }

    /// Bits below the (bank, rank, row) fields: `log2(channels × columns)`.
    ///
    /// Two blocks share their per-channel `(bank, rank, row)` triple
    /// exactly when they agree above these bits, which is the streak
    /// detector's "same super-row region" test.
    #[inline]
    pub(crate) fn region_bits(&self) -> u32 {
        self.ch_bits + self.col_bits
    }

    /// The flat bank index within a channel: `rank * banks + bank`.
    ///
    /// Because `banks` is a power of two, this equals the `(rank, bank)`
    /// bit fields read as one integer, so it is a single shift + mask.
    #[inline]
    pub(crate) fn bank_index(&self, block: u64) -> usize {
        ((block >> self.region_bits()) & self.bank_rank_mask()) as usize
    }

    /// All-ones mask over the combined `(rank, bank)` bit fields — the
    /// width of [`AddressMapping::bank_index`].
    #[inline]
    pub(crate) fn bank_rank_mask(&self) -> u64 {
        mask(self.bank_bits + self.rank_bits)
    }

    /// Shift from a block index to its row index (the bits above channel,
    /// column, bank, and rank).
    #[inline]
    pub(crate) fn row_shift(&self) -> u32 {
        self.region_bits() + self.bank_bits + self.rank_bits
    }

    /// Row index of a block (the bits above bank and rank).
    #[inline]
    pub(crate) fn row_of(&self, block: u64) -> u64 {
        block >> self.row_shift()
    }
}

/// An all-ones mask of `bits` low bits.
#[inline]
fn mask(bits: u32) -> u64 {
    (1 << bits) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_round_trip() {
        let m = AddressMapping::new(&DramConfig::server());
        for addr in [0u64, 64, 4096, 1 << 20, (1 << 34) + 8 * 64] {
            let coord = m.decode(addr);
            assert_eq!(m.encode(coord), addr & !(ACCESS_BYTES - 1));
        }
    }

    #[test]
    fn consecutive_blocks_stripe_channels() {
        let m = AddressMapping::new(&DramConfig::server());
        let c0 = m.decode(0);
        let c1 = m.decode(64);
        let c2 = m.decode(128);
        assert_eq!(c0.channel, 0);
        assert_eq!(c1.channel, 1);
        assert_eq!(c2.channel, 2);
        assert_eq!(c0.row, c1.row);
    }

    #[test]
    fn same_slot_bytes_share_coordinate() {
        let m = AddressMapping::new(&DramConfig::edge());
        assert_eq!(m.decode(100), m.decode(64));
        assert_ne!(m.decode(100), m.decode(128));
    }

    #[test]
    fn row_changes_after_walking_columns() {
        let cfg = DramConfig::server();
        let m = AddressMapping::new(&cfg);
        // One full row per channel spans columns*channels blocks.
        let row_span = cfg.columns_per_row() * u64::from(cfg.channels) * ACCESS_BYTES;
        let a = m.decode(0);
        let b = m.decode(row_span);
        assert_eq!(b.channel, a.channel);
        assert_ne!((b.bank, b.row), (a.bank, a.row));
    }

    #[test]
    fn fast_field_helpers_agree_with_decode() {
        let cfg = DramConfig::server();
        let m = AddressMapping::new(&cfg);
        for addr in (0u64..1 << 22).step_by(64 * 7) {
            let c = m.decode(addr);
            let block = AddressMapping::block_of(addr);
            assert_eq!(
                block & u64::from(mask_u32(m.ch_bits())),
                u64::from(c.channel)
            );
            assert_eq!(m.bank_index(block), (c.rank * cfg.banks + c.bank) as usize);
            assert_eq!(m.row_of(block), c.row);
        }
    }

    fn mask_u32(bits: u32) -> u32 {
        (1u32 << bits) - 1
    }
}
