//! Command-level DRAM simulation (the slow, high-fidelity path).
//!
//! Where [`crate::DramSim`] computes per-access timing with closed-form
//! bank state updates, this module schedules explicit DRAM commands —
//! ACT, PRE, RD, WR, and all-bank REF — over a reorder window with
//! FR-FCFS arbitration (row hits first, then oldest), the policy
//! Ramulator-class simulators implement. It exists to validate the fast
//! path (see the cross-check tests and `validate_dram` binary) and for
//! experiments that need command traces.

use crate::config::DramConfig;
use crate::mapping::AddressMapping;
use crate::request::Request;
use std::collections::VecDeque;

/// Scheduler reorder-window size (requests considered per decision).
pub const WINDOW: usize = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BankState {
    Precharged,
    Activating { ready_at: u64, row: u64 },
    Active { row: u64 },
    Precharging { ready_at: u64 },
}

#[derive(Debug, Clone)]
struct CmdBank {
    state: BankState,
    /// Earliest cycle for the next column command (tCCD spacing).
    next_col: u64,
    /// Earliest cycle a precharge may begin (tRAS / write recovery).
    pre_ok_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: Request,
    bank: usize,
    row: u64,
    seq: u64,
}

/// A per-channel command scheduler.
#[derive(Debug)]
struct ChannelSim {
    banks: Vec<CmdBank>,
    queue: VecDeque<Pending>,
    now: u64,
    bus_free: u64,
    issued_reads: u64,
    issued_writes: u64,
    activates: u64,
    precharges: u64,
}

impl ChannelSim {
    fn new(bank_count: usize) -> Self {
        Self {
            banks: vec![
                CmdBank {
                    state: BankState::Precharged,
                    next_col: 0,
                    pre_ok_at: 0,
                };
                bank_count
            ],
            queue: VecDeque::new(),
            now: 0,
            bus_free: 0,
            issued_reads: 0,
            issued_writes: 0,
            activates: 0,
            precharges: 0,
        }
    }

    fn in_refresh(cfg: &DramConfig, t: u64) -> bool {
        cfg.t_refi > 0 && t % cfg.t_refi < cfg.t_rfc
    }

    fn next_after_refresh(cfg: &DramConfig, t: u64) -> u64 {
        if Self::in_refresh(cfg, t) {
            t / cfg.t_refi * cfg.t_refi + cfg.t_rfc
        } else {
            t
        }
    }

    /// Advances until the queue drains.
    fn drain(&mut self, cfg: &DramConfig) {
        while !self.queue.is_empty() {
            if !self.step(cfg) {
                // Nothing issuable this cycle: jump to the next event.
                self.now = self.next_event(cfg);
            }
        }
    }

    /// Earliest future cycle at which any state changes.
    fn next_event(&self, cfg: &DramConfig) -> u64 {
        let mut t = u64::MAX;
        for b in &self.banks {
            match b.state {
                BankState::Activating { ready_at, .. } | BankState::Precharging { ready_at } => {
                    t = t.min(ready_at)
                }
                BankState::Active { .. } => t = t.min(b.next_col.max(b.pre_ok_at)),
                BankState::Precharged => {}
            }
        }
        let t_ref = Self::next_after_refresh(cfg, self.now);
        if t_ref > self.now {
            t = t.min(t_ref);
        }
        t.min(self.bus_free).max(self.now + 1)
    }

    /// Attempts to issue one command at `self.now`; returns whether
    /// anything was issued.
    fn step(&mut self, cfg: &DramConfig) -> bool {
        let now = self.now;
        if Self::in_refresh(cfg, now) {
            return false;
        }
        // Settle bank state transitions.
        for b in self.banks.iter_mut() {
            match b.state {
                BankState::Activating { ready_at, row } if now >= ready_at => {
                    b.state = BankState::Active { row };
                }
                BankState::Precharging { ready_at } if now >= ready_at => {
                    b.state = BankState::Precharged;
                }
                _ => {}
            }
        }

        let window = self.queue.len().min(WINDOW);
        // 1. FR: oldest row-hit column command that fits the bus.
        for i in 0..window {
            let p = self.queue[i];
            let bank = &self.banks[p.bank];
            let hit = matches!(bank.state, BankState::Active { row } if row == p.row);
            if hit && now >= bank.next_col {
                let cas = if p.req.is_write { cfg.t_cwl } else { cfg.t_cl };
                let data_start = (now + cas).max(self.bus_free);
                // Do not start a burst that would collide with refresh.
                if Self::in_refresh(cfg, data_start) {
                    continue;
                }
                self.bus_free = data_start + cfg.t_bl;
                let bank = &mut self.banks[p.bank];
                bank.next_col = now + cfg.t_bl.max(4);
                bank.pre_ok_at = bank.pre_ok_at.max(if p.req.is_write {
                    data_start + cfg.t_bl + cfg.t_wr
                } else {
                    data_start + cfg.t_bl
                });
                if p.req.is_write {
                    self.issued_writes += 1;
                } else {
                    self.issued_reads += 1;
                }
                self.queue.remove(i);
                return true;
            }
        }
        // 2. FCFS: oldest request needing an ACT on a precharged bank.
        for i in 0..window {
            let p = self.queue[i];
            if self.banks[p.bank].state == BankState::Precharged {
                self.banks[p.bank].state = BankState::Activating {
                    ready_at: now + cfg.t_rcd,
                    row: p.row,
                };
                self.banks[p.bank].pre_ok_at = now + cfg.t_ras;
                self.activates += 1;
                return true;
            }
        }
        // 3. Oldest request blocked by a wrong open row: precharge.
        for i in 0..window {
            let p = self.queue[i];
            let bank = &self.banks[p.bank];
            if let BankState::Active { row } = bank.state {
                if row != p.row && now >= bank.pre_ok_at {
                    self.banks[p.bank].state = BankState::Precharging {
                        ready_at: now + cfg.t_rp,
                    };
                    self.precharges += 1;
                    return true;
                }
            }
        }
        false
    }
}

/// Aggregate statistics of a command-level run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommandStats {
    /// Read bursts issued.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// Activate commands issued.
    pub activates: u64,
    /// Precharge commands issued.
    pub precharges: u64,
    /// Total cycles until the last channel drained.
    pub cycles: u64,
}

/// Runs a request stream through the command-level scheduler.
///
/// Requests arrive instantly (an open front-end); the result is the cycle
/// count to drain them all, per the slowest channel.
pub fn simulate_commands<I: IntoIterator<Item = Request>>(
    cfg: &DramConfig,
    requests: I,
) -> CommandStats {
    let mapping = AddressMapping::new(cfg);
    let mut channels: Vec<ChannelSim> = (0..cfg.channels)
        .map(|_| ChannelSim::new((cfg.banks * cfg.ranks) as usize))
        .collect();
    for (seq, req) in requests.into_iter().enumerate() {
        let coord = mapping.decode(req.addr);
        let bank = (coord.rank * cfg.banks + coord.bank) as usize;
        channels[coord.channel as usize].queue.push_back(Pending {
            req,
            bank,
            row: coord.row,
            seq: seq as u64,
        });
    }
    let mut stats = CommandStats::default();
    for ch in channels.iter_mut() {
        ch.drain(cfg);
        stats.reads += ch.issued_reads;
        stats.writes += ch.issued_writes;
        stats.activates += ch.activates;
        stats.precharges += ch.precharges;
        stats.cycles = stats.cycles.max(ch.bus_free);
    }
    // `seq` is carried for deterministic debugging; silence the lint.
    let _ = |p: Pending| p.seq;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ACCESS_BYTES;
    use crate::controller::DramSim;

    fn sequential(n: u64) -> Vec<Request> {
        (0..n).map(|i| Request::read(i * ACCESS_BYTES)).collect()
    }

    #[test]
    fn all_requests_are_served() {
        let cfg = DramConfig::server();
        let stats = simulate_commands(&cfg, sequential(5000));
        assert_eq!(stats.reads, 5000);
        assert_eq!(stats.writes, 0);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn streaming_needs_few_activates() {
        let cfg = DramConfig::server();
        let stats = simulate_commands(&cfg, sequential(10_000));
        // 10k accesses walk ~20 rows across 4 channels/16 banks.
        assert!(
            stats.activates < 100,
            "streaming should activate rarely: {}",
            stats.activates
        );
    }

    #[test]
    fn row_thrash_needs_many_activates() {
        let cfg = DramConfig::server();
        let row_span =
            cfg.columns_per_row() * u64::from(cfg.channels) * u64::from(cfg.banks) * ACCESS_BYTES;
        let reqs: Vec<Request> = (0..2000u64)
            .map(|i| Request::read((i % 7) * row_span + (i % 3) * 13 * row_span))
            .collect();
        let stats = simulate_commands(&cfg, reqs);
        assert!(
            stats.activates > 100,
            "thrash must activate: {}",
            stats.activates
        );
        assert!(stats.precharges > 100);
    }

    #[test]
    fn cross_validates_fast_model_on_streams() {
        let cfg = DramConfig::server();
        let reqs = sequential(20_000);
        let cmd = simulate_commands(&cfg, reqs.clone());
        let mut fast = DramSim::new(cfg);
        fast.run(reqs);
        let ratio = cmd.cycles as f64 / fast.elapsed_cycles() as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "fast vs command-level divergence on streams: {ratio:.3}"
        );
    }

    #[test]
    fn cross_validates_fast_model_on_mixed_traffic() {
        let cfg = DramConfig::edge();
        // A protection-like mix: data stream + scattered metadata.
        let mut reqs = Vec::new();
        for i in 0..8_000u64 {
            reqs.push(Request::read(i * ACCESS_BYTES));
            if i % 8 == 0 {
                reqs.push(Request::read((1 << 30) + i / 8 * ACCESS_BYTES));
            }
            if i % 64 == 0 {
                reqs.push(Request::write((1 << 31) + i * ACCESS_BYTES));
            }
        }
        let cmd = simulate_commands(&cfg, reqs.clone());
        let mut fast = DramSim::new(cfg);
        fast.run(reqs);
        // The command scheduler sees the whole queue up front (an open
        // front-end with perfect lookahead), so on scatter-heavy mixes it
        // lower-bounds the in-order fast model — by up to ~2x — while
        // never beating it by more than the reorder window can explain.
        let ratio = cmd.cycles as f64 / fast.elapsed_cycles() as f64;
        assert!(
            (0.4..1.4).contains(&ratio),
            "fast vs command-level divergence on mixed: {ratio:.3}"
        );
    }

    #[test]
    fn writes_are_scheduled_too() {
        let cfg = DramConfig::edge();
        let reqs: Vec<Request> = (0..1000u64)
            .map(|i| Request::write(i * ACCESS_BYTES))
            .collect();
        let stats = simulate_commands(&cfg, reqs);
        assert_eq!(stats.writes, 1000);
    }

    #[test]
    fn refresh_windows_delay_but_do_not_drop() {
        let cfg = DramConfig::server();
        let no_ref = DramConfig {
            t_refi: 0,
            ..cfg.clone()
        };
        let with = simulate_commands(&cfg, sequential(200_000));
        let without = simulate_commands(&no_ref, sequential(200_000));
        assert_eq!(with.reads, without.reads);
        assert!(with.cycles > without.cycles);
        let overhead = with.cycles as f64 / without.cycles as f64;
        assert!(overhead < 1.10, "refresh overhead {overhead:.3}");
    }
}
