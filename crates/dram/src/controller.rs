//! Per-channel memory controller with bank state tracking.
//!
//! The model is an open-page policy with in-order issue per channel and
//! bank-level parallelism: a request's column command waits for its bank
//! (activate/precharge latency on a row miss) while other banks' transfers
//! keep the data bus busy. This captures the first-order behaviour that
//! differentiates protection schemes — metadata accesses break row locality
//! and add serialized activates — without a full command-level replay.

use crate::config::DramConfig;
use crate::mapping::{AddressMapping, DramCoord};
use crate::request::{Request, RowOutcome};
use crate::stats::DramStats;

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest cycle the bank can accept its next column command
    /// (enforces column-to-column spacing, tCCD).
    next_col: u64,
    /// Cycle after which the bank may be precharged (in-flight data plus
    /// write recovery must drain first).
    busy_until: u64,
    /// Cycle of the last activate (for tRAS enforcement on precharge).
    activated: u64,
    /// Cumulative cycles this bank spent occupied by an access (column
    /// command through data drain and write recovery).
    occupied: u64,
}

impl BankState {
    fn new() -> Self {
        Self {
            open_row: None,
            next_col: 0,
            busy_until: 0,
            activated: 0,
            occupied: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct Channel {
    banks: Vec<BankState>,
    /// Cycle after which the data bus is free.
    bus_free: u64,
    /// Clock of the most recent command issue (monotonic per channel).
    now: u64,
}

impl Channel {
    fn new(bank_count: usize) -> Self {
        Self {
            banks: vec![BankState::new(); bank_count],
            bus_free: 0,
            now: 0,
        }
    }
}

/// Timing of one access: its row-buffer outcome plus the half-open
/// `[data_start, data_end)` window its data occupied the channel bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTiming {
    /// Row-buffer outcome of the access.
    pub outcome: RowOutcome,
    /// Channel the access mapped to.
    pub channel: u32,
    /// Memory-controller cycle the data burst started on the bus.
    pub data_start: u64,
    /// Cycle the data burst left the bus (`data_start + t_bl`).
    pub data_end: u64,
}

/// A multi-channel DRAM timing simulator.
///
/// Feed it a request stream with [`DramSim::access`] (or in bulk with
/// [`DramSim::run`]) and read aggregate timing from [`DramSim::stats`].
/// Bank and bus state persist across calls, so a whole inference can be
/// simulated layer by layer.
///
/// # Examples
///
/// ```
/// use seda_dram::{DramConfig, DramSim, Request};
///
/// let mut sim = DramSim::new(DramConfig::edge());
/// for i in 0..1024u64 {
///     sim.access(Request::read(i * 64));
/// }
/// let stats = sim.stats();
/// assert_eq!(stats.reads, 1024);
/// assert!(stats.row_hits > stats.row_conflicts, "streaming should hit rows");
/// ```
#[derive(Debug, Clone)]
pub struct DramSim {
    config: DramConfig,
    mapping: AddressMapping,
    channels: Vec<Channel>,
    stats: DramStats,
}

impl DramSim {
    /// Creates a simulator with all banks precharged at cycle zero.
    pub fn new(config: DramConfig) -> Self {
        let mapping = AddressMapping::new(&config);
        let channels = (0..config.channels)
            .map(|_| Channel::new((config.banks * config.ranks) as usize))
            .collect();
        Self {
            config,
            mapping,
            channels,
            stats: DramStats::default(),
        }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Simulates one 64 B access and returns its row-buffer outcome.
    pub fn access(&mut self, req: Request) -> RowOutcome {
        self.access_timed(req).outcome
    }

    /// Like [`DramSim::access`], additionally exposing the transfer's
    /// data-bus occupancy window — the observability hook the validation
    /// harness uses to check refresh exclusion, bus serialization, and
    /// per-channel clock monotonicity without reconstructing timings from
    /// aggregate counters.
    pub fn access_timed(&mut self, req: Request) -> AccessTiming {
        let coord = self.mapping.decode(req.addr);
        let timing = self.access_decoded(req, coord);
        self.stats.record(req, timing.outcome);
        timing
    }

    fn access_decoded(&mut self, req: Request, coord: DramCoord) -> AccessTiming {
        let cfg = &self.config;
        let ch = &mut self.channels[coord.channel as usize];
        let bank_idx = (coord.rank * cfg.banks + coord.bank) as usize;
        let bank = &mut ch.banks[bank_idx];

        // FR-FCFS-style front end: a request to a ready bank may issue
        // while another bank resolves a row conflict; only the data bus
        // and per-bank state serialize. `now` advances with the stream so
        // requests cannot issue before they arrive.
        let arrival = ch.now;
        let outcome;
        // Cycle at which the column command can be issued to this bank.
        let col_ready = match bank.open_row {
            Some(row) if row == coord.row => {
                outcome = RowOutcome::Hit;
                arrival.max(bank.next_col)
            }
            Some(_) => {
                outcome = RowOutcome::Conflict;
                // Precharge (after in-flight data drains and tRAS elapses),
                // then activate, then the column command after tRCD.
                let pre_at = arrival.max(bank.busy_until).max(bank.activated + cfg.t_ras);
                let act_at = pre_at + cfg.t_rp;
                bank.activated = act_at;
                act_at + cfg.t_rcd
            }
            None => {
                outcome = RowOutcome::Empty;
                let act_at = arrival.max(bank.next_col);
                bank.activated = act_at;
                act_at + cfg.t_rcd
            }
        };
        bank.open_row = Some(coord.row);

        let cas = if req.is_write { cfg.t_cwl } else { cfg.t_cl };
        // Data occupies the bus for t_bl cycles after CAS latency; column
        // commands to the same bank pipeline at tCCD (= burst) spacing.
        // All-bank refresh blocks the channel for tRFC every tREFI: a
        // transfer landing inside a refresh window slips past it.
        let mut data_start = (col_ready + cas).max(ch.bus_free);
        if cfg.t_refi > 0 {
            let phase = data_start % cfg.t_refi;
            if phase < cfg.t_rfc {
                self.stats.refresh_stall_cycles += cfg.t_rfc - phase;
                data_start += cfg.t_rfc - phase;
            }
        }
        let data_end = data_start + cfg.t_bl;
        self.stats.bus_busy_cycles += cfg.t_bl;
        ch.bus_free = data_end;
        // Arrival time advances with the bus, not with stalled banks: a
        // conflicted request does not block younger requests to other banks.
        ch.now = ch.now.max(data_start.saturating_sub(cas + cfg.t_rcd));
        bank.next_col = data_start - cas + cfg.t_bl;
        bank.busy_until = if req.is_write {
            data_end + cfg.t_wr
        } else {
            data_end
        };
        bank.occupied += bank.busy_until - col_ready;
        AccessTiming {
            outcome,
            channel: coord.channel,
            data_start,
            data_end,
        }
    }

    /// Simulates a request stream.
    pub fn run<I: IntoIterator<Item = Request>>(&mut self, requests: I) {
        for r in requests {
            self.access(r);
        }
    }

    /// Total elapsed memory-controller cycles (the slowest channel's clock).
    pub fn elapsed_cycles(&self) -> u64 {
        self.channels.iter().map(|c| c.bus_free).max().unwrap_or(0)
    }

    /// Elapsed time in seconds at the configured memory clock.
    pub fn elapsed_seconds(&self) -> f64 {
        self.config.cycles_to_seconds(self.elapsed_cycles())
    }

    /// Aggregate access statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Achieved bandwidth in bytes/second over the elapsed window.
    pub fn achieved_bandwidth(&self) -> f64 {
        let secs = self.elapsed_seconds();
        if secs == 0.0 {
            0.0
        } else {
            self.stats.bytes() as f64 / secs
        }
    }

    /// Cumulative occupied cycles of every bank, channel-major.
    pub fn bank_occupancy_cycles(&self) -> Vec<u64> {
        self.channels
            .iter()
            .flat_map(|c| c.banks.iter().map(|b| b.occupied))
            .collect()
    }

    /// Emits the simulator's cumulative activity to the global telemetry
    /// sink: access/row-outcome/refresh/bus counters plus one
    /// `dram.bank_occupancy_cycles` histogram sample per bank.
    ///
    /// Hot-path accounting lives in plain [`DramStats`] fields and the
    /// per-bank `occupied` tallies, so the per-access loop carries no
    /// telemetry dispatch; callers flush once per simulator lifetime
    /// (the pipeline kernel does so at the end of each run).
    pub fn emit_telemetry(&self) {
        if !seda_telemetry::enabled() {
            return;
        }
        let s = &self.stats;
        seda_telemetry::counter_add("dram.reads", s.reads);
        seda_telemetry::counter_add("dram.writes", s.writes);
        seda_telemetry::counter_add("dram.row_hits", s.row_hits);
        seda_telemetry::counter_add("dram.row_empties", s.row_empties);
        seda_telemetry::counter_add("dram.row_conflicts", s.row_conflicts);
        seda_telemetry::counter_add("dram.refresh_stall_cycles", s.refresh_stall_cycles);
        seda_telemetry::counter_add("dram.bus_busy_cycles", s.bus_busy_cycles);
        for occupied in self.bank_occupancy_cycles() {
            seda_telemetry::record("dram.bank_occupancy_cycles", occupied);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ACCESS_BYTES;

    fn sim() -> DramSim {
        DramSim::new(DramConfig::server())
    }

    #[test]
    fn sequential_stream_approaches_peak_bandwidth() {
        let mut s = sim();
        for i in 0..100_000u64 {
            s.access(Request::read(i * ACCESS_BYTES));
        }
        let eff = s.achieved_bandwidth() / s.config().peak_bandwidth();
        assert!(eff > 0.85, "streaming efficiency too low: {eff:.3}");
    }

    #[test]
    fn random_rows_are_much_slower() {
        let mut seq = sim();
        let mut rnd = sim();
        let n = 20_000u64;
        for i in 0..n {
            seq.access(Request::read(i * ACCESS_BYTES));
            // Jump a whole row per access within one bank's address space.
            let row_span = 8192 * 4; // row_bytes * channels
            rnd.access(Request::read((i * 7919) % 4096 * row_span));
        }
        assert!(
            rnd.elapsed_cycles() > 2 * seq.elapsed_cycles(),
            "row conflicts should cost: rnd={} seq={}",
            rnd.elapsed_cycles(),
            seq.elapsed_cycles()
        );
    }

    #[test]
    fn first_access_is_an_empty_row() {
        let mut s = sim();
        assert_eq!(s.access(Request::read(0)), RowOutcome::Empty);
        assert_eq!(s.access(Request::read(0)), RowOutcome::Hit);
    }

    #[test]
    fn conflict_detected_on_row_change() {
        let cfg = DramConfig::server();
        // Same channel, same bank, next row: skip over all columns, banks,
        // and ranks of the interleaving.
        let row_span = cfg.columns_per_row()
            * u64::from(cfg.channels)
            * u64::from(cfg.banks)
            * u64::from(cfg.ranks)
            * ACCESS_BYTES;
        let mut s = DramSim::new(cfg);
        s.access(Request::read(0));
        assert_eq!(s.access(Request::read(row_span)), RowOutcome::Conflict);
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let mut s = sim();
        s.access(Request::read(0));
        s.access(Request::write(64));
        s.access(Request::write(128));
        assert_eq!(s.stats().reads, 1);
        assert_eq!(s.stats().writes, 2);
        assert_eq!(s.stats().bytes(), 3 * ACCESS_BYTES);
    }

    #[test]
    fn bus_and_bank_occupancy_accounting() {
        let mut s = sim();
        for i in 0..1000u64 {
            s.access(Request::read(i * ACCESS_BYTES));
        }
        let t_bl = s.config().t_bl;
        assert_eq!(s.stats().bus_busy_cycles, 1000 * t_bl);
        let occupied: u64 = s.bank_occupancy_cycles().iter().sum();
        assert!(
            occupied >= 1000 * t_bl,
            "each access occupies a bank for at least its burst: {occupied}"
        );
    }

    #[test]
    fn elapsed_cycles_monotone() {
        let mut s = sim();
        let mut last = 0;
        for i in 0..100 {
            s.access(Request::read(i * 64));
            let e = s.elapsed_cycles();
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn channels_share_load_for_striped_streams() {
        let mut s = sim();
        for i in 0..4096u64 {
            s.access(Request::read(i * ACCESS_BYTES));
        }
        // A striped stream of N accesses at 4 channels and tBL=4 should take
        // roughly N/4 * tBL cycles, far below serial N * tBL.
        let cycles = s.elapsed_cycles();
        assert!(cycles < 4096 * 4 / 2, "no channel parallelism: {cycles}");
    }
}

#[cfg(test)]
mod refresh_tests {
    use super::*;
    use crate::config::ACCESS_BYTES;

    #[test]
    fn refresh_steals_a_bounded_fraction_of_bandwidth() {
        let cfg = DramConfig::server();
        let mut with = DramSim::new(cfg.clone());
        let mut without = DramSim::new(DramConfig { t_refi: 0, ..cfg });
        for i in 0..2_000_000u64 {
            with.access(Request::read(i * ACCESS_BYTES));
            without.access(Request::read(i * ACCESS_BYTES));
        }
        let ratio = with.elapsed_cycles() as f64 / without.elapsed_cycles() as f64;
        assert!(ratio > 1.0, "refresh must cost something: {ratio}");
        // tRFC/tREFI = 350ns/7.8us ≈ 4.5%.
        assert!(ratio < 1.08, "refresh overhead too large: {ratio}");
        assert!(with.stats().refresh_stall_cycles > 0, "stalls are counted");
        assert_eq!(without.stats().refresh_stall_cycles, 0);
    }

    #[test]
    fn no_transfer_lands_inside_a_refresh_window() {
        // Regression: this test used to reconstruct the transfer start as
        // `elapsed - 4` with a hard-coded burst length, so any change to
        // the config's t_bl silently invalidated the invariant. The timed
        // access API reports the actual window, and the burst length is
        // checked against the config rather than assumed.
        let cfg = DramConfig::server();
        let (refi, rfc, t_bl) = (cfg.t_refi, cfg.t_rfc, cfg.t_bl);
        assert!(refi > rfc && rfc > 0);
        let mut sim = DramSim::new(cfg);
        for i in 0..100_000u64 {
            let t = sim.access_timed(Request::read(i * ACCESS_BYTES));
            assert_eq!(t.data_end - t.data_start, t_bl, "burst length from config");
            // The data burst must start at or after the end of any refresh
            // window [k*tREFI, k*tREFI + tRFC).
            assert!(
                t.data_start % refi >= rfc,
                "transfer started inside refresh at {}",
                t.data_start
            );
        }
    }
}
