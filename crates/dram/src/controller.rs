//! Per-channel memory controller with bank state tracking.
//!
//! The model is an open-page policy with in-order issue per channel and
//! bank-level parallelism: a request's column command waits for its bank
//! (activate/precharge latency on a row miss) while other banks' transfers
//! keep the data bus busy. This captures the first-order behaviour that
//! differentiates protection schemes — metadata accesses break row locality
//! and add serialized activates — without a full command-level replay.
//!
//! Three kernels replay a request stream:
//!
//! * [`DramSim::access`]/[`DramSim::access_timed`] — the exact per-access
//!   kernel, one full front-end evaluation per request.
//! * The **long-streak kernel** inside [`DramSim::run_batch_packed`]
//!   (and its [`DramSim::run_batch`] shim): runs of consecutive 64 B
//!   slots longer than the channel count advance every channel by a
//!   closed-form amount (telescoped row hits plus an O(periods-crossed)
//!   refresh walk).
//! * The **mixed-streak kernel**, also inside
//!   [`DramSim::run_batch_packed`]: everything too short for the
//!   long-streak kernel — singletons, short runs, read/write turnarounds
//!   — is decoded once into packed per-channel substreams and replayed
//!   lane by lane, so repeated keys coalesce and no request pays a second
//!   decode. On multi-core hosts the lanes shard across scoped threads
//!   (channel state is disjoint by construction, every statistic is a
//!   commutative sum).
//!
//! All three are bit-identical, access for access — the `dram-batch`
//! family of `seda-validate` and the conformance tests in this crate
//! enforce that, stat for stat, for serial and sharded replays alike.

use crate::config::DramConfig;
use crate::mapping::AddressMapping;
use crate::request::{Request, RowOutcome};
use crate::stats::DramStats;

/// Buffered mixed-streak requests below this count replay serially even
/// when `replay_threads` is unset: thread spawn/join latency dwarfs the
/// replay itself for small flushes. An explicit
/// [`DramSim::set_replay_threads`] bypasses the threshold.
const SHARD_MIN_REQUESTS: usize = 64 * 1024;

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest cycle the bank can accept its next column command
    /// (enforces column-to-column spacing, tCCD).
    next_col: u64,
    /// Cycle after which the bank may be precharged (in-flight data plus
    /// write recovery must drain first).
    busy_until: u64,
    /// Cycle of the last activate (for tRAS enforcement on precharge).
    activated: u64,
    /// Cumulative cycles this bank spent occupied by an access (column
    /// command through data drain and write recovery).
    occupied: u64,
}

impl BankState {
    fn new() -> Self {
        Self {
            open_row: None,
            next_col: 0,
            busy_until: 0,
            activated: 0,
            occupied: 0,
        }
    }
}

/// Per-channel clocks, kept apart from the bank array so the hot path
/// touches one small struct per request.
#[derive(Debug, Clone, Copy)]
struct ChannelClock {
    /// Cycle after which the data bus is free.
    bus_free: u64,
    /// Clock of the most recent command issue (monotonic per channel).
    now: u64,
    /// Largest multiple of `t_refi` at or below the channel's last
    /// checked burst start. Caches the refresh-phase floor so the hot
    /// path computes `data_start % t_refi` by subtraction instead of a
    /// 64-bit division: burst starts are monotone per channel and rarely
    /// advance more than one refresh period between checks.
    refi_epoch: u64,
}

impl ChannelClock {
    fn new() -> Self {
        Self {
            bus_free: 0,
            now: 0,
            refi_epoch: 0,
        }
    }

    /// `ds % t_refi`, computed incrementally from the cached epoch.
    ///
    /// Precondition: `ds` is monotone per channel (every burst start is),
    /// so the epoch never has to move backward. The common case advances
    /// the epoch zero or one period; a large jump (idle channel, row
    /// conflict penalty far exceeding a pathological tiny `t_refi`) takes
    /// one division to resynchronize.
    #[inline]
    fn refresh_phase(&mut self, ds: u64, t_refi: u64) -> u64 {
        let mut gap = ds - self.refi_epoch;
        if gap >= t_refi {
            if gap >= t_refi.saturating_mul(64) {
                self.refi_epoch = ds - ds % t_refi;
                return ds - self.refi_epoch;
            }
            while gap >= t_refi {
                self.refi_epoch += t_refi;
                gap -= t_refi;
            }
        }
        gap
    }
}

/// Timing of one access: its row-buffer outcome plus the half-open
/// `[data_start, data_end)` window its data occupied the channel bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTiming {
    /// Row-buffer outcome of the access.
    pub outcome: RowOutcome,
    /// Channel the access mapped to.
    pub channel: u32,
    /// Memory-controller cycle the data burst started on the bus.
    pub data_start: u64,
    /// Cycle the data burst left the bus (`data_start + t_bl`).
    pub data_end: u64,
}

/// Precomputed shift/mask geometry the batched kernels use to crack a
/// packed request (`(block << 1) | is_write`) into channel, bank, and row
/// fields without going through a full [`AddressMapping::decode`].
#[derive(Debug, Clone, Copy)]
struct LaneGeometry {
    /// Mask selecting the bits of a packed request that determine its
    /// steady-streak key `(bank, rank, row, direction)`: everything above
    /// the channel and column fields, plus the direction bit.
    key_mask: u64,
    /// `log2(channels × columns)` — bits below the bank field.
    region_bits: u32,
    /// All-ones mask over the `(rank, bank)` fields.
    bank_rank_mask: u64,
    /// Shift from a block to its row index.
    row_shift: u32,
}

/// One channel's mutable slice of the simulator: its clock, its banks,
/// and a statistics accumulator. Channels share no timing state, so a
/// lane is the unit of sharding — workers own disjoint lanes and merge
/// their [`DramStats`] afterward.
struct Lane<'a> {
    cfg: &'a DramConfig,
    clock: &'a mut ChannelClock,
    banks: &'a mut [BankState],
    stats: &'a mut DramStats,
}

impl Lane<'_> {
    /// The exact per-access kernel: one full front-end evaluation.
    ///
    /// `bank_idx` is the flat `(rank, bank)` index within this channel and
    /// `row` the access's row; both are pre-cracked by the caller so the
    /// batched paths never re-decode an address.
    #[inline]
    fn access(&mut self, bank_idx: usize, row: u64, is_write: bool) -> (RowOutcome, u64, u64) {
        let cfg = self.cfg;
        let clock = &mut *self.clock;
        let bank = &mut self.banks[bank_idx];

        // FR-FCFS-style front end: a request to a ready bank may issue
        // while another bank resolves a row conflict; only the data bus
        // and per-bank state serialize. `now` advances with the stream so
        // requests cannot issue before they arrive.
        let arrival = clock.now;
        let outcome;
        // Cycle at which the column command can be issued to this bank.
        let col_ready = match bank.open_row {
            Some(open) if open == row => {
                outcome = RowOutcome::Hit;
                arrival.max(bank.next_col)
            }
            Some(_) => {
                outcome = RowOutcome::Conflict;
                // Precharge (after in-flight data drains and tRAS elapses),
                // then activate, then the column command after tRCD.
                let pre_at = arrival.max(bank.busy_until).max(bank.activated + cfg.t_ras);
                let act_at = pre_at + cfg.t_rp;
                bank.activated = act_at;
                act_at + cfg.t_rcd
            }
            None => {
                outcome = RowOutcome::Empty;
                let act_at = arrival.max(bank.next_col);
                bank.activated = act_at;
                act_at + cfg.t_rcd
            }
        };
        bank.open_row = Some(row);

        let cas = if is_write { cfg.t_cwl } else { cfg.t_cl };
        // Data occupies the bus for t_bl cycles after CAS latency; column
        // commands to the same bank pipeline at tCCD (= burst) spacing.
        // All-bank refresh blocks the channel for tRFC every tREFI: a
        // transfer landing inside a refresh window slips past it.
        let mut data_start = (col_ready + cas).max(clock.bus_free);
        if cfg.t_refi > 0 {
            let phase = clock.refresh_phase(data_start, cfg.t_refi);
            if phase < cfg.t_rfc {
                self.stats.refresh_stall_cycles += cfg.t_rfc - phase;
                data_start += cfg.t_rfc - phase;
            }
        }
        let data_end = data_start + cfg.t_bl;
        self.stats.bus_busy_cycles += cfg.t_bl;
        self.stats.record_kind(is_write, outcome);
        clock.bus_free = data_end;
        // Arrival time advances with the bus, not with stalled banks: a
        // conflicted request does not block younger requests to other banks.
        clock.now = clock.now.max(data_start.saturating_sub(cas + cfg.t_rcd));
        bank.next_col = data_start - cas + cfg.t_bl;
        bank.busy_until = if is_write {
            data_end + cfg.t_wr
        } else {
            data_end
        };
        bank.occupied += bank.busy_until - col_ready;
        (outcome, data_start, data_end)
    }

    /// Applies `n` steady row hits on this channel's most recent bank in
    /// closed form.
    ///
    /// Precondition (the steady-streak invariant): the channel's last
    /// access touched the same bank, row, and direction. The exact kernel
    /// then gives, for each of the `n` accesses,
    /// `col_ready = next_col` (the channel's arrival clock always trails
    /// `next_col`) and `col_ready + cas = bus_free`, so each burst starts
    /// at `bus_free` — advanced only by refresh slips. Every statistic
    /// the exact kernel would accumulate telescopes:
    ///
    /// * `data_start` advances by `t_bl` per access plus refresh slips,
    ///   walked period-by-period (O(windows crossed), not O(n));
    /// * each access's bank occupancy is `(Δdata_start) + cas + t_wr?`,
    ///   so the sum is `n (t_bl + cas + t_wr?) + slips`;
    /// * the channel arrival clock's running max is its final value.
    #[inline]
    fn streak(&mut self, bank_idx: usize, n: u64, is_write: bool) {
        let cfg = self.cfg;
        let cas = if is_write { cfg.t_cwl } else { cfg.t_cl };
        let write_rec = if is_write { cfg.t_wr } else { 0 };
        let clock = &mut *self.clock;
        // The previous access's burst start: its data_end is bus_free.
        let ds0 = clock.bus_free - cfg.t_bl;

        // Walk data_start forward n steps of t_bl, slipping past refresh
        // windows exactly as the per-access check would: one phase test
        // per access, telescoped over whole tREFI periods.
        let (mut ds, mut slip) = (ds0, 0u64);
        let mut left = n;
        if cfg.t_refi == 0 || cfg.t_bl == 0 {
            // No refresh, or a zero-length burst whose phase never moves:
            // post-check phases equal the (checked) previous phase, so no
            // further slips are possible.
            ds += left * cfg.t_bl;
        } else {
            let mut phase = clock.refresh_phase(ds, cfg.t_refi);
            loop {
                // Steps whose tentative phase stays inside the current
                // period need no check outcome change: every issued
                // data_start has phase >= t_rfc, and phases only grow
                // until the period wraps. Short streaks usually fit the
                // remaining room outright, which the multiply test
                // detects without dividing.
                let room = cfg.t_refi - 1 - phase;
                match left.checked_mul(cfg.t_bl) {
                    Some(adv) if adv <= room => {
                        ds += adv;
                        phase += adv;
                        left = 0;
                    }
                    _ => {
                        let safe = (room / cfg.t_bl).min(left);
                        let adv = safe * cfg.t_bl;
                        ds += adv;
                        phase += adv;
                        left -= safe;
                    }
                }
                if left == 0 {
                    break;
                }
                // This access wraps into the next period: apply the exact
                // kernel's single refresh check at its burst start.
                let mut next = ds + cfg.t_bl;
                let mut ph = phase + cfg.t_bl;
                if ph >= cfg.t_refi {
                    clock.refi_epoch += cfg.t_refi;
                    ph -= cfg.t_refi;
                    if ph >= cfg.t_refi {
                        // Degenerate t_bl >= t_refi: resynchronize in O(1).
                        let periods = ph / cfg.t_refi;
                        clock.refi_epoch += periods * cfg.t_refi;
                        ph -= periods * cfg.t_refi;
                    }
                }
                if ph < cfg.t_rfc {
                    slip += cfg.t_rfc - ph;
                    next += cfg.t_rfc - ph;
                    ph = cfg.t_rfc;
                }
                ds = next;
                phase = ph;
                left -= 1;
            }
        }

        // Telescoped state updates — each line is the exact kernel's
        // per-access update summed over the n accesses.
        self.stats.refresh_stall_cycles += slip;
        self.stats.bus_busy_cycles += n * cfg.t_bl;
        self.stats.row_hits += n;
        if is_write {
            self.stats.writes += n;
        } else {
            self.stats.reads += n;
        }
        clock.bus_free = ds + cfg.t_bl;
        clock.now = clock.now.max(ds.saturating_sub(cas + cfg.t_rcd));
        let bank = &mut self.banks[bank_idx];
        bank.occupied += n * (cfg.t_bl + cas + write_rec) + slip;
        bank.next_col = ds - cas + cfg.t_bl;
        bank.busy_until = ds + cfg.t_bl + write_rec;
    }
}

/// Replays one channel's packed substream through its lane.
///
/// `sub` holds `(block << 1) | is_write` words in program order; `last`
/// is the channel's most recent steady-streak key (or `u64::MAX` when no
/// access has established one this batch). Runs of equal keys coalesce:
/// one exact head access when the key changes, then a single closed-form
/// streak for the rest — exactly the sequence the scalar path would take,
/// so the replay is bit-identical by construction.
fn replay_lane(lane: &mut Lane<'_>, sub: &[u64], last: &mut u64, geom: LaneGeometry) {
    let mut i = 0;
    while i < sub.len() {
        let p = sub[i];
        let mut n = 1;
        while i + n < sub.len() && (sub[i + n] ^ p) & geom.key_mask == 0 {
            n += 1;
        }
        let block = p >> 1;
        let is_write = p & 1 != 0;
        let bank_idx = ((block >> geom.region_bits) & geom.bank_rank_mask) as usize;
        let mut hits = n as u64;
        if (*last ^ p) & geom.key_mask != 0 {
            lane.access(bank_idx, block >> geom.row_shift, is_write);
            hits -= 1;
        }
        if hits > 0 {
            lane.streak(bank_idx, hits, is_write);
        }
        *last = p;
        i += n;
    }
}

/// Reusable buffers for the mixed-streak kernel, kept on the simulator so
/// repeated `run_batch` calls allocate nothing in steady state. The
/// contents are meaningful only within one `run_batch` call — `last` keys
/// reset at entry so interleaved `access()` calls can never leave a stale
/// key behind.
#[derive(Debug, Clone)]
struct BatchScratch {
    /// Per-channel packed substreams awaiting replay.
    pending: Vec<Vec<u64>>,
    /// Per-channel steady-streak key of the most recent access this
    /// batch: the packed request with its column bits ignored via
    /// `key_mask`. `u64::MAX` is an impossible packed value (blocks have
    /// at least [`super::config::ACCESS_BYTES`] zero high bits), so it
    /// doubles as the "no key yet" sentinel.
    last: Vec<u64>,
    /// Packed image of the caller's [`Request`] slice, reused across
    /// [`DramSim::run_batch`] calls so the compatibility shim allocates
    /// nothing in steady state.
    packed: Vec<u64>,
}

/// A multi-channel DRAM timing simulator.
///
/// Feed it a request stream with [`DramSim::access`] (or in bulk with
/// [`DramSim::run`]/[`DramSim::run_batch`]) and read aggregate timing from
/// [`DramSim::stats`]. Bank and bus state persist across calls, so a
/// whole inference can be simulated layer by layer.
///
/// # Examples
///
/// ```
/// use seda_dram::{DramConfig, DramSim, Request};
///
/// let mut sim = DramSim::new(DramConfig::edge());
/// for i in 0..1024u64 {
///     sim.access(Request::read(i * 64));
/// }
/// let stats = sim.stats();
/// assert_eq!(stats.reads, 1024);
/// assert!(stats.row_hits > stats.row_conflicts, "streaming should hit rows");
/// ```
#[derive(Debug, Clone)]
pub struct DramSim {
    config: DramConfig,
    mapping: AddressMapping,
    /// Per-channel bus/arrival clocks.
    clocks: Vec<ChannelClock>,
    /// All banks of all channels in one flat array, channel-major:
    /// `channel * banks_per_channel + rank * banks + bank`.
    banks: Vec<BankState>,
    banks_per_channel: usize,
    stats: DramStats,
    scratch: BatchScratch,
    /// Requests currently buffered across `scratch.pending`, so the flush
    /// check at every long-streak boundary is one load.
    pending_total: usize,
    /// Worker-thread cap for the sharded mixed-streak flush; `None`
    /// sizes automatically (available parallelism, above a volume
    /// threshold).
    replay_threads: Option<usize>,
}

impl DramSim {
    /// Creates a simulator with all banks precharged at cycle zero.
    pub fn new(config: DramConfig) -> Self {
        let mapping = AddressMapping::new(&config);
        let banks_per_channel = (config.banks * config.ranks) as usize;
        let channels = config.channels as usize;
        Self {
            config,
            mapping,
            clocks: vec![ChannelClock::new(); channels],
            banks: vec![BankState::new(); channels * banks_per_channel],
            banks_per_channel,
            stats: DramStats::default(),
            scratch: BatchScratch {
                pending: vec![Vec::new(); channels],
                last: vec![u64::MAX; channels],
                packed: Vec::new(),
            },
            pending_total: 0,
            replay_threads: None,
        }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Caps the worker threads the batched replay may shard channel lanes
    /// across. `1` forces serial replay; values above the channel count
    /// are clamped to it at flush time. An explicit setting also bypasses
    /// the automatic volume threshold, so tests can exercise the sharded
    /// path on small streams. Replay results are bit-identical at any
    /// setting.
    pub fn set_replay_threads(&mut self, threads: usize) {
        self.replay_threads = Some(threads.max(1));
    }

    /// The configured replay-thread cap, or `None` for automatic sizing.
    pub fn replay_threads(&self) -> Option<usize> {
        self.replay_threads
    }

    /// Simulates one 64 B access and returns its row-buffer outcome.
    pub fn access(&mut self, req: Request) -> RowOutcome {
        self.access_timed(req).outcome
    }

    /// Like [`DramSim::access`], additionally exposing the transfer's
    /// data-bus occupancy window — the observability hook the validation
    /// harness uses to check refresh exclusion, bus serialization, and
    /// per-channel clock monotonicity without reconstructing timings from
    /// aggregate counters.
    pub fn access_timed(&mut self, req: Request) -> AccessTiming {
        let coord = self.mapping.decode(req.addr);
        let bank_idx = (coord.rank * self.config.banks + coord.bank) as usize;
        let channel = coord.channel;
        let mut lane = self.lane(channel as usize);
        let (outcome, data_start, data_end) = lane.access(bank_idx, coord.row, req.is_write);
        AccessTiming {
            outcome,
            channel,
            data_start,
            data_end,
        }
    }

    /// Borrows channel `ch`'s clock, banks, and the shared statistics as
    /// one lane.
    #[inline]
    fn lane(&mut self, ch: usize) -> Lane<'_> {
        let lo = ch * self.banks_per_channel;
        let hi = lo + self.banks_per_channel;
        Lane {
            cfg: &self.config,
            clock: &mut self.clocks[ch],
            banks: &mut self.banks[lo..hi],
            stats: &mut self.stats,
        }
    }

    /// Simulates a request stream.
    ///
    /// The stream is buffered and replayed through the streak-batched
    /// kernel, so bulk callers get the fast path automatically; results
    /// are bit-identical to calling [`DramSim::access`] per request.
    pub fn run<I: IntoIterator<Item = Request>>(&mut self, requests: I) {
        let buffer: Vec<Request> = requests.into_iter().collect();
        self.run_batch(&buffer);
    }

    /// Streak-batched replay of a request slice, bit-identical to calling
    /// [`DramSim::access`] on every element in order.
    ///
    /// Compatibility shim over [`DramSim::run_batch_packed`]: the slice is
    /// packed once into a reused scratch buffer, then replayed in packed
    /// form. Bulk callers that already hold packed streams — the
    /// pipeline's lowered traces — call the packed entry point directly
    /// and skip the conversion pass.
    pub fn run_batch(&mut self, requests: &[Request]) {
        let mut packed = std::mem::take(&mut self.scratch.packed);
        packed.clear();
        packed.extend(requests.iter().map(|r| r.pack()));
        self.run_batch_packed(&packed);
        self.scratch.packed = packed;
    }

    /// Streak-batched replay of a packed request stream
    /// (`(block << 1) | is_write` per element — see [`Request::pack`]),
    /// bit-identical to calling [`DramSim::access`] on every element in
    /// order.
    ///
    /// This is the native form of the fast path: the simulator is
    /// block-granular throughout, so a packed word carries everything a
    /// [`Request`] does at half the width, and the streak scan below reads
    /// half the bytes per request — which matters, because on long streaks
    /// the scan is memory-bound.
    ///
    /// The kernel exploits two structural facts:
    ///
    /// * **Channels are independent.** No state is shared between
    ///   channels, and every aggregate statistic is a commutative sum, so
    ///   requests to different channels can be timed in any order — or on
    ///   different threads.
    /// * **Steady row hits are bus-rate.** After any access, the bank's
    ///   next column command plus CAS latency lands exactly when the bus
    ///   frees (`next_col + cas == bus_free`), so a following access to
    ///   the same bank, row, and direction starts its burst at
    ///   `bus_free` — no front-end arbitration can change that.
    ///
    /// Sequential streaks (64 B slots at consecutive addresses, the shape
    /// SCALE-Sim traces and scheme-rewritten tensor walks take) longer
    /// than the channel count are applied per channel in closed form: `n`
    /// row hits advance the bus by `n × t_bl` plus any refresh slips,
    /// accounted in O(refresh windows crossed) rather than O(n).
    /// Everything shorter — singleton streaks, short runs, read/write
    /// turnarounds, region-boundary stragglers — is packed into
    /// per-channel substreams and replayed by the mixed-streak kernel
    /// (`replay_lane`), which decodes each request once and coalesces
    /// repeated keys; substreams flush before each long streak so
    /// per-channel program order is preserved, and shard across threads
    /// when large enough (see [`DramSim::set_replay_threads`]).
    pub fn run_batch_packed(&mut self, requests: &[u64]) {
        // The closed-form refresh walk assumes every issued burst leaves
        // its channel with phase >= tRFC, which the per-access check only
        // guarantees when the refresh window fits its interval. A
        // degenerate config (tRFC >= tREFI) replays per access instead.
        if self.config.t_refi > 0 && self.config.t_rfc >= self.config.t_refi {
            for &p in requests {
                self.access(Request::unpack(p));
            }
            return;
        }
        let channels = self.clocks.len();
        let ch_mask = channels as u64 - 1;
        let region_bits = self.mapping.region_bits();
        // Steady-streak keys are local to this call: reset so interleaved
        // `access()` calls can never leave a stale key behind.
        for last in &mut self.scratch.last {
            *last = u64::MAX;
        }
        let geom = LaneGeometry {
            key_mask: (!0u64 << (region_bits + 1)) | 1,
            region_bits,
            bank_rank_mask: self.mapping.bank_rank_mask(),
            row_shift: self.mapping.row_shift(),
        };
        let region_mask = (1u64 << region_bits) - 1;
        // Replay mode: buffering short segments into per-channel
        // substreams only pays off when a flush can shard them across
        // workers; with a single worker the scalar path replays them in
        // place, skipping the buffer round-trip entirely. Both modes are
        // bit-identical.
        let worker_cap = match self.replay_threads {
            Some(n) => n,
            None if requests.len() >= SHARD_MIN_REQUESTS => {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            }
            None => 1,
        }
        .min(channels);
        let buffered = worker_cap > 1;

        let mut i = 0;
        while i < requests.len() {
            let head_p = requests[i];
            let head_block = head_p >> 1;
            let is_write = head_p & 1 != 0;

            // Detect a sequential streak: consecutive requests walking
            // consecutive 64 B slots in one direction, within one
            // super-row region (same (bank, rank, row) on every channel).
            // The room left in the region comes from the block's low bits
            // alone, so the computation cannot wrap even for blocks in
            // the top region of the address space (the former
            // `(region + 1) << region_bits` end-pointer form could).
            let in_region = (region_mask - (head_block & region_mask)) + 1;
            let max_len = in_region.min((requests.len() - i) as u64) as usize;
            let window = &requests[i..i + max_len];
            let mut len = 1;
            // In packed form a streak is an arithmetic progression of
            // stride 2 (block advances by one, direction bit unchanged),
            // so one XOR per element checks block and direction together.
            // Verify four requests per iteration with one well-predicted
            // branch: long streaks spend almost all scan time here, and
            // the scan is memory-bound, which is why the stream is packed
            // to 8 B/request in the first place. The scalar tail finishes
            // partial quads and pinpoints the break.
            while len + 4 <= max_len {
                let q = &window[len..len + 4];
                let expect = head_p + 2 * len as u64;
                let mismatch = (q[0] ^ expect)
                    | (q[1] ^ (expect + 2))
                    | (q[2] ^ (expect + 4))
                    | (q[3] ^ (expect + 6));
                if mismatch != 0 {
                    break;
                }
                len += 4;
            }
            while len < max_len && window[len] == head_p + 2 * len as u64 {
                len += 1;
            }

            if len > channels {
                // Long streak: drain buffered short work first so each
                // channel sees its requests in program order.
                if self.pending_total > 0 {
                    self.flush_pending(worker_cap, geom);
                }
                // Channel of offset j is (head_block + j) mod channels,
                // and every block in the region shares one within-channel
                // bank index and row. Per channel: the first access goes
                // through the scalar path (it may hit, conflict, or open
                // an empty bank) and establishes the steady-streak
                // invariant; the channel's remaining accesses are steady
                // row hits applied in closed form.
                let bank_idx = self.mapping.bank_index(head_block);
                let row = self.mapping.row_of(head_block);
                let extra = len - channels;
                let per_channel = (extra / channels) as u64;
                let remainder = extra % channels;
                for j in 0..channels {
                    let p = head_p + 2 * j as u64;
                    let ch = ((p >> 1) & ch_mask) as usize;
                    let matched = (self.scratch.last[ch] ^ p) & geom.key_mask == 0;
                    self.scratch.last[ch] = p;
                    let tail = per_channel + u64::from(j < remainder);
                    let mut lane = self.lane(ch);
                    if matched {
                        // The head continues a steady streak, so the whole
                        // per-channel run telescopes into one closed form.
                        lane.streak(bank_idx, tail + 1, is_write);
                    } else {
                        lane.access(bank_idx, row, is_write);
                        if tail > 0 {
                            lane.streak(bank_idx, tail, is_write);
                        }
                    }
                }
                i += len;
            } else if buffered {
                // Too short for the closed-form kernel: buffer the packed
                // requests on their channels for the mixed-streak replay.
                for k in 0..len as u64 {
                    let p = head_p + 2 * k;
                    self.scratch.pending[((p >> 1) & ch_mask) as usize].push(p);
                }
                self.pending_total += len;
                i += len;
            } else {
                // Single worker: replay the short segment in place.
                for k in 0..len as u64 {
                    let p = head_p + 2 * k;
                    self.step_packed(((p >> 1) & ch_mask) as usize, p, geom);
                }
                i += len;
            }
        }
        if self.pending_total > 0 {
            self.flush_pending(worker_cap, geom);
        }
    }

    /// One packed request through the batched kernel's scalar path: a
    /// steady same-key follow-up takes the closed-form row-hit step;
    /// anything else runs the exact per-access kernel.
    #[inline]
    fn step_packed(&mut self, ch: usize, p: u64, geom: LaneGeometry) {
        let matched = (self.scratch.last[ch] ^ p) & geom.key_mask == 0;
        self.scratch.last[ch] = p;
        let block = p >> 1;
        let is_write = p & 1 != 0;
        let bank_idx = ((block >> geom.region_bits) & geom.bank_rank_mask) as usize;
        let mut lane = self.lane(ch);
        if matched {
            lane.streak(bank_idx, 1, is_write);
        } else {
            lane.access(bank_idx, block >> geom.row_shift, is_write);
        }
    }

    /// Replays every channel's buffered substream, serially or sharded
    /// across scoped worker threads, then clears the buffers (keeping
    /// their capacity).
    ///
    /// `workers` is the thread cap the caller resolved; an automatically
    /// sized flush still replays serially below the volume threshold so
    /// interleaved short work never pays thread spawn latency.
    ///
    /// Sharding is bit-identical to serial replay: workers own disjoint
    /// channel lanes (clock + bank slice + streak key), each worker
    /// accumulates into a private [`DramStats`], and the commutative
    /// per-worker sums merge into the shared totals after the join.
    fn flush_pending(&mut self, workers: usize, geom: LaneGeometry) {
        let total = self.pending_total;
        if total == 0 {
            return;
        }
        self.pending_total = 0;
        let threads = if self.replay_threads.is_some() || total >= SHARD_MIN_REQUESTS {
            workers
        } else {
            1
        };

        if threads <= 1 {
            for ch in 0..self.clocks.len() {
                if self.scratch.pending[ch].is_empty() {
                    continue;
                }
                let lo = ch * self.banks_per_channel;
                let hi = lo + self.banks_per_channel;
                let mut lane = Lane {
                    cfg: &self.config,
                    clock: &mut self.clocks[ch],
                    banks: &mut self.banks[lo..hi],
                    stats: &mut self.stats,
                };
                replay_lane(
                    &mut lane,
                    &self.scratch.pending[ch],
                    &mut self.scratch.last[ch],
                    geom,
                );
            }
        } else {
            let cfg = &self.config;
            let mut lanes: Vec<_> = self
                .clocks
                .iter_mut()
                .zip(self.banks.chunks_mut(self.banks_per_channel))
                .zip(self.scratch.last.iter_mut())
                .zip(self.scratch.pending.iter())
                .map(|(((clock, banks), last), sub)| (clock, banks, last, sub.as_slice()))
                .collect();
            let per_worker = lanes.len().div_ceil(threads);
            let mut merged = DramStats::default();
            std::thread::scope(|scope| {
                let workers: Vec<_> = lanes
                    .chunks_mut(per_worker)
                    .map(|chunk| {
                        scope.spawn(move || {
                            let mut stats = DramStats::default();
                            for (clock, banks, last, sub) in chunk.iter_mut() {
                                if sub.is_empty() {
                                    continue;
                                }
                                let mut lane = Lane {
                                    cfg,
                                    clock,
                                    banks,
                                    stats: &mut stats,
                                };
                                replay_lane(&mut lane, sub, last, geom);
                            }
                            stats
                        })
                    })
                    .collect();
                for worker in workers {
                    match worker.join() {
                        Ok(stats) => merged.merge(&stats),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
            self.stats.merge(&merged);
        }
        for sub in &mut self.scratch.pending {
            sub.clear();
        }
    }

    /// Total elapsed memory-controller cycles (the slowest channel's clock).
    pub fn elapsed_cycles(&self) -> u64 {
        self.clocks.iter().map(|c| c.bus_free).max().unwrap_or(0)
    }

    /// Elapsed time in seconds at the configured memory clock.
    pub fn elapsed_seconds(&self) -> f64 {
        self.config.cycles_to_seconds(self.elapsed_cycles())
    }

    /// Aggregate access statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Achieved bandwidth in bytes/second over the elapsed window.
    pub fn achieved_bandwidth(&self) -> f64 {
        let secs = self.elapsed_seconds();
        if secs == 0.0 {
            0.0
        } else {
            self.stats.bytes() as f64 / secs
        }
    }

    /// Cumulative occupied cycles of every bank, channel-major.
    pub fn bank_occupancy_cycles(&self) -> Vec<u64> {
        self.banks.iter().map(|b| b.occupied).collect()
    }

    /// Emits the simulator's cumulative activity to the global telemetry
    /// sink: access/row-outcome/refresh/bus counters plus one
    /// `dram.bank_occupancy_cycles` histogram sample per bank.
    ///
    /// Hot-path accounting lives in plain [`DramStats`] fields and the
    /// per-bank `occupied` tallies, so the per-access loop carries no
    /// telemetry dispatch; callers flush once per simulator lifetime
    /// (the pipeline kernel does so at the end of each run).
    pub fn emit_telemetry(&self) {
        if !seda_telemetry::enabled() {
            return;
        }
        self.emit_telemetry_to(&GlobalDispatch);
    }

    /// Emits the same metrics as [`DramSim::emit_telemetry`] into an
    /// explicit sink, bypassing the process-global dispatch. The
    /// `dram-batch` conformance family uses this to capture and compare
    /// the replay kernels' telemetry snapshots in isolation.
    pub fn emit_telemetry_to(&self, sink: &dyn seda_telemetry::Sink) {
        let s = &self.stats;
        sink.add("dram.reads", s.reads);
        sink.add("dram.writes", s.writes);
        sink.add("dram.row_hits", s.row_hits);
        sink.add("dram.row_empties", s.row_empties);
        sink.add("dram.row_conflicts", s.row_conflicts);
        sink.add("dram.refresh_stall_cycles", s.refresh_stall_cycles);
        sink.add("dram.bus_busy_cycles", s.bus_busy_cycles);
        for occupied in self.bank_occupancy_cycles() {
            sink.record("dram.bank_occupancy_cycles", occupied);
        }
    }
}

/// Adapter routing [`seda_telemetry::Sink`] calls onto the process-global
/// dispatch functions, so the global and sink-directed emit paths share
/// one metric registry.
struct GlobalDispatch;

impl seda_telemetry::Sink for GlobalDispatch {
    fn add(&self, name: &'static str, delta: u64) {
        seda_telemetry::counter_add(name, delta);
    }

    fn record(&self, name: &'static str, value: u64) {
        seda_telemetry::record(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ACCESS_BYTES;

    fn sim() -> DramSim {
        DramSim::new(DramConfig::server())
    }

    #[test]
    fn sequential_stream_approaches_peak_bandwidth() {
        let mut s = sim();
        for i in 0..100_000u64 {
            s.access(Request::read(i * ACCESS_BYTES));
        }
        let eff = s.achieved_bandwidth() / s.config().peak_bandwidth();
        assert!(eff > 0.85, "streaming efficiency too low: {eff:.3}");
    }

    #[test]
    fn random_rows_are_much_slower() {
        let mut seq = sim();
        let mut rnd = sim();
        let n = 20_000u64;
        for i in 0..n {
            seq.access(Request::read(i * ACCESS_BYTES));
            // Jump a whole row per access within one bank's address space.
            let row_span = 8192 * 4; // row_bytes * channels
            rnd.access(Request::read((i * 7919) % 4096 * row_span));
        }
        assert!(
            rnd.elapsed_cycles() > 2 * seq.elapsed_cycles(),
            "row conflicts should cost: rnd={} seq={}",
            rnd.elapsed_cycles(),
            seq.elapsed_cycles()
        );
    }

    #[test]
    fn first_access_is_an_empty_row() {
        let mut s = sim();
        assert_eq!(s.access(Request::read(0)), RowOutcome::Empty);
        assert_eq!(s.access(Request::read(0)), RowOutcome::Hit);
    }

    #[test]
    fn conflict_detected_on_row_change() {
        let cfg = DramConfig::server();
        // Same channel, same bank, next row: skip over all columns, banks,
        // and ranks of the interleaving.
        let row_span = cfg.columns_per_row()
            * u64::from(cfg.channels)
            * u64::from(cfg.banks)
            * u64::from(cfg.ranks)
            * ACCESS_BYTES;
        let mut s = DramSim::new(cfg);
        s.access(Request::read(0));
        assert_eq!(s.access(Request::read(row_span)), RowOutcome::Conflict);
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let mut s = sim();
        s.access(Request::read(0));
        s.access(Request::write(64));
        s.access(Request::write(128));
        assert_eq!(s.stats().reads, 1);
        assert_eq!(s.stats().writes, 2);
        assert_eq!(s.stats().bytes(), 3 * ACCESS_BYTES);
    }

    #[test]
    fn bus_and_bank_occupancy_accounting() {
        let mut s = sim();
        for i in 0..1000u64 {
            s.access(Request::read(i * ACCESS_BYTES));
        }
        let t_bl = s.config().t_bl;
        assert_eq!(s.stats().bus_busy_cycles, 1000 * t_bl);
        let occupied: u64 = s.bank_occupancy_cycles().iter().sum();
        assert!(
            occupied >= 1000 * t_bl,
            "each access occupies a bank for at least its burst: {occupied}"
        );
    }

    #[test]
    fn elapsed_cycles_monotone() {
        let mut s = sim();
        let mut last = 0;
        for i in 0..100 {
            s.access(Request::read(i * 64));
            let e = s.elapsed_cycles();
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn channels_share_load_for_striped_streams() {
        let mut s = sim();
        for i in 0..4096u64 {
            s.access(Request::read(i * ACCESS_BYTES));
        }
        // A striped stream of N accesses at 4 channels and tBL=4 should take
        // roughly N/4 * tBL cycles, far below serial N * tBL.
        let cycles = s.elapsed_cycles();
        assert!(cycles < 4096 * 4 / 2, "no channel parallelism: {cycles}");
    }

    #[test]
    fn refresh_phase_matches_modulo() {
        // The epoch-cached phase must equal ds % t_refi for monotone ds,
        // including jumps much larger than a period (division fallback).
        let mut clock = ChannelClock::new();
        let t_refi = 97;
        let mut ds = 0u64;
        for step in [1u64, 5, 96, 97, 98, 500, 97 * 200, 3, 0, 96] {
            ds += step;
            assert_eq!(clock.refresh_phase(ds, t_refi), ds % t_refi, "ds={ds}");
            assert_eq!(clock.refi_epoch, ds - ds % t_refi);
        }
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::config::ACCESS_BYTES;

    /// Replays `stream` through both kernels and asserts every observable
    /// is bit-identical.
    fn assert_conformant(cfg: DramConfig, stream: &[Request]) {
        let mut exact = DramSim::new(cfg.clone());
        for &r in stream {
            exact.access(r);
        }
        let mut batched = DramSim::new(cfg.clone());
        batched.run_batch(stream);
        assert_eq!(exact.stats(), batched.stats(), "stats diverged");
        assert_eq!(
            exact.elapsed_cycles(),
            batched.elapsed_cycles(),
            "elapsed cycles diverged"
        );
        assert_eq!(
            exact.bank_occupancy_cycles(),
            batched.bank_occupancy_cycles(),
            "bank occupancy diverged"
        );
        // The packed entry point (the pipeline's native form) must agree
        // byte for byte with the Request-slice shim.
        let packed_stream: Vec<u64> = stream.iter().map(|r| r.pack()).collect();
        let mut packed = DramSim::new(cfg.clone());
        packed.run_batch_packed(&packed_stream);
        assert_eq!(exact.stats(), packed.stats(), "packed stats diverged");
        assert_eq!(
            exact.elapsed_cycles(),
            packed.elapsed_cycles(),
            "packed elapsed cycles diverged"
        );
        assert_eq!(
            exact.bank_occupancy_cycles(),
            packed.bank_occupancy_cycles(),
            "packed bank occupancy diverged"
        );
        // The sharded mixed-streak path must agree too, even when forced
        // on a stream far below the automatic volume threshold.
        let mut sharded = DramSim::new(cfg);
        sharded.set_replay_threads(4);
        sharded.run_batch(stream);
        assert_eq!(exact.stats(), sharded.stats(), "sharded stats diverged");
        assert_eq!(
            exact.elapsed_cycles(),
            sharded.elapsed_cycles(),
            "sharded elapsed cycles diverged"
        );
        assert_eq!(
            exact.bank_occupancy_cycles(),
            sharded.bank_occupancy_cycles(),
            "sharded bank occupancy diverged"
        );
    }

    #[test]
    fn streaming_run_is_bit_identical() {
        let stream: Vec<Request> = (0..50_000u64)
            .map(|i| Request::read(i * ACCESS_BYTES))
            .collect();
        assert_conformant(DramConfig::server(), &stream);
    }

    #[test]
    fn streaming_writes_are_bit_identical() {
        let stream: Vec<Request> = (0..20_000u64)
            .map(|i| Request::write(i * ACCESS_BYTES))
            .collect();
        assert_conformant(DramConfig::edge(), &stream);
    }

    #[test]
    fn direction_turnarounds_are_bit_identical() {
        let stream: Vec<Request> = (0..10_000u64)
            .map(|i| {
                if (i / 100) % 2 == 0 {
                    Request::read(i * ACCESS_BYTES)
                } else {
                    Request::write(i * ACCESS_BYTES)
                }
            })
            .collect();
        assert_conformant(DramConfig::server(), &stream);
    }

    #[test]
    fn row_thrash_is_bit_identical() {
        let cfg = DramConfig::server();
        let row_span = cfg.row_bytes * u64::from(cfg.channels);
        let stream: Vec<Request> = (0..5_000u64)
            .map(|i| Request::read((i * 7919) % 512 * row_span))
            .collect();
        assert_conformant(cfg, &stream);
    }

    #[test]
    fn same_slot_repeats_are_bit_identical() {
        let stream: Vec<Request> = (0..5_000u64).map(|_| Request::read(4096)).collect();
        assert_conformant(DramConfig::edge(), &stream);
    }

    #[test]
    fn singleton_heavy_stream_is_bit_identical() {
        // The regime BENCH_dram.json says dominates: isolated one-block
        // touches scattered over rows and directions, so the mixed-streak
        // kernel sees nothing but singletons.
        let cfg = DramConfig::server();
        let row_span = cfg.row_bytes * u64::from(cfg.channels);
        let stream: Vec<Request> = (0..20_000u64)
            .map(|i| {
                let addr = (i * 37 % 977) * row_span + (i * 13 % 31) * ACCESS_BYTES;
                if i % 3 == 0 {
                    Request::write(addr)
                } else {
                    Request::read(addr)
                }
            })
            .collect();
        assert_conformant(cfg, &stream);
    }

    #[test]
    fn short_mixed_streaks_are_bit_identical() {
        // Runs of 2-4 blocks (at or below the channel count, so below the
        // long-streak kernel's threshold) with direction flips between
        // runs: the mixed-streak kernel must coalesce within each run and
        // re-evaluate at every boundary.
        let cfg = DramConfig::server();
        let mut stream = Vec::new();
        let mut base = 0u64;
        for i in 0..8_000u64 {
            let len = 2 + (i % 3);
            let write = i % 2 == 1;
            for k in 0..len {
                let addr = (base + k) * ACCESS_BYTES;
                stream.push(if write {
                    Request::write(addr)
                } else {
                    Request::read(addr)
                });
            }
            // Hop far enough that the next run starts a new row.
            base += len + (i % 5) * 512;
        }
        assert_conformant(cfg, &stream);
    }

    #[test]
    fn streaks_crossing_refresh_windows_are_bit_identical() {
        // A long uninterrupted stream crosses many tREFI periods, so the
        // closed-form slip walk gets exercised hard.
        let stream: Vec<Request> = (0..400_000u64)
            .map(|i| Request::read(i * ACCESS_BYTES))
            .collect();
        let cfg = DramConfig::server();
        assert!(cfg.t_refi > 0);
        assert_conformant(cfg, &stream);
    }

    #[test]
    fn single_channel_config_is_bit_identical() {
        let cfg = DramConfig::ddr4_with_bandwidth(1, 5.0e9);
        let stream: Vec<Request> = (0..30_000u64)
            .map(|i| Request::read(i * ACCESS_BYTES))
            .collect();
        assert_conformant(cfg, &stream);
    }

    #[test]
    fn top_of_address_space_regions_are_bit_identical() {
        // Streaks touching the topmost super-row regions of the u64
        // address space: the former region-end pointer
        // `(region + 1) << region_bits` is exactly the form that wraps
        // here, so this pins the overflow-safe remaining-room computation.
        let cfg = DramConfig::server();
        let top_block = u64::MAX >> 6;
        let mut stream = Vec::new();
        // Walk across the very last region boundary up to the final block.
        for i in 0..64u64 {
            stream.push(Request::read((top_block - 63 + i) * ACCESS_BYTES));
        }
        // And a streak straddling a region boundary near 2^42 bytes.
        let hi_block = (1u64 << 42) / ACCESS_BYTES;
        for i in 0..1024u64 {
            stream.push(Request::read((hi_block - 100 + i) * ACCESS_BYTES));
        }
        assert_conformant(cfg, &stream);
    }

    #[test]
    fn run_uses_the_batched_kernel() {
        let mut a = DramSim::new(DramConfig::server());
        a.run((0..10_000u64).map(|i| Request::read(i * ACCESS_BYTES)));
        let mut b = DramSim::new(DramConfig::server());
        for i in 0..10_000u64 {
            b.access(Request::read(i * ACCESS_BYTES));
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.elapsed_cycles(), b.elapsed_cycles());
    }

    #[test]
    fn batch_state_carries_across_calls() {
        // Splitting one stream across run_batch calls must equal one call:
        // bank/bus state persists, only the local streak keys reset.
        let stream: Vec<Request> = (0..8_192u64)
            .map(|i| Request::read(i * ACCESS_BYTES))
            .collect();
        let mut whole = DramSim::new(DramConfig::server());
        whole.run_batch(&stream);
        let mut split = DramSim::new(DramConfig::server());
        for chunk in stream.chunks(1000) {
            split.run_batch(chunk);
        }
        assert_eq!(whole.stats(), split.stats());
        assert_eq!(whole.elapsed_cycles(), split.elapsed_cycles());
        assert_eq!(whole.bank_occupancy_cycles(), split.bank_occupancy_cycles());
    }

    #[test]
    fn replay_thread_counts_are_equivalent() {
        // Serial, channel-count, and over-provisioned thread caps all
        // produce identical state on a multi-channel interleaved stream.
        let cfg = DramConfig::server();
        let stream: Vec<Request> = (0..30_000u64)
            .map(|i| {
                // Interleave short per-channel bursts with row hops so
                // every channel's substream is non-trivial.
                let addr = (i % 4) * ACCESS_BYTES + (i / 4) * 4096 * ACCESS_BYTES;
                if i % 7 == 0 {
                    Request::write(addr)
                } else {
                    Request::read(addr)
                }
            })
            .collect();
        let mut serial = DramSim::new(cfg.clone());
        serial.set_replay_threads(1);
        serial.run_batch(&stream);
        for threads in [2, 4, 64] {
            let mut sharded = DramSim::new(cfg.clone());
            sharded.set_replay_threads(threads);
            assert_eq!(sharded.replay_threads(), Some(threads));
            sharded.run_batch(&stream);
            assert_eq!(serial.stats(), sharded.stats(), "threads={threads}");
            assert_eq!(serial.elapsed_cycles(), sharded.elapsed_cycles());
            assert_eq!(
                serial.bank_occupancy_cycles(),
                sharded.bank_occupancy_cycles()
            );
        }
    }
}

#[cfg(test)]
mod refresh_tests {
    use super::*;
    use crate::config::ACCESS_BYTES;

    #[test]
    fn refresh_steals_a_bounded_fraction_of_bandwidth() {
        let cfg = DramConfig::server();
        let mut with = DramSim::new(cfg.clone());
        let mut without = DramSim::new(DramConfig { t_refi: 0, ..cfg });
        for i in 0..2_000_000u64 {
            with.access(Request::read(i * ACCESS_BYTES));
            without.access(Request::read(i * ACCESS_BYTES));
        }
        let ratio = with.elapsed_cycles() as f64 / without.elapsed_cycles() as f64;
        assert!(ratio > 1.0, "refresh must cost something: {ratio}");
        // tRFC/tREFI = 350ns/7.8us ≈ 4.5%.
        assert!(ratio < 1.08, "refresh overhead too large: {ratio}");
        assert!(with.stats().refresh_stall_cycles > 0, "stalls are counted");
        assert_eq!(without.stats().refresh_stall_cycles, 0);
    }

    #[test]
    fn no_transfer_lands_inside_a_refresh_window() {
        // Regression: this test used to reconstruct the transfer start as
        // `elapsed - 4` with a hard-coded burst length, so any change to
        // the config's t_bl silently invalidated the invariant. The timed
        // access API reports the actual window, and the burst length is
        // checked against the config rather than assumed.
        let cfg = DramConfig::server();
        let (refi, rfc, t_bl) = (cfg.t_refi, cfg.t_rfc, cfg.t_bl);
        assert!(refi > rfc && rfc > 0);
        let mut sim = DramSim::new(cfg);
        for i in 0..100_000u64 {
            let t = sim.access_timed(Request::read(i * ACCESS_BYTES));
            assert_eq!(t.data_end - t.data_start, t_bl, "burst length from config");
            // The data burst must start at or after the end of any refresh
            // window [k*tREFI, k*tREFI + tRFC).
            assert!(
                t.data_start % refi >= rfc,
                "transfer started inside refresh at {}",
                t.data_start
            );
        }
    }
}
